//! Frontend/judge fast-path laws: the session-interned compiler, the
//! content-addressed compile cache, and the judge's precomputed code
//! signals must all be **byte-identical** to the naive paths they replace.
//!
//! This is the compile/judge-layer mirror of the exec-layer parity law from
//! PR 4 (`tests/exec_parity.rs`): for every case — clean template output,
//! random non-directive code, and negative-probed mutants —
//!
//! 1. a shared [`CompileSession`] produces the same return code, stdout,
//!    stderr, diagnostics and `Program` AST as a fresh one-shot
//!    `compiler_for(model).compile(..)`;
//! 2. a cache **hit** returns an outcome identical to the cache **miss**
//!    that populated it (in fact the very same shared object) and to a
//!    fresh compile;
//! 3. the surrogate judge fed compile-stage-precomputed [`CodeSignals`]
//!    returns byte-identical responses to the prompt-scanning path, so a
//!    validation service with the fast path enabled produces records equal
//!    to one with it disabled.
//!
//! Release runs sweep ≥ 10k mixed cases; debug runs shrink so tier-1
//! `cargo test -q` stays fast.

use std::sync::Arc;

use vv_corpus::{CaseSource, RandomCodeSource, TemplateSource};
use vv_dclang::DirectiveModel;
use vv_judge::{extract_signals, CodeSignals};
use vv_pipeline::{
    CompileBackend, CompileOutput, PipelineMode, SimCompileBackend, ValidationService, WorkItem,
};
use vv_probing::CorpusSpec;
use vv_simcompiler::{compiler_for, CompileCache, CompileSession, Lang};

/// Mixed-case budget: clean templates + random code + probed mutants.
fn per_source_budget() -> usize {
    if cfg!(debug_assertions) {
        60 // tier-1 debug runs stay fast
    } else {
        1800 // 1800 × 2 models × 3 sources ≥ 10.8k mixed cases
    }
}

fn sources_for(model: DirectiveModel, seed: u64) -> Vec<Box<dyn CaseSource + Send>> {
    let n = per_source_budget();
    vec![
        Box::new(TemplateSource::new(model, seed).take(n)),
        Box::new(RandomCodeSource::new(model, seed ^ 0x5EED).take(n)),
        CorpusSpec::new(model)
            .seed(seed ^ 0xC0DE)
            .probe_seed(seed ^ 0xBEEF)
            .size(n)
            .source(),
    ]
}

#[test]
fn session_and_cached_compiles_match_fresh_compiles_on_mixed_corpus() {
    let mut total = 0usize;
    let mut compiled = 0usize;
    for model in [DirectiveModel::OpenAcc, DirectiveModel::OpenMp] {
        let fresh_compiler = compiler_for(model);
        // One long-lived session (shared interner, no cache) and one cached
        // session, both living across the whole corpus for this model.
        let mut session = CompileSession::for_model(model);
        let cache = CompileCache::shared();
        let mut cached = CompileSession::for_model(model).with_cache(Arc::clone(&cache));
        for mut source in sources_for(model, 0x5E_55) {
            while let Some(case) = source.next_case() {
                total += 1;
                let id = &case.case.id;
                let lang = case.case.lang;
                let fresh = fresh_compiler.compile(&case.source, lang);
                let shared = session.compile(&case.source, lang);
                let first = cached.compile(&case.source, lang); // touch (or hit)
                let second = cached.compile(&case.source, lang); // admitted (or hit)
                let third = cached.compile(&case.source, lang); // guaranteed hit
                assert!(
                    Arc::ptr_eq(&second, &third),
                    "{id}: third cached compile must be a hit sharing the admitted outcome"
                );
                for (label, other) in [("session", &shared), ("cache", &first)] {
                    assert_eq!(
                        fresh.return_code, other.return_code,
                        "{id}: {label} return code diverged"
                    );
                    assert_eq!(fresh.stdout, other.stdout, "{id}: {label} stdout diverged");
                    assert_eq!(fresh.stderr, other.stderr, "{id}: {label} stderr diverged");
                    assert_eq!(
                        fresh.diagnostics, other.diagnostics,
                        "{id}: {label} diagnostics diverged"
                    );
                    assert_eq!(
                        fresh.artifact.is_some(),
                        other.artifact.is_some(),
                        "{id}: {label} artifact presence diverged"
                    );
                    if let (Some(a), Some(b)) = (&fresh.artifact, &other.artifact) {
                        assert_eq!(a.model, b.model, "{id}: {label} model diverged");
                        assert_eq!(a.lang, b.lang, "{id}: {label} lang diverged");
                        assert_eq!(*a.unit, *b.unit, "{id}: {label} Program AST diverged");
                    }
                }
                if fresh.artifact.is_some() {
                    compiled += 1;
                }
            }
        }
        let stats = cache.stats();
        assert!(
            stats.hits * 2 >= stats.misses,
            "{model}: every case was compiled three times through the cached session \
             (touch, admit, hit), so hits ({}) must reach at least half the misses ({})",
            stats.hits,
            stats.misses
        );
    }
    assert!(
        compiled * 2 >= total,
        "corpus should mostly compile ({compiled}/{total})"
    );
}

#[test]
fn precomputed_code_signals_match_prompt_extraction_on_mixed_corpus() {
    use vv_judge::{
        build_prompt, JudgeProfile, PromptStyle, SurrogateLlmJudge, ToolContext, ToolRecord,
    };
    let judge = SurrogateLlmJudge::new(JudgeProfile::deepseek_agent_direct(), 0xACC);
    for model in [DirectiveModel::OpenAcc, DirectiveModel::OpenMp] {
        let compiler = compiler_for(model);
        for mut source in sources_for(model, 0x51_61) {
            while let Some(case) = source.next_case() {
                let id = &case.case.id;
                let outcome = compiler.compile(&case.source, case.case.lang);
                let tools = ToolContext {
                    compile: Some(ToolRecord {
                        return_code: outcome.return_code,
                        stdout: Arc::clone(&outcome.stdout),
                        stderr: Arc::clone(&outcome.stderr),
                    }),
                    run: None,
                };
                let code_signals = CodeSignals::of_source(&case.source, model);
                for style in [
                    PromptStyle::Direct,
                    PromptStyle::AgentDirect,
                    PromptStyle::AgentIndirect,
                ] {
                    let tool_arg = style.uses_tools().then_some(&tools);
                    let prompt = build_prompt(style, model, &case.source, tool_arg);
                    let scanned = extract_signals(&prompt, model);
                    let fast = code_signals.clone().with_tools(style, tool_arg);
                    assert_eq!(scanned, fast, "{id}/{style:?}: signal derivation diverged");
                    let slow_response = judge.complete(&prompt);
                    let fast_response =
                        judge.complete_with_signals(&prompt, model, &code_signals, style, tool_arg);
                    assert_eq!(
                        slow_response, fast_response,
                        "{id}/{style:?}: judge response diverged"
                    );
                }
            }
        }
    }
}

/// A compile backend that discards the precomputed signals, forcing the
/// judge back onto its prompt-scanning slow path.
struct SignalStrippingBackend(SimCompileBackend);

impl CompileBackend for SignalStrippingBackend {
    fn compile(&self, item: &WorkItem) -> CompileOutput {
        let mut out = self.0.compile(item);
        out.signals = None;
        out
    }

    fn name(&self) -> &'static str {
        "sim-compiler-no-signals"
    }
}

#[test]
fn service_records_are_identical_with_and_without_the_fast_paths() {
    let n = if cfg!(debug_assertions) { 80 } else { 2500 };
    for model in [DirectiveModel::OpenAcc, DirectiveModel::OpenMp] {
        let items: Vec<WorkItem> = CorpusSpec::new(model)
            .seed(0xFADE)
            .probe_seed(0x0DDB)
            .size(n)
            .source()
            .into_cases()
            .map(WorkItem::from)
            .collect();

        // Production configuration: cached compiles + precomputed signals.
        let fast_run = ValidationService::builder()
            .mode(PipelineMode::RecordAll)
            .build()
            .run(items.clone());
        // Slow reference: uncached compiles, judge re-scans every prompt.
        let slow_run = ValidationService::builder()
            .mode(PipelineMode::RecordAll)
            .compile_backend(SignalStrippingBackend(SimCompileBackend::uncached()))
            .build()
            .run(items);

        assert_eq!(
            fast_run.records, slow_run.records,
            "{model}: records diverged between fast and slow paths"
        );
        assert_eq!(
            fast_run.stats.judge_latency, slow_run.stats.judge_latency,
            "{model}: judge-latency histogram buckets diverged"
        );
        assert_eq!(fast_run.stats.judged, slow_run.stats.judged);
        assert_eq!(
            fast_run.stats.compile_failures,
            slow_run.stats.compile_failures
        );
    }
}

#[test]
fn lowered_artifacts_are_shared_across_cache_hits() {
    // A cache hit must reuse the artifact slot: lowering happens once per
    // distinct source no matter how many duplicate cases stream through.
    let source = "#include <stdlib.h>\nint main() { double a[8];\n#pragma acc parallel loop\nfor (int i = 0; i < 8; i++) { a[i] = i * 2.0; }\nreturn 0; }";
    let backend = SimCompileBackend::default();
    let item = WorkItem {
        id: "dup".into(),
        source: source.into(),
        lang: Lang::C,
        model: DirectiveModel::OpenAcc,
    };
    let _ = backend.compile(&item); // first touch: admission filter only
    let first = backend.compile(&item).artifact.expect("compiles"); // admitted
    let exec = vv_simexec::Executor::default();
    let _ = exec.run(&first); // fills the lowered-artifact slot
    let second = backend.compile(&item).artifact.expect("compiles"); // hit
    assert!(
        Arc::ptr_eq(&first.unit, &second.unit),
        "cache hit must share the AST"
    );
    // The lowered artifact is behind the same shared slot: priming it again
    // through the second handle must be a no-op returning the same object.
    let a = vv_simexec::lower_cached(&first);
    let b = vv_simexec::lower_cached(&second);
    assert!(Arc::ptr_eq(&a, &b), "cache hit must share lowered bytecode");
}
