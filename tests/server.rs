//! End-to-end laws of the resident validation daemon (`vv-server`).
//!
//! 1. **Loopback identity** — a campaign streamed through the in-process
//!    loopback transport returns records byte-identical to a direct
//!    [`ValidationService`] run of the same items, with matching
//!    [`stage_stats`];
//! 2. **Concurrent-tenant identity** — N tenants submitting different
//!    corpora over real TCP sockets at once each get results
//!    byte-identical to their own direct run (the soak: shared worker
//!    pool, shared compile cache, fair round-robin — none of it may leak
//!    one tenant's work into another's results);
//! 3. **Disconnect cancellation** — a client vanishing mid-stream cancels
//!    only its own job: queued cases are purged, another tenant's
//!    campaign completes untouched, and the server keeps serving new
//!    connections;
//! 4. **Protocol robustness** — garbage bytes and torn frames close that
//!    connection without wedging the daemon;
//! 5. **Graceful shutdown** — `SHUTDOWN` drains, flushes the journals and
//!    seals the store: the directory fscks clean, the lockfile is
//!    released, and a foreign live lock is refused at startup;
//! 6. **Live stats** — the `STATS` snapshot accounts every served case to
//!    the right tenant.
//!
//! Sizes scale with the profile (same idiom as `tests/end_to_end.rs`):
//! debug runs stay tier-1 fast, release runs soak harder.

use std::path::PathBuf;

use llm4vv::incremental::stage_stats;
use vv_dclang::DirectiveModel;
use vv_pipeline::{encode_record, PipelineRun, ValidationService, WorkItem};
use vv_probing::{CorpusSpec, ProbeConfig};
use vv_server::{Client, JobSpec, Server, ServerConfig};
use vv_store::{check, StoreError};

fn scale(debug: usize, release: usize) -> usize {
    if cfg!(debug_assertions) {
        debug
    } else {
        release
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vv-server-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A probed corpus as submission-ready work items.
fn corpus(model: DirectiveModel, seed: u64, size: usize) -> Vec<WorkItem> {
    let mut probe = ProbeConfig::with_seed(seed ^ 0x9E37_79B9);
    probe.mutated_fraction = 0.5;
    let mut source = CorpusSpec::new(model)
        .seed(seed)
        .probe(probe)
        .size(size)
        .source();
    let mut items = Vec::with_capacity(size);
    while let Some(case) = source.next_case() {
        items.push(WorkItem::from(case));
    }
    items
}

/// The in-process service equivalent of the daemon's pooled service for
/// `spec` (fresh compile cache; provenance counters are excluded from
/// the stats comparison anyway).
fn direct_service(spec: &JobSpec) -> ValidationService {
    ValidationService::builder()
        .mode(spec.mode)
        .judge_style(spec.style)
        .judge_profile(spec.profile.profile())
        .judge_seed(spec.judge_seed)
        .build()
}

fn direct_run(spec: &JobSpec, items: &[WorkItem]) -> PipelineRun {
    direct_service(spec).submit(items.to_vec()).into_run()
}

fn record_bytes(run: &PipelineRun) -> Vec<Vec<u8>> {
    run.records.iter().map(encode_record).collect()
}

#[test]
fn loopback_campaign_is_byte_identical_to_a_direct_run() {
    let size = scale(32, 400);
    let spec = JobSpec::default();
    let items = corpus(DirectiveModel::OpenAcc, 0xA11CE, size);
    let local = direct_run(&spec, &items);

    let server = Server::start(ServerConfig::default()).expect("start server");
    let mut client = Client::over(Box::new(server.connect()), "loopback").expect("handshake");
    let remote = client
        .submit(spec, items)
        .expect("submit")
        .into_run()
        .expect("stream to completion");

    assert_eq!(remote.records.len(), size);
    assert_eq!(record_bytes(&remote), record_bytes(&local));
    assert_eq!(stage_stats(&remote.stats), stage_stats(&local.stats));
    assert!(remote.stats.wall_time > std::time::Duration::ZERO);

    drop(client);
    server.handle().shutdown();
    server.join();
}

#[test]
fn concurrent_tcp_tenants_each_match_their_direct_run() {
    let tenants = scale(2, 4);
    let size = scale(24, 250);
    let spec = JobSpec::default();
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("bound address");

    // Different model and seed per tenant: any cross-tenant leak in the
    // shared worker pool or compile cache changes someone's bytes.
    let handles: Vec<_> = (0..tenants)
        .map(|t| {
            let model = if t % 2 == 0 {
                DirectiveModel::OpenAcc
            } else {
                DirectiveModel::OpenMp
            };
            let items = corpus(model, 0xBEE5 + t as u64, size + t);
            std::thread::spawn(move || {
                let name = format!("tenant-{t}");
                let mut client = Client::connect(addr, &name).expect("connect");
                let remote = client
                    .submit(spec, items.clone())
                    .expect("submit")
                    .into_run()
                    .expect("stream");
                (items, remote)
            })
        })
        .collect();

    for (t, handle) in handles.into_iter().enumerate() {
        let (items, remote) = handle.join().expect("tenant thread");
        let local = direct_run(&spec, &items);
        assert_eq!(
            record_bytes(&remote),
            record_bytes(&local),
            "tenant {t} diverged from its direct run"
        );
        assert_eq!(stage_stats(&remote.stats), stage_stats(&local.stats));
    }

    let snapshot = server.stats();
    let total: usize = (0..tenants).map(|t| size + t).sum();
    assert_eq!(snapshot.served.submitted, total);
    assert_eq!(snapshot.tenants.len(), tenants);
    for (t, row) in snapshot.tenants.iter().enumerate() {
        assert_eq!(row.name, format!("tenant-{t}"));
        assert_eq!(row.completed as usize, size + t);
        assert_eq!(row.cancelled, 0);
        assert_eq!(row.jobs_opened, 1);
        assert_eq!(row.jobs_finished, 1);
    }

    server.handle().shutdown();
    server.join();
}

#[test]
fn a_disconnect_mid_stream_cancels_only_that_tenant() {
    let victim_size = scale(300, 1200);
    let steady_size = scale(24, 200);
    let spec = JobSpec::default();
    let config = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let server = Server::start(config).expect("start server");

    // The steady tenant runs a full campaign concurrently with the chaos.
    let steady = {
        let conn = server.connect();
        let items = corpus(DirectiveModel::OpenMp, 0x5EED, steady_size);
        std::thread::spawn(move || {
            let mut client = Client::over(Box::new(conn), "steady").expect("handshake");
            client
                .submit(spec, items)
                .expect("submit")
                .into_run()
                .expect("steady tenant must complete")
        })
    };

    // The victim submits a big job, reads a couple of records and
    // vanishes. Dropping the Job kills the connection; the server turns
    // that into cancellation (purged queue, discarded in-flight results).
    {
        let mut client = Client::over(Box::new(server.connect()), "victim").expect("handshake");
        let items = corpus(DirectiveModel::OpenAcc, 0xDEAD, victim_size);
        let mut job = client.submit(spec, items).expect("submit");
        for _ in 0..2 {
            job.next().expect("a first record arrives").expect("record");
        }
        // Job and Client drop here, mid-stream.
    }

    let steady_run = steady.join().expect("steady thread");
    assert_eq!(steady_run.records.len(), steady_size);

    // The victim's work drains (cancelled or completed, never stuck).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let victim = loop {
        let snapshot = server.stats();
        let row = snapshot
            .tenants
            .iter()
            .find(|row| row.name == "victim")
            .expect("victim tenant registered")
            .clone();
        if row.queued == 0 && row.in_flight == 0 {
            break row;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "victim queue never drained: {row:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    assert!(
        victim.cancelled > 0,
        "dropping the client mid-stream must purge queued cases, got {victim:?}"
    );
    assert_eq!(victim.jobs_finished, 0, "a cancelled job never finishes");

    // Steady tenant untouched, and the server still serves new clients.
    let steady_row = server
        .stats()
        .tenants
        .iter()
        .find(|row| row.name == "steady")
        .expect("steady tenant registered")
        .clone();
    assert_eq!(steady_row.completed as usize, steady_size);
    assert_eq!(steady_row.cancelled, 0);

    let mut client = Client::over(Box::new(server.connect()), "afterwards").expect("handshake");
    let items = corpus(DirectiveModel::OpenAcc, 0xAF7E4, scale(8, 32));
    let run = client
        .submit(spec, items)
        .expect("submit")
        .into_run()
        .expect("post-cancellation campaign");
    assert_eq!(run.records.len(), scale(8, 32));

    drop(client);
    server.handle().shutdown();
    server.join();
}

#[test]
fn garbage_and_torn_frames_close_the_connection_without_wedging_the_server() {
    use std::io::Write as _;
    use vv_server::protocol::{write_frame, Request, PROTOCOL_VERSION};

    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("bound address");

    // Pure garbage instead of a handshake.
    {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("write");
        // The server closes without a frame; nothing to assert beyond
        // the connection ending (read may see EOF or reset).
    }

    // A valid HELLO followed by a torn frame: oversized length prefix.
    {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        let hello = Request::Hello {
            protocol: PROTOCOL_VERSION,
            tenant: "torn".into(),
        };
        write_frame(&mut stream, &hello.encode()).expect("hello frame");
        let mut torn = vec![0u8; 12];
        torn[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        stream.write_all(&torn).expect("torn header");
    }

    // A valid HELLO followed by a checksum-corrupt frame.
    {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        let hello = Request::Hello {
            protocol: PROTOCOL_VERSION,
            tenant: "corrupt".into(),
        };
        write_frame(&mut stream, &hello.encode()).expect("hello frame");
        let mut framed = Vec::new();
        write_frame(&mut framed, &Request::Stats.encode()).expect("frame");
        *framed.last_mut().expect("payload byte") ^= 0x01;
        stream.write_all(&framed).expect("corrupt frame");
    }

    // After all that abuse a well-behaved client still gets full service.
    let size = scale(12, 64);
    let mut client = Client::connect(addr, "wellbehaved").expect("connect");
    let items = corpus(DirectiveModel::OpenAcc, 0x600D, size);
    let run = client
        .submit(JobSpec::default(), items)
        .expect("submit")
        .into_run()
        .expect("campaign after garbage");
    assert_eq!(run.records.len(), size);

    drop(client);
    server.handle().shutdown();
    server.join();
}

#[test]
fn shutdown_drains_seals_the_store_and_releases_the_lock() {
    let size = scale(24, 200);
    let dir = temp_dir("shutdown");
    let config = ServerConfig {
        store_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let server = Server::start(config).expect("start server");
    assert!(
        dir.join(vv_store::LOCK_NAME).exists(),
        "a store-backed server holds the lockfile while running"
    );

    let items = corpus(DirectiveModel::OpenAcc, 0x57011E, size);
    let mut client = Client::over(Box::new(server.connect()), "durable").expect("handshake");
    let first = client
        .submit(JobSpec::default(), items.clone())
        .expect("submit")
        .into_run()
        .expect("campaign");
    assert_eq!(first.records.len(), size);
    drop(client);

    // Graceful shutdown over the protocol itself.
    Client::over(Box::new(server.connect()), "controller")
        .expect("handshake")
        .shutdown()
        .expect("SHUTDOWN_OK");
    server.join();

    // Sealed clean: fsck passes, the lock is gone, and a fresh server on
    // the same directory replays every record from disk.
    let report = check(&dir).expect("fsck");
    assert!(report.clean(), "store not clean after drain: {report:?}");
    assert!(report.records > 0, "the campaign's records were persisted");
    // The lock drops with the last store handle; the final connection
    // handler thread may still be unwinding for a moment after the
    // `SHUTDOWN_OK` acknowledgement reached us.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while dir.join(vv_store::LOCK_NAME).exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "shutdown must release the store lock"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let server = Server::start(ServerConfig {
        store_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("reopen");
    let mut client = Client::over(Box::new(server.connect()), "warm").expect("handshake");
    let second = client
        .submit(JobSpec::default(), items)
        .expect("submit")
        .into_run()
        .expect("warm campaign");
    assert_eq!(record_bytes(&second), record_bytes(&first));
    assert_eq!(
        second.stats.store_hits, size,
        "a re-run over the same store replays every case"
    );
    drop(client);
    server.handle().shutdown();
    server.join();

    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(target_os = "linux")]
#[test]
fn a_live_foreign_store_lock_refuses_the_server_cleanly() {
    let dir = temp_dir("foreign-lock");
    // pid 1 is always alive and never us.
    std::fs::write(dir.join(vv_store::LOCK_NAME), "1").expect("plant lock");
    match Server::start(ServerConfig {
        store_dir: Some(dir.clone()),
        ..ServerConfig::default()
    }) {
        Err(StoreError::Locked { owner, .. }) => assert_eq!(owner, 1),
        Ok(_) => panic!("server started over a foreign-locked store"),
        Err(other) => panic!("expected Locked, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn the_stats_snapshot_accounts_every_served_case() {
    let size = scale(20, 120);
    let server = Server::start(ServerConfig::default()).expect("start server");
    let mut client = Client::over(Box::new(server.connect()), "accounting").expect("handshake");
    let items = corpus(DirectiveModel::OpenMp, 0xC0DE, size);
    client
        .submit(JobSpec::default(), items)
        .expect("submit")
        .into_run()
        .expect("campaign");

    // Over the wire — the same snapshot the `vv-server stats` CLI prints.
    let snapshot = client.stats().expect("STATS_OK");
    assert!(!snapshot.draining);
    assert_eq!(snapshot.served.submitted, size);
    assert_eq!(snapshot.served.judged, size);
    let row = snapshot
        .tenants
        .iter()
        .find(|row| row.name == "accounting")
        .expect("tenant row");
    assert_eq!(row.submitted as usize, size);
    assert_eq!(row.completed as usize, size);
    assert_eq!(row.queued, 0);
    assert_eq!(row.in_flight, 0);
    assert_eq!(row.jobs_opened, 1);
    assert_eq!(row.jobs_finished, 1);
    assert!(snapshot.compile_cache.hits + snapshot.compile_cache.misses > 0);

    let rendered = snapshot.to_string();
    assert!(rendered.contains("accounting"), "{rendered}");
    assert!(rendered.contains("serving"), "{rendered}");

    drop(client);
    server.handle().shutdown();
    server.join();
}
