//! Acceptance tests for the scenario-matrix campaign harness.
//!
//! The headline assertion: a part-two-style campaign of four scenarios runs
//! end-to-end through the streaming accumulator path — no
//! `Vec<EvaluationRecord>` / record `Vec` anywhere on it — and every
//! scenario's metrics are **byte-identical** to the legacy batch
//! computation (materialize the same corpus, run the batch service, compute
//! the slice-based metrics) on the same seeds.
//!
//! Scenario size: the paper-scale 25k cases per scenario under
//! `cargo test --release` (wired into CI as its own step); a proportionally
//! smaller corpus under the default debug profile so plain `cargo test`
//! stays fast. The assertions are identical in both.

use llm4vv::campaign::{run_campaign, ScenarioMatrix};
use vv_corpus::CaseSource;
use vv_dclang::DirectiveModel;
use vv_judge::PromptStyle;
use vv_metrics::{overall, per_issue, radar_series, EvaluationRecord};
use vv_pipeline::WorkItem;
use vv_probing::IssueKind;

/// ≥ 25k cases per scenario at release scale (the acceptance bar); small
/// enough for tier-1 `cargo test` in debug.
const CASES_PER_SCENARIO: usize = if cfg!(debug_assertions) { 500 } else { 25_000 };

#[test]
fn campaign_metrics_are_byte_identical_to_the_legacy_batch_computation() {
    // 2 models x 2 prompt styles = 4 scenarios, each streamed as 2 shards.
    let matrix = ScenarioMatrix::new(CASES_PER_SCENARIO)
        .models(vec![DirectiveModel::OpenAcc, DirectiveModel::OpenMp])
        .prompt_styles(vec![PromptStyle::AgentDirect, PromptStyle::AgentIndirect])
        .shards(2);
    assert_eq!(matrix.len(), 4);

    let campaign = run_campaign(&matrix);
    assert_eq!(campaign.scenarios.len(), 4);
    assert_eq!(campaign.total_cases(), 4 * CASES_PER_SCENARIO);

    for metrics in &campaign.scenarios {
        let scenario = &metrics.scenario;

        // The streamed path processed the whole corpus, judging every file.
        assert_eq!(metrics.cases(), CASES_PER_SCENARIO, "{}", scenario.label);
        assert_eq!(metrics.stats.submitted, CASES_PER_SCENARIO);
        assert_eq!(metrics.stats.judged, CASES_PER_SCENARIO);
        assert!(metrics.stats.judge_latency_p99() >= metrics.stats.judge_latency_p50());

        // Constant-memory evidence: the ground-truth side table's high-water
        // mark tracks the pipeline's in-flight window (channels + workers),
        // not the corpus size.
        let (compile, exec, judge) = scenario.workers;
        let window_bound = 4 * scenario.channel_capacity + compile + exec + judge + 1;
        assert!(
            metrics.max_in_flight <= window_bound,
            "{}: {} ground-truth entries in flight (window bound {window_bound})",
            scenario.label,
            metrics.max_in_flight
        );

        // Legacy batch computation on the same seeds: materialize the
        // unsharded corpus, run the batch service, compute the slice-based
        // metrics from materialized EvaluationRecords.
        let mut issues: Vec<IssueKind> = Vec::with_capacity(CASES_PER_SCENARIO);
        let mut items: Vec<WorkItem> = Vec::with_capacity(CASES_PER_SCENARIO);
        for case in scenario.corpus_spec().source().into_cases() {
            issues.push(IssueKind::of_case(&case));
            items.push(WorkItem::from(case));
        }
        let run = scenario.service().run(items);
        let judge_records: Vec<EvaluationRecord> = run
            .records
            .iter()
            .zip(&issues)
            .map(|(record, &issue)| {
                let judgement = record.judgement.as_ref().expect("record-all judges all");
                EvaluationRecord::new(
                    record.id.clone(),
                    issue,
                    Some(judgement.verdict_or_invalid()),
                )
            })
            .collect();
        let pipeline_records: Vec<EvaluationRecord> = run
            .records
            .iter()
            .zip(&issues)
            .map(|(record, &issue)| {
                EvaluationRecord::new(record.id.clone(), issue, Some(record.pipeline_verdict()))
            })
            .collect();

        // Byte-identical per-issue rows, overall stats and radar series,
        // for both the stand-alone judge and the gated pipeline.
        let label = &scenario.label;
        assert_eq!(
            metrics.judge.per_issue_rows(),
            per_issue(&judge_records),
            "{label}: judge per-issue"
        );
        assert_eq!(
            metrics.judge.overall_stats(),
            overall(&judge_records),
            "{label}: judge overall"
        );
        assert_eq!(
            metrics.judge.radar_series(),
            radar_series(&judge_records),
            "{label}: judge radar"
        );
        assert_eq!(
            metrics.pipeline.per_issue_rows(),
            per_issue(&pipeline_records),
            "{label}: pipeline per-issue"
        );
        assert_eq!(
            metrics.pipeline.overall_stats(),
            overall(&pipeline_records),
            "{label}: pipeline overall"
        );
        assert_eq!(
            metrics.pipeline.radar_series(),
            radar_series(&pipeline_records),
            "{label}: pipeline radar"
        );
        // The batch run's latency histogram matches the shard-merged one.
        assert_eq!(
            metrics.stats.judge_latency, run.stats.judge_latency,
            "{label}: latency histogram"
        );
    }

    // Distinct scenarios measured distinct things: at least one pair of
    // scenarios disagrees on overall accuracy.
    let accuracies: Vec<u64> = campaign
        .scenarios
        .iter()
        .map(|m| (m.pipeline.overall_stats().accuracy * 1e6) as u64)
        .collect();
    let mut unique = accuracies.clone();
    unique.sort();
    unique.dedup();
    assert!(unique.len() > 1, "all scenarios identical: {accuracies:?}");

    // The comparison table covers every scenario.
    let table = campaign.comparison_table();
    for metrics in &campaign.scenarios {
        assert!(table.contains(&metrics.scenario.label), "{table}");
    }
}

#[test]
fn part_two_streaming_metrics_match_the_batch_fold() {
    // stream_part_two folds each judge pass off its own record stream;
    // run_part_two(...).metrics() folds materialized PartTwoRecords, which
    // reuse the *direct* run's compile/exec results for both pipelines.
    // Determinism of the compile and execute substrates makes the two
    // byte-identical — this is the cross-check that pins it.
    use llm4vv::experiment::{run_part_two, stream_part_two, Evaluator, PartTwoConfig};
    let config = PartTwoConfig::quick(DirectiveModel::OpenAcc, 60);
    let streamed = stream_part_two(&config);
    let folded = run_part_two(&config).metrics();
    for which in Evaluator::ALL {
        assert_eq!(
            streamed.sink(which),
            folded.sink(which),
            "{}",
            which.label()
        );
    }
    assert_eq!(streamed.llmj1_load, folded.llmj1_load);
    assert_eq!(streamed.llmj2_load, folded.llmj2_load);
}
