//! Determinism contracts of the streaming corpus API.
//!
//! * `CorpusSpec::from_configs` mirrors the legacy `SuiteConfig` +
//!   `ProbeConfig` pair onto the explicit builder;
//! * `shard(k, n)` is reproducible per shard and its union across any shard
//!   count n ∈ {1, 2, 4} is byte-identical to the unsharded stream;
//! * a large generated+probed corpus streams through `submit_source`
//!   lazily — the tail of the stream is never generated when the consumer
//!   stops early.

use vv_corpus::{CaseSource, GeneratedCase, RandomCodeSource, TemplateSource};
use vv_dclang::DirectiveModel;
use vv_pipeline::ValidationService;
use vv_probing::{CorpusSpec, IssueKind, ProbeConfig, ProbeExt};

const MODELS: [DirectiveModel; 2] = [DirectiveModel::OpenAcc, DirectiveModel::OpenMp];

fn probed_spec(model: DirectiveModel, size: usize, seed: u64) -> CorpusSpec {
    CorpusSpec::new(model)
        .seed(seed)
        .probe_seed(seed ^ 0x50_52_4F_42)
        .size(size)
}

#[test]
fn corpus_spec_from_configs_matches_the_explicit_builder() {
    use vv_corpus::SuiteConfig;
    let suite_config = SuiteConfig::new(DirectiveModel::OpenMp, 26, 404).c_only();
    let probe_config = ProbeConfig::with_seed(405);
    let migrated: Vec<GeneratedCase> = CorpusSpec::from_configs(&suite_config, Some(&probe_config))
        .source()
        .into_cases()
        .collect();
    let explicit: Vec<GeneratedCase> = CorpusSpec::new(DirectiveModel::OpenMp)
        .seed(404)
        .c_only()
        .probe(probe_config.clone())
        .size(26)
        .source()
        .into_cases()
        .collect();
    assert_eq!(migrated, explicit);
    // The config pair is also byte-identical to probing the raw template
    // stream by hand.
    let by_hand: Vec<GeneratedCase> = TemplateSource::from_config(&suite_config)
        .probe(probe_config)
        .take(26)
        .into_cases()
        .collect();
    assert_eq!(migrated, by_hand);
}

#[test]
fn shard_union_is_byte_identical_for_one_two_and_four_shards() {
    let size = 48;
    for model in MODELS {
        let base = probed_spec(model, size, 2024);
        let full: Vec<GeneratedCase> = base.source().into_cases().collect();
        assert_eq!(full.len(), size);
        for n in [1usize, 2, 4] {
            // Each shard is produced by its own independent pipeline, as a
            // distributed worker would do.
            let shards: Vec<Vec<GeneratedCase>> = (0..n)
                .map(|k| base.clone().shard(k, n).source().into_cases().collect())
                .collect();
            let mut union = Vec::with_capacity(size);
            for i in 0..size {
                union.push(shards[i % n][i / n].clone());
            }
            assert_eq!(union, full, "{model:?}: union of {n} shards diverged");
        }
    }
}

#[test]
fn shards_are_reproducible_in_isolation() {
    // Generating shard 3 of 4 twice — without touching the other shards —
    // must give the same bytes, and the shard's cases must carry the ids of
    // the unsharded stream positions it owns.
    let base = probed_spec(DirectiveModel::OpenAcc, 40, 7);
    let full: Vec<GeneratedCase> = base.source().into_cases().collect();
    let once: Vec<GeneratedCase> = base.clone().shard(3, 4).source().into_cases().collect();
    let twice: Vec<GeneratedCase> = base.clone().shard(3, 4).source().into_cases().collect();
    assert_eq!(once, twice);
    assert_eq!(once.len(), 10);
    for (j, case) in once.iter().enumerate() {
        assert_eq!(case, &full[3 + 4 * j], "shard element {j}");
    }
}

#[test]
fn probe_split_law_holds_for_every_prefix() {
    // Among the first n cases of a probed stream, exactly round(n * 0.5)
    // are mutated for every even n, and within one for odd n — the
    // streaming analogue of the paper's shuffle-and-split.
    let cases: Vec<GeneratedCase> = probed_spec(DirectiveModel::OpenMp, 75, 5)
        .source()
        .into_cases()
        .collect();
    for n in 1..=cases.len() {
        let mutated = cases[..n]
            .iter()
            .filter(|c| !c.ground_truth_valid())
            .count();
        let expected = ((n as f64) * 0.5 + 0.5).floor() as usize;
        if n % 2 == 0 {
            assert_eq!(mutated, expected, "even prefix {n}");
        } else {
            assert!(
                mutated == expected || mutated + 1 == expected,
                "odd prefix {n}: {mutated} vs expected {expected}"
            );
        }
    }
}

#[test]
fn interleaved_streams_both_receive_mutations() {
    // probe() after a period-2 interleave: the pairwise split coin must
    // spread mutations over both underlying streams instead of pinning one
    // stream to "always mutated" (the failure mode of a fixed-parity
    // split).
    let a = TemplateSource::new(DirectiveModel::OpenAcc, 21).take(40);
    let b = TemplateSource::new(DirectiveModel::OpenAcc, 22).take(40);
    let cases: Vec<GeneratedCase> = a
        .interleave(b)
        .probe(ProbeConfig::with_seed(23))
        .into_cases()
        .collect();
    assert_eq!(cases.len(), 80);
    for side in 0..2usize {
        let of_side: Vec<&GeneratedCase> = cases.iter().skip(side).step_by(2).collect();
        assert!(
            of_side.iter().any(|c| c.ground_truth_valid()),
            "side {side}"
        );
        assert!(
            of_side.iter().any(|c| !c.ground_truth_valid()),
            "side {side}"
        );
    }
}

#[test]
fn mixed_sources_compose_and_tag_ground_truth() {
    // Interleave a probed template stream with known-invalid random-code
    // cases: the composition streams fine and every case carries usable
    // ground truth.
    let template = TemplateSource::new(DirectiveModel::OpenAcc, 10)
        .probe(ProbeConfig::with_seed(11))
        .take(10);
    let noise = RandomCodeSource::new(DirectiveModel::OpenAcc, 12).take(5);
    let cases: Vec<GeneratedCase> = template.interleave(noise).into_cases().collect();
    assert_eq!(cases.len(), 15);
    let replaced = cases
        .iter()
        .filter(|c| IssueKind::of_case(c) == IssueKind::ReplacedWithNonDirectiveCode)
        .count();
    // 5 from the random-code source, plus however many the prober drew.
    assert!(replaced >= 5);
    assert!(cases.iter().any(|c| c.ground_truth_valid()));
}

#[test]
fn submit_source_pulls_the_corpus_lazily() {
    // Stop consuming after a handful of records and drop the stream: the
    // 5000-case corpus must never be generated in full.
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let generated = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&generated);
    let source = probed_spec(DirectiveModel::OpenAcc, 5_000, 99)
        .source()
        .inspect(move |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
    let service = ValidationService::builder()
        .channel_capacity(2)
        .workers(1, 1, 1)
        .build();
    let mut stream = service.submit_source(source);
    for _ in 0..5 {
        assert!(stream.next().is_some());
    }
    drop(stream);
    let pulled = generated.load(Ordering::SeqCst);
    assert!(
        pulled < 5_000,
        "lazy corpus was generated in full ({pulled}/5000 cases)"
    );
}

#[test]
fn a_large_corpus_streams_through_the_service_with_bounded_buffers() {
    // A scaled-down sibling of examples/streaming_scale.rs that runs under
    // `cargo test`: generation → probing → compile → execute → judge over
    // 2000 cases with tiny channels, counting records as they pass.
    let size = 2_000;
    let service = ValidationService::builder()
        .channel_capacity(8)
        .workers(2, 2, 1)
        .build();
    let mut stream = service.submit_source(probed_spec(DirectiveModel::OpenAcc, size, 1).source());
    let mut yielded = 0usize;
    while stream.next().is_some() {
        yielded += 1;
    }
    assert_eq!(yielded, size);
    let stats = stream.stats();
    assert_eq!(stats.submitted, size);
    assert_eq!(stats.compiled, size);
    assert!(stats.judged <= stats.executed);
}
