//! Property-based tests over the full stack (proptest).

use proptest::prelude::*;

use vv_corpus::{generate_suite, SuiteConfig};
use vv_dclang::DirectiveModel;
use vv_judge::Verdict;
use vv_metrics::{overall, per_issue, radar_series, EvaluationRecord};
use vv_pipeline::{PipelineConfig, ValidationPipeline, WorkItem};
use vv_probing::{build_probed_suite, IssueKind, ProbeConfig};

fn arbitrary_model() -> impl Strategy<Value = DirectiveModel> {
    prop_oneof![Just(DirectiveModel::OpenAcc), Just(DirectiveModel::OpenMp)]
}

fn arbitrary_records() -> impl Strategy<Value = Vec<EvaluationRecord>> {
    prop::collection::vec(
        (0u8..6, prop::option::of(prop::bool::ANY)).prop_map(|(issue_id, verdict)| {
            EvaluationRecord::new(
                format!("case_{issue_id}"),
                IssueKind::from_id(issue_id).unwrap(),
                verdict.map(|v| if v { Verdict::Valid } else { Verdict::Invalid }),
            )
        }),
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Metrics invariants hold for arbitrary evaluation records.
    #[test]
    fn metrics_invariants(records in arbitrary_records()) {
        let stats = overall(&records);
        prop_assert!(stats.accuracy >= 0.0 && stats.accuracy <= 1.0);
        prop_assert!(stats.bias >= -1.0 && stats.bias <= 1.0);
        prop_assert_eq!(stats.total, records.len());
        prop_assert!(stats.mistakes <= stats.total);

        let rows = per_issue(&records);
        let total: usize = rows.iter().map(|r| r.count).sum();
        prop_assert_eq!(total, records.len());
        for row in &rows {
            prop_assert_eq!(row.correct + row.incorrect, row.count);
            prop_assert!(row.accuracy >= 0.0 && row.accuracy <= 1.0);
        }

        let radar = radar_series(&records);
        let radar_total: usize = radar.iter().map(|p| p.count).sum();
        prop_assert_eq!(radar_total, records.len());
    }

    /// Corpus generation is deterministic and every file mentions its model.
    #[test]
    fn corpus_determinism(model in arbitrary_model(), size in 1usize..24, seed in 0u64..1000) {
        let a = generate_suite(&SuiteConfig::new(model, size, seed));
        let b = generate_suite(&SuiteConfig::new(model, size, seed));
        prop_assert_eq!(a.len(), size);
        for (x, y) in a.cases.iter().zip(b.cases.iter()) {
            prop_assert_eq!(&x.source, &y.source);
            prop_assert!(x.source.contains("#pragma"));
        }
    }

    /// Probing always splits into the requested fraction and mutations always
    /// change the source.
    #[test]
    fn probing_invariants(model in arbitrary_model(), size in 2usize..30, seed in 0u64..500) {
        let suite = generate_suite(&SuiteConfig::new(model, size, seed));
        let probed = build_probed_suite(&suite, &ProbeConfig::with_seed(seed));
        prop_assert_eq!(probed.len(), size);
        let expected_valid = size - ((size as f64) * 0.5).round() as usize;
        prop_assert_eq!(probed.valid_count(), expected_valid);
        for case in &probed.cases {
            if case.issue == IssueKind::NoIssue {
                prop_assert_eq!(&case.source, &case.case.source);
            } else {
                prop_assert_ne!(&case.source, &case.case.source);
            }
        }
    }
}

proptest! {
    // The full pipeline is comparatively expensive, so fewer cases.
    #![proptest_config(ProptestConfig { cases: 4, .. ProptestConfig::default() })]

    /// The staged multi-worker pipeline and the sequential baseline always
    /// agree on every verdict, for any seed and worker configuration.
    #[test]
    fn staged_pipeline_equals_sequential(
        model in arbitrary_model(),
        seed in 0u64..200,
        compile_workers in 1usize..5,
        judge_workers in 1usize..4,
    ) {
        let suite = generate_suite(&SuiteConfig::new(model, 14, seed));
        let probed = build_probed_suite(&suite, &ProbeConfig::with_seed(seed));
        let items: Vec<WorkItem> = probed
            .cases
            .iter()
            .map(|c| WorkItem {
                id: c.case.id.clone(),
                source: c.source.clone(),
                lang: c.case.lang,
                model,
            })
            .collect();
        let pipeline = ValidationPipeline::new(PipelineConfig {
            compile_workers,
            exec_workers: 2,
            judge_workers,
            ..PipelineConfig::default()
        });
        let staged = pipeline.run(items.clone());
        let sequential = pipeline.run_sequential(items);
        prop_assert_eq!(staged.records.len(), sequential.records.len());
        for (a, b) in staged.records.iter().zip(&sequential.records) {
            prop_assert_eq!(&a.id, &b.id);
            prop_assert_eq!(a.pipeline_verdict(), b.pipeline_verdict());
            prop_assert_eq!(a.stage_reached(), b.stage_reached());
        }
    }
}
