//! Property-style tests over the full stack.
//!
//! The crates.io `proptest` harness is unavailable in the offline build
//! environment, so these properties are checked over deterministic sweeps
//! of seeds, sizes and worker configurations instead of randomized
//! strategies. The invariants are the same ones the proptest version
//! asserted; the sweep grids are chosen to cover both models and a spread
//! of suite shapes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vv_corpus::{CaseSource, GeneratedCase, TemplateSource};
use vv_dclang::DirectiveModel;
use vv_judge::Verdict;
use vv_metrics::{overall, per_issue, radar_series, EvaluationRecord};
use vv_pipeline::{ValidationService, WorkItem};
use vv_probing::{CorpusSpec, IssueKind};

fn probed_cases(model: DirectiveModel, size: usize, seed: u64) -> Vec<GeneratedCase> {
    CorpusSpec::new(model)
        .seed(seed)
        .probe_seed(seed)
        .size(size)
        .source()
        .into_cases()
        .collect()
}

const MODELS: [DirectiveModel; 2] = [DirectiveModel::OpenAcc, DirectiveModel::OpenMp];

/// Pseudo-random evaluation records driven by a seeded generator: every
/// issue id, with judge verdicts valid/invalid/unparseable.
fn arbitrary_records(seed: u64, count: usize) -> Vec<EvaluationRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let issue = IssueKind::from_id(rng.gen_range(0..6u8)).unwrap();
            let verdict = match rng.gen_range(0..3u8) {
                0 => None,
                1 => Some(Verdict::Valid),
                _ => Some(Verdict::Invalid),
            };
            EvaluationRecord::new(format!("case_{i}"), issue, verdict)
        })
        .collect()
}

#[test]
fn metrics_invariants_hold_for_arbitrary_records() {
    for seed in 0..16u64 {
        let count = (seed as usize * 13) % 200;
        let records = arbitrary_records(seed, count);

        let stats = overall(&records);
        assert!((0.0..=1.0).contains(&stats.accuracy));
        assert!((-1.0..=1.0).contains(&stats.bias));
        assert_eq!(stats.total, records.len());
        assert!(stats.mistakes <= stats.total);

        let rows = per_issue(&records);
        let total: usize = rows.iter().map(|r| r.count).sum();
        assert_eq!(total, records.len());
        for row in &rows {
            assert_eq!(row.correct + row.incorrect, row.count);
            // An empty group reports no accuracy; a populated one reports
            // a fraction in the unit interval.
            assert_eq!(row.accuracy.is_none(), row.count == 0);
            if let Some(accuracy) = row.accuracy {
                assert!((0.0..=1.0).contains(&accuracy));
            }
        }

        let radar = radar_series(&records);
        let radar_total: usize = radar.iter().map(|p| p.count).sum();
        assert_eq!(radar_total, records.len());
    }
}

#[test]
fn corpus_generation_is_deterministic_and_on_model() {
    for model in MODELS {
        for (size, seed) in [(1usize, 0u64), (7, 123), (16, 999), (23, 500)] {
            let a: Vec<GeneratedCase> = TemplateSource::new(model, seed)
                .take(size)
                .into_cases()
                .collect();
            let b: Vec<GeneratedCase> = TemplateSource::new(model, seed)
                .take(size)
                .into_cases()
                .collect();
            assert_eq!(a.len(), size);
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x, y);
                assert!(x.source.contains("#pragma"));
            }
        }
    }
}

#[test]
fn probing_always_splits_at_the_requested_fraction() {
    for model in MODELS {
        for (size, seed) in [(2usize, 0u64), (9, 77), (18, 250), (29, 499)] {
            let probed = probed_cases(model, size, seed);
            assert_eq!(probed.len(), size);
            let expected_valid = size - ((size as f64) * 0.5).round() as usize;
            let valid = probed.iter().filter(|c| c.ground_truth_valid()).count();
            if size % 2 == 0 {
                assert_eq!(valid, expected_valid);
            } else {
                // The trailing open pair may place its single mutation on
                // either side of the cut (pairwise split law).
                assert!(
                    valid == expected_valid || valid == expected_valid + 1,
                    "{model:?} size {size}: {valid} valid vs expected {expected_valid}"
                );
            }
            for case in &probed {
                if IssueKind::of_case(case) == IssueKind::NoIssue {
                    assert_eq!(case.source, case.case.source);
                } else {
                    assert_ne!(case.source, case.case.source);
                }
            }
        }
    }
}

#[test]
fn staged_pipeline_equals_sequential_for_any_worker_shape() {
    // Sweep over models, seeds and worker configurations; the staged
    // multi-worker service and the sequential baseline must always agree on
    // every verdict and on how far every file progressed.
    let shapes = [(1usize, 1usize), (2, 3), (4, 1), (3, 2)];
    let seeds = [0u64, 59, 131, 197];
    for model in MODELS {
        for (seed, (compile_workers, judge_workers)) in seeds.into_iter().zip(shapes) {
            run_parity_case(model, seed, compile_workers, judge_workers);
        }
    }
}

fn run_parity_case(model: DirectiveModel, seed: u64, compile_workers: usize, judge_workers: usize) {
    let items: Vec<WorkItem> = probed_cases(model, 14, seed)
        .into_iter()
        .map(WorkItem::from)
        .collect();
    let staged = ValidationService::builder()
        .workers(compile_workers, 2, judge_workers)
        .build()
        .run(items.clone());
    let sequential = ValidationService::builder()
        .strategy(vv_pipeline::ExecutionStrategy::Sequential)
        .build()
        .run(items);
    assert_eq!(staged.records.len(), sequential.records.len());
    for (a, b) in staged.records.iter().zip(&sequential.records) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.pipeline_verdict(), b.pipeline_verdict());
        assert_eq!(a.stage_reached(), b.stage_reached());
    }
}
