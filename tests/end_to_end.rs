//! Workspace-level integration tests: the paper's headline qualitative
//! findings must hold for the reproduction (the *shape* of Tables I–IX).

use llm4vv::experiment::{run_part_one, run_part_two, Evaluator, PartOneConfig, PartTwoConfig};
use vv_probing::IssueKind;

fn acc_part_one() -> llm4vv::PartOneResults {
    run_part_one(&PartOneConfig {
        suite_size: 160,
        ..PartOneConfig::paper_openacc()
    })
}

fn omp_part_one() -> llm4vv::PartOneResults {
    run_part_one(&PartOneConfig {
        suite_size: 140,
        ..PartOneConfig::paper_openmp()
    })
}

fn acc_part_two() -> llm4vv::PartTwoResults {
    run_part_two(&PartTwoConfig {
        suite_size: 180,
        ..PartTwoConfig::paper_openacc()
    })
}

fn omp_part_two() -> llm4vv::PartTwoResults {
    run_part_two(&PartTwoConfig {
        suite_size: 150,
        ..PartTwoConfig::paper_openmp()
    })
}

fn accuracy_for(rows: &[vv_metrics::PerIssueRow], issue: IssueKind) -> f64 {
    rows.iter()
        .find(|r| r.issue == issue)
        .and_then(|r| r.accuracy)
        .expect("issue group populated at these suite sizes")
}

#[test]
fn agent_judges_and_pipeline_beat_the_plain_judge() {
    // The paper's central claim: agent-based prompting and the pipeline
    // structure drastically increase evaluation quality (Tables III vs IX/VI).
    let plain = acc_part_one().overall();
    let part_two = acc_part_two();
    let llmj1 = part_two.overall(Evaluator::Llmj1);
    let pipeline1 = part_two.overall(Evaluator::Pipeline1);
    assert!(
        llmj1.accuracy > plain.accuracy + 0.10,
        "agent LLMJ ({:.2}) should clearly beat the plain judge ({:.2})",
        llmj1.accuracy,
        plain.accuracy
    );
    assert!(
        pipeline1.accuracy > plain.accuracy + 0.15,
        "pipeline ({:.2}) should clearly beat the plain judge ({:.2})",
        pipeline1.accuracy,
        plain.accuracy
    );
}

#[test]
fn pipeline_catches_what_the_compiler_catches() {
    // Tables IV/V: syntax-level mutations (missing bracket, undeclared
    // variable) are caught at (or before) the compile stage with near-perfect
    // accuracy, for both programming models and both pipelines.
    for results in [acc_part_two(), omp_part_two()] {
        for evaluator in [Evaluator::Pipeline1, Evaluator::Pipeline2] {
            let rows = results.per_issue(evaluator);
            for issue in [
                IssueKind::RemovedOpeningBracket,
                IssueKind::UndeclaredVariableUse,
            ] {
                let accuracy = accuracy_for(&rows, issue);
                assert!(
                    accuracy >= 0.95,
                    "{evaluator:?} on {:?} accuracy {accuracy} for {issue:?}",
                    results.model
                );
            }
        }
    }
}

#[test]
fn truncated_verification_blocks_remain_the_hardest_issue_for_the_acc_pipeline() {
    // Table IV: "removed last bracketed section" is the one issue class the
    // OpenACC pipeline largely misses, because such files still compile, run
    // and return 0.
    let results = acc_part_two();
    let rows = results.per_issue(Evaluator::Pipeline1);
    let logic = accuracy_for(&rows, IssueKind::RemovedLastBracketedSection);
    for other in [
        IssueKind::RemovedOpeningBracket,
        IssueKind::UndeclaredVariableUse,
        IssueKind::ReplacedWithNonDirectiveCode,
    ] {
        assert!(
            accuracy_for(&rows, other) > logic,
            "{other:?} should be easier than truncated test logic"
        );
    }
}

#[test]
fn plain_judge_biases_match_the_paper_signs() {
    // Table III: the plain judge is strongly permissive on OpenACC
    // (bias ≈ +0.72) and roughly balanced-to-restrictive on OpenMP.
    let acc = acc_part_one().overall();
    let omp = omp_part_one().overall();
    assert!(
        acc.bias > 0.3,
        "OpenACC plain-judge bias should be clearly positive, got {}",
        acc.bias
    );
    assert!(
        omp.bias < 0.3,
        "OpenMP plain-judge bias should not be strongly positive, got {}",
        omp.bias
    );
    // and the plain judge is weak overall (well under the pipeline's level)
    assert!(acc.accuracy < 0.8);
    assert!(omp.accuracy < 0.7);
}

#[test]
fn agent_judges_are_permissive_and_pipelines_shift_toward_restrictive() {
    // Table IX vs Table VI: when stand-alone agent judges err they tend to
    // pass invalid files (positive bias); putting the compiler and runtime in
    // front of the judge removes permissive mistakes, shifting the pipeline's
    // bias toward the restrictive side. (The paper's pipelines end up
    // slightly negative because a fraction of its *hand-written valid* tests
    // fail to compile or run on the real system; the synthetic corpus is
    // valid by construction, so the reproduction only shows the shift — see
    // EXPERIMENTS.md.)
    let results = acc_part_two();
    let llmj1 = results.overall(Evaluator::Llmj1);
    let pipeline1 = results.overall(Evaluator::Pipeline1);
    assert!(
        llmj1.bias > 0.0,
        "LLMJ 1 bias should be positive, got {}",
        llmj1.bias
    );
    assert!(
        pipeline1.bias < llmj1.bias,
        "pipeline bias ({}) should be shifted toward restrictive relative to LLMJ 1 ({})",
        pipeline1.bias,
        llmj1.bias
    );
}

#[test]
fn missing_model_code_is_caught_by_judges_not_compilers() {
    // Issue 3 (file replaced by plain C) compiles and runs fine, so only the
    // judge stage can reject it — and the agent judges do so reliably for
    // OpenACC (Table VII: 97-100%).
    let results = acc_part_two();
    for record in &results.records {
        if record.issue == IssueKind::ReplacedWithNonDirectiveCode {
            assert!(
                record.compile_ok,
                "plain C replacement should compile ({})",
                record.case_id
            );
            assert_eq!(record.exec_passed, Some(true));
        }
    }
    let rows = results.per_issue(Evaluator::Llmj2);
    assert!(accuracy_for(&rows, IssueKind::ReplacedWithNonDirectiveCode) > 0.8);
}

#[test]
fn omp_pipeline_handles_test_logic_errors_better_than_acc_pipeline() {
    // Tables IV/V and Figures 3/4: the starkest OpenACC-vs-OpenMP difference
    // is on the "test logic" issue class (removed last bracketed section) —
    // the OpenMP pipeline catches most of them, the OpenACC pipeline misses
    // most — and overall the OpenMP pipeline is at least as accurate.
    let acc = acc_part_two();
    let omp = omp_part_two();
    let acc_logic = accuracy_for(
        &acc.per_issue(Evaluator::Pipeline1),
        IssueKind::RemovedLastBracketedSection,
    );
    let omp_logic = accuracy_for(
        &omp.per_issue(Evaluator::Pipeline1),
        IssueKind::RemovedLastBracketedSection,
    );
    assert!(
        omp_logic > acc_logic + 0.15,
        "OpenMP test-logic accuracy ({omp_logic:.2}) should clearly exceed OpenACC ({acc_logic:.2})"
    );
    let acc_overall = acc.overall(Evaluator::Pipeline1).accuracy;
    let omp_overall = omp.overall(Evaluator::Pipeline1).accuracy;
    assert!(
        omp_overall + 0.03 > acc_overall,
        "OpenMP pipeline accuracy ({omp_overall:.2}) should be at least comparable to OpenACC ({acc_overall:.2})"
    );
}
