//! Integration tests of the agent loop: the judge must actually receive the
//! compiler's and the program's outputs inside its prompt (Figure 1 /
//! Listing 2 of the paper), and the pipeline must wire those tools up
//! correctly for both valid and damaged files.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vv_corpus::{CaseSource, TemplateSource};
use vv_dclang::DirectiveModel;
use vv_judge::Verdict;
use vv_pipeline::{PipelineMode, Stage, ValidationService, WorkItem};
use vv_probing::{apply_mutation, IssueKind};

fn record_all() -> ValidationService {
    ValidationService::builder()
        .mode(PipelineMode::RecordAll)
        .build()
}

fn early_exit() -> ValidationService {
    ValidationService::builder().build()
}

fn items_from(model: DirectiveModel, size: usize, seed: u64) -> Vec<WorkItem> {
    TemplateSource::new(model, seed)
        .take(size)
        .into_cases()
        .map(WorkItem::from)
        .collect()
}

#[test]
fn judge_prompts_embed_real_tool_outputs() {
    let items = items_from(DirectiveModel::OpenAcc, 6, 1001);
    let run = record_all().run(items);
    for record in &run.records {
        let judgement = record
            .judgement
            .as_ref()
            .expect("record-all judges everything");
        // The agent prompt must contain the exact tool sections of Listing 2.
        assert!(judgement.prompt.contains("Compiler return code:"));
        assert!(judgement.prompt.contains("When the compiled code is run"));
        assert!(judgement.prompt.contains(&format!(
            "Compiler return code: {}",
            record.compile.return_code
        )));
        if let Some(exec) = &record.exec {
            assert!(judgement
                .prompt
                .contains(&format!("Return code: {}", exec.return_code)));
            if !exec.stdout.is_empty() {
                assert!(judgement.prompt.contains(exec.stdout.trim_end()));
            }
        }
        // Cost accounting must be populated.
        assert!(judgement.prompt_tokens > 100);
        assert!(judgement.response_tokens > 0);
        assert!(judgement.latency_ms > 0.0);
    }
}

#[test]
fn compile_failures_surface_in_the_prompt_and_drive_the_verdict() {
    // Mutate a valid file so that it cannot compile, then check the agent
    // judge is told about it and the pipeline rejects it at the right stage.
    let case = &TemplateSource::new(DirectiveModel::OpenMp, 77)
        .into_cases()
        .next()
        .expect("the template source is unbounded")
        .case;
    let mut rng = StdRng::seed_from_u64(5);
    let mutated = apply_mutation(case, IssueKind::RemovedOpeningBracket, &mut rng);

    let items = vec![WorkItem {
        id: "broken".into(),
        source: mutated.source,
        lang: case.lang,
        model: DirectiveModel::OpenMp,
    }];

    // Record-all: the judge still sees the file, with the compiler errors.
    let record_all = record_all().run(items.clone());
    let record = &record_all.records[0];
    assert!(!record.compile.succeeded);
    let judgement = record.judgement.as_ref().unwrap();
    assert!(judgement.prompt.contains("error"));
    assert_eq!(record.pipeline_verdict(), Verdict::Invalid);

    // Early-exit: the file never reaches the judge at all.
    let early = early_exit().run(items);
    let record = &early.records[0];
    assert!(record.judgement.is_none());
    assert_eq!(record.stage_reached(), Stage::Compile);
    assert_eq!(record.pipeline_verdict(), Verdict::Invalid);
}

#[test]
fn valid_files_reach_the_judge_stage_even_with_early_exit() {
    let items = items_from(DirectiveModel::OpenAcc, 8, 4242);
    let run = early_exit().run(items);
    for record in &run.records {
        assert!(record.compile.succeeded, "{} should compile", record.id);
        assert_eq!(
            record.stage_reached(),
            Stage::Judge,
            "{} should be judged",
            record.id
        );
        assert!(record.exec.as_ref().is_some_and(|e| e.passed));
    }
    assert_eq!(run.stats.judged, run.stats.submitted);
    assert!(run.stats.simulated_judge_latency_ms > 0.0);
}
