//! Cross-crate conformance tests: everything the corpus emits must stay
//! inside the specification subset the simulated compilers enforce — this is
//! the invariant behind the paper's decision to cap OpenMP at 4.5 so that
//! the toolchain is fully compliant for every feature used.

use vv_corpus::{CaseSource, TemplateSource};
use vv_dclang::{parse_source, DirectiveModel};
use vv_specs::{default_version, directive_spec, validate_directive, Version};

fn suite_sources(model: DirectiveModel, size: usize, seed: u64) -> Vec<String> {
    TemplateSource::new(model, seed)
        .take(size)
        .into_cases()
        .map(|c| c.source)
        .collect()
}

#[test]
fn every_emitted_directive_is_spec_conforming() {
    for model in [DirectiveModel::OpenAcc, DirectiveModel::OpenMp] {
        let version = default_version(model);
        for source in suite_sources(model, 60, 314) {
            let parsed = parse_source(&source).expect("corpus output parses");
            for directive in parsed.unit.all_directives() {
                assert_eq!(
                    directive.model,
                    Some(model),
                    "foreign pragma in corpus:\n{source}"
                );
                let issues = validate_directive(directive, version);
                assert!(
                    issues.is_empty(),
                    "directive '{}' violates the spec: {issues:?}\n{source}",
                    directive.raw
                );
            }
        }
    }
}

#[test]
fn omp_corpus_stays_within_4_5() {
    // The paper restricts its OpenMP corpus to 4.5 features so the LLVM
    // offloading compiler supports everything; the generator must honour
    // that cap.
    for source in suite_sources(DirectiveModel::OpenMp, 60, 2718) {
        let parsed = parse_source(&source).expect("corpus output parses");
        for directive in parsed.unit.all_directives() {
            let name = directive.display_name();
            let spec = directive_spec(DirectiveModel::OpenMp, &name)
                .unwrap_or_else(|| panic!("unknown directive '{name}'"));
            assert!(
                spec.since <= Version::OMP_4_5,
                "directive '{name}' requires OpenMP {} (> 4.5)",
                spec.since
            );
        }
    }
}

#[test]
fn every_directive_in_the_spec_tables_round_trips_through_the_pragma_parser() {
    use vv_dclang::directive::parse_pragma;
    use vv_dclang::Span;
    for (model, sentinel) in [
        (DirectiveModel::OpenAcc, "acc"),
        (DirectiveModel::OpenMp, "omp"),
    ] {
        for spec in vv_specs::directives_for(model) {
            let parsed = parse_pragma(&format!("{sentinel} {}", spec.name), Span::unknown());
            assert_eq!(parsed.model, Some(model));
            // Either the full name parses back, or (for names containing
            // clause-like words) the parser keeps a prefix — but it must
            // never misattribute the sentinel.
            assert!(
                spec.name.starts_with(&parsed.display_name()) || parsed.display_name() == spec.name,
                "directive '{}' parsed as '{}'",
                spec.name,
                parsed.display_name()
            );
        }
    }
}
