//! Runner-parity determinism tests: the `Staged`, `Sequential` and
//! `RayonBatch` strategies of the `ValidationService` must produce
//! **byte-identical** `CaseRecord`s — same verdicts, same summaries, same
//! judge prompts and responses — for the same seeds and inputs, in both
//! `EarlyExit` and `RecordAll` modes. This is the contract that lets the
//! ablation benchmarks compare scheduling strategies without re-validating
//! semantics, and it is asserted here over full record equality
//! (`CaseRecord: PartialEq` covers every captured field).

use vv_corpus::CaseSource;
use vv_dclang::DirectiveModel;
use vv_pipeline::{
    CaseRecord, ExecutionStrategy, PipelineMode, ValidationService, ValidationServiceBuilder,
    WorkItem,
};
use vv_probing::CorpusSpec;

fn probed_spec(model: DirectiveModel, size: usize, seed: u64) -> CorpusSpec {
    CorpusSpec::new(model)
        .seed(seed)
        .probe_seed(seed ^ 0xA5A5)
        .size(size)
}

fn probed_items(model: DirectiveModel, size: usize, seed: u64) -> Vec<WorkItem> {
    probed_spec(model, size, seed)
        .source()
        .into_cases()
        .map(WorkItem::from)
        .collect()
}

fn builder(mode: PipelineMode, strategy: ExecutionStrategy) -> ValidationServiceBuilder {
    ValidationService::builder()
        .mode(mode)
        .strategy(strategy)
        .workers(3, 2, 2)
}

fn records_for(
    mode: PipelineMode,
    strategy: ExecutionStrategy,
    items: &[WorkItem],
) -> Vec<CaseRecord> {
    builder(mode, strategy).build().run(items.to_vec()).records
}

#[test]
fn strategies_produce_byte_identical_records_in_both_modes() {
    for model in [DirectiveModel::OpenAcc, DirectiveModel::OpenMp] {
        let items = probed_items(model, 36, 4711);
        for mode in [PipelineMode::EarlyExit, PipelineMode::RecordAll] {
            let reference = records_for(mode, ExecutionStrategy::Staged, &items);
            assert_eq!(reference.len(), items.len());
            for strategy in [ExecutionStrategy::Sequential, ExecutionStrategy::RayonBatch] {
                let candidate = records_for(mode, strategy, &items);
                assert_eq!(
                    reference, candidate,
                    "{model} {mode:?}: {strategy:?} diverged from Staged"
                );
            }
        }
    }
}

#[test]
fn strategies_produce_byte_identical_records_through_submit_source() {
    // Same contract as above, but with the corpus streamed straight into
    // the service (generation → probing → validation, no materialized
    // suite): every strategy must produce the same records, and they must
    // equal the records of the materialized item path.
    let spec = probed_spec(DirectiveModel::OpenAcc, 32, 9182);
    for mode in [PipelineMode::EarlyExit, PipelineMode::RecordAll] {
        let via_items = builder(mode, ExecutionStrategy::Staged)
            .build()
            .run(probed_items(DirectiveModel::OpenAcc, 32, 9182))
            .records;
        for strategy in ExecutionStrategy::ALL {
            let streamed = builder(mode, strategy)
                .build()
                .run_source(spec.source())
                .records;
            assert_eq!(
                via_items, streamed,
                "{mode:?}: {strategy:?} via submit_source diverged"
            );
        }
    }
}

#[test]
fn reruns_are_deterministic_per_strategy() {
    let items = probed_items(DirectiveModel::OpenAcc, 24, 99);
    for strategy in ExecutionStrategy::ALL {
        let first = records_for(PipelineMode::RecordAll, strategy, &items);
        let second = records_for(PipelineMode::RecordAll, strategy, &items);
        assert_eq!(
            first, second,
            "{strategy:?} is not deterministic across runs"
        );
    }
}

#[test]
fn streaming_submit_matches_the_batch_run() {
    let items = probed_items(DirectiveModel::OpenMp, 30, 2024);
    let service = ValidationService::builder()
        .mode(PipelineMode::RecordAll)
        .build();

    let batch = service.run(items.clone());

    // submit() yields in completion order; re-keying by id must reproduce
    // exactly the batch records, and the final stream stats must agree on
    // every counter (wall time differs by construction).
    let mut stream = service.submit(items.clone());
    let mut streamed: Vec<CaseRecord> = Vec::new();
    for record in &mut stream {
        streamed.push(record);
    }
    assert_eq!(streamed.len(), batch.records.len());
    let stream_stats = stream.stats();
    assert_eq!(stream_stats.submitted, batch.stats.submitted);
    assert_eq!(stream_stats.judged, batch.stats.judged);
    assert_eq!(stream_stats.compile_failures, batch.stats.compile_failures);

    streamed.sort_by(|a, b| a.id.cmp(&b.id));
    let mut expected = batch.records.clone();
    expected.sort_by(|a, b| a.id.cmp(&b.id));
    assert_eq!(streamed, expected);
}

#[test]
fn streaming_handles_lazily_generated_unbounded_style_input() {
    // The iterator is consumed lazily through the bounded channels: feed a
    // generator that would be wasteful to materialize, stop consuming after
    // a prefix, and drop the stream — the tail must never be produced.
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let items = probed_items(DirectiveModel::OpenAcc, 200, 31);
    let pulled = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&pulled);
    let lazy = items.into_iter().inspect(move |_| {
        counter.fetch_add(1, Ordering::SeqCst);
    });

    let service = ValidationService::builder()
        .channel_capacity(2)
        .workers(1, 1, 1)
        .build();
    let mut stream = service.submit(lazy);
    for _ in 0..5 {
        assert!(stream.next().is_some());
    }
    drop(stream);

    let consumed = pulled.load(Ordering::SeqCst);
    assert!(
        consumed < 200,
        "lazy input was fully materialized ({consumed}/200 items pulled)"
    );
}
