//! Merge laws of the streaming metrics accumulators.
//!
//! Property-style checks (deterministic seed sweeps, per the workspace's
//! offline-test convention) mirroring the corpus layer's shard-union tests
//! in `tests/corpus_source.rs`:
//!
//! * merge is associative and commutative with `Default::default()` as the
//!   identity, for every accumulator in `vv_metrics::accumulate`;
//! * a shard-merged fold is byte-identical to the unsharded fold for shard
//!   counts n ∈ {1, 2, 4} — over real probed-corpus records, not synthetic
//!   ones, so the law composes with the corpus shard-union law.

use vv_corpus::CaseSource;
use vv_judge::{JudgeOutcome, Verdict};
use vv_metrics::{
    per_issue, Accumulator, EvaluationRecord, LatencyHistogram, LatencyTokenSummary, MetricsSink,
    OverallAccumulator, PerIssueAccumulator, RadarAccumulator,
};
use vv_probing::{CorpusSpec, IssueKind};

/// Deterministic record stream: real probed-corpus ground truth with a
/// seeded surrogate verdict (the laws are about the fold, not the judge).
fn corpus_records(seed: u64, count: usize) -> Vec<EvaluationRecord> {
    CorpusSpec::new(vv_dclang::DirectiveModel::OpenAcc)
        .seed(seed)
        .probe_seed(seed ^ 0x4C_41_57)
        .size(count)
        .source()
        .into_cases()
        .enumerate()
        .map(|(i, case)| {
            let verdict = match (i + seed as usize) % 5 {
                0 | 1 => Some(Verdict::Valid),
                2 | 3 => Some(Verdict::Invalid),
                _ => None,
            };
            EvaluationRecord::new(case.case.id.clone(), IssueKind::of_case(&case), verdict)
        })
        .collect()
}

/// Assert the identity / commutativity / associativity laws of one
/// accumulator type over one observation stream.
fn assert_merge_laws<T, A>(items: &[T])
where
    A: Accumulator<T> + Clone + PartialEq + std::fmt::Debug,
{
    let whole: A = Accumulator::fold(items);

    // Identity, both ways.
    let mut left_identity = A::default();
    left_identity.merge(&whole);
    assert_eq!(left_identity, whole, "default ⊕ x = x");
    let mut right_identity = whole.clone();
    right_identity.merge(&A::default());
    assert_eq!(right_identity, whole, "x ⊕ default = x");

    // Commutativity and fold/merge exchange over every tested split.
    for split in [0, 1, items.len() / 3, items.len() / 2, items.len()] {
        let (left, right) = items.split_at(split);
        let a: A = Accumulator::fold(left);
        let b: A = Accumulator::fold(right);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, whole, "fold(l) ⊕ fold(r) = fold(all), split {split}");
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ba, whole, "merge commutes, split {split}");
    }

    // Associativity over thirds.
    let third = items.len() / 3;
    let (a, rest) = items.split_at(third);
    let (b, c) = rest.split_at(third);
    let (a, b, c): (A, A, A) = (
        Accumulator::fold(a),
        Accumulator::fold(b),
        Accumulator::fold(c),
    );
    let mut left_tree = a.clone();
    left_tree.merge(&b);
    left_tree.merge(&c);
    let mut right_tree = b.clone();
    right_tree.merge(&c);
    let mut a_then_right = a.clone();
    a_then_right.merge(&right_tree);
    assert_eq!(left_tree, a_then_right, "(a ⊕ b) ⊕ c = a ⊕ (b ⊕ c)");
}

#[test]
fn record_accumulators_satisfy_the_merge_laws() {
    for seed in [1u64, 7, 42] {
        let records = corpus_records(seed, 90);
        assert_merge_laws::<_, PerIssueAccumulator>(&records);
        assert_merge_laws::<_, OverallAccumulator>(&records);
        assert_merge_laws::<_, RadarAccumulator>(&records);
        assert_merge_laws::<_, MetricsSink>(&records);
    }
}

#[test]
fn latency_accumulators_satisfy_the_merge_laws() {
    // Inference-cost-model-shaped latencies: base + per-token costs.
    let latencies: Vec<f64> = (0..240)
        .map(|i| 120.0 + 0.5 * ((i * 31) % 900) as f64 + 28.0 * ((i * 7) % 200) as f64)
        .collect();
    assert_merge_laws::<_, LatencyHistogram>(&latencies);

    let outcomes: Vec<JudgeOutcome> = latencies
        .iter()
        .enumerate()
        .map(|(i, &latency_ms)| JudgeOutcome {
            prompt: String::new(),
            response: String::new(),
            verdict: if i % 11 == 0 {
                None
            } else {
                Some(Verdict::Valid)
            },
            prompt_tokens: (i * 31) % 900,
            response_tokens: (i * 7) % 200,
            latency_ms,
        })
        .collect();
    assert_merge_laws::<_, LatencyTokenSummary>(&outcomes);
}

#[test]
fn shard_merged_metrics_are_byte_identical_to_the_unsharded_fold() {
    // The analysis-side mirror of the corpus shard-union law: fold each
    // round-robin shard independently, merge, and compare byte-for-byte —
    // accumulator state, derived rows, stats and series alike.
    let records = corpus_records(2024, 120);
    let whole: MetricsSink = Accumulator::fold(&records);
    for n in [1usize, 2, 4] {
        let mut merged = MetricsSink::default();
        for k in 0..n {
            let shard: Vec<&EvaluationRecord> = records.iter().skip(k).step_by(n).collect();
            let mut sink = MetricsSink::default();
            for record in shard {
                sink.observe(record);
            }
            merged.merge(&sink);
        }
        assert_eq!(merged, whole, "n = {n}");
        assert_eq!(merged.per_issue_rows(), whole.per_issue_rows(), "n = {n}");
        assert_eq!(merged.overall_stats(), whole.overall_stats(), "n = {n}");
        assert_eq!(merged.radar_series(), whole.radar_series(), "n = {n}");
        // ...and both equal the legacy batch computation.
        assert_eq!(merged.per_issue_rows(), per_issue(&records), "n = {n}");
    }
}

#[test]
fn latency_quantiles_are_identical_across_shard_merges() {
    let latencies: Vec<f64> = (0..360)
        .map(|i| 120.0 + 28.0 * ((i * 13) % 250) as f64)
        .collect();
    let whole: LatencyHistogram = Accumulator::fold(&latencies);
    for n in [2usize, 4] {
        let mut merged = LatencyHistogram::default();
        for k in 0..n {
            let shard: Vec<f64> = latencies.iter().copied().skip(k).step_by(n).collect();
            merged.merge(&Accumulator::fold(&shard));
        }
        assert_eq!(merged.p50(), whole.p50(), "n = {n}");
        assert_eq!(merged.p95(), whole.p95(), "n = {n}");
        assert_eq!(merged.p99(), whole.p99(), "n = {n}");
        assert_eq!(merged.max_ms(), whole.max_ms(), "n = {n}");
        assert_eq!(merged.count(), whole.count(), "n = {n}");
    }
}
