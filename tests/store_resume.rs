//! Crash-safety and resume laws for the artifact store and the campaign
//! journal (`vv-store` + `llm4vv::incremental`).
//!
//! 1. **Journal torn-write sweep** — a journal truncated at *every* byte
//!    offset inside (or at the start of) its final frame recovers to
//!    exactly the preceding frames: never fewer, never garbage, and the
//!    file is physically repaired so the next open is clean;
//! 2. **Segment torn-write sweep** — a sealed segment truncated at every
//!    byte offset inside its final record reopens with only that record
//!    quarantined; every earlier record stays readable and the repaired
//!    store fscks clean;
//! 3. **Resume identity** — a budget-interrupted campaign resumed to
//!    completion produces metrics byte-identical to an uninterrupted
//!    incremental run *and* to the plain in-memory
//!    [`run_campaign`](llm4vv::campaign::run_campaign) (modulo
//!    [`stage_stats`]'s provenance/wall-time exclusions);
//! 4. **Warm re-run** — re-running a completed campaign validates zero
//!    fresh cases, exactly as the delta planner predicts.
//!
//! Release runs scale the sweeps and the campaigns (same gating idiom as
//! `tests/compile_parity.rs`); debug runs shrink so tier-1 `cargo test -q`
//! stays fast.

use std::path::PathBuf;

use llm4vv::campaign::{run_campaign, ScenarioMatrix};
use llm4vv::incremental::{plan_campaign_delta, run_incremental_campaign, stage_stats};
use vv_pipeline::ExecutionStrategy;
use vv_store::{check, fnv1a, kind, ArtifactStore, Journal};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vv-store-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Sweep sizes: number of journal frames / segment records and the rough
/// payload size of the final one (every byte offset of which is cut).
fn sweep_scale() -> (usize, usize) {
    if cfg!(debug_assertions) {
        (8, 64)
    } else {
        (48, 1024)
    }
}

fn campaign_matrix() -> ScenarioMatrix {
    let size = if cfg!(debug_assertions) { 60 } else { 2_000 };
    ScenarioMatrix::new(size)
        .strategies(vec![
            ExecutionStrategy::Staged,
            ExecutionStrategy::Sequential,
        ])
        .shards(2)
}

/// A deterministic, incompressible-ish payload for frame/record `i`.
fn payload(i: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| (i.wrapping_mul(31).wrapping_add(j.wrapping_mul(131)) % 251) as u8)
        .collect()
}

#[test]
fn journal_recovers_from_a_tear_at_every_offset_of_the_final_frame() {
    let (frames, payload_len) = sweep_scale();
    let dir = temp_dir("journal-sweep");
    let master = dir.join("master.vvj");

    // Build the master journal and note where the final frame begins.
    let (mut journal, _) = Journal::open(&master, b"sweep").expect("create journal");
    for i in 0..frames - 1 {
        journal.append(&payload(i, payload_len)).expect("append");
    }
    let last_frame_start = std::fs::metadata(&master).expect("stat").len();
    journal
        .append(&payload(frames - 1, payload_len))
        .expect("append final");
    drop(journal);
    let full_len = std::fs::metadata(&master).expect("stat").len();
    assert!(last_frame_start < full_len);

    for cut in last_frame_start..full_len {
        let torn = dir.join("torn.vvj");
        std::fs::copy(&master, &torn).expect("copy");
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&torn)
            .expect("open for truncate");
        file.set_len(cut).expect("truncate");
        drop(file);

        let (journal, mut recovery) = Journal::open(&torn, b"sweep").expect("reopen torn");
        assert!(!recovery.reset, "same tag never resets");
        assert_eq!(
            recovery.frame_count,
            frames as u64 - 1,
            "cut at {cut}: exactly the final frame is dropped"
        );
        assert_eq!(recovery.truncated_bytes, cut - last_frame_start);
        let mut recovered = 0usize;
        while let Some(frame) = recovery.frames.next_frame().expect("cursor") {
            assert_eq!(frame, payload(recovered, payload_len), "cut at {cut}");
            recovered += 1;
        }
        assert_eq!(recovered, frames - 1);
        drop(journal);

        // The tear was physically truncated away: a second open is clean.
        let (_, recheck) = Journal::open(&torn, b"sweep").expect("reopen repaired");
        assert_eq!(recheck.truncated_bytes, 0, "cut at {cut}: repair persisted");
        assert_eq!(recheck.frame_count, frames as u64 - 1);
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn segment_quarantines_only_the_record_torn_at_every_offset() {
    let (records, payload_len) = sweep_scale();
    let master = temp_dir("segment-master");

    // One sealed segment holding `records` records.
    let store = ArtifactStore::open(&master).expect("create store");
    let keys: Vec<Vec<u8>> = (0..records)
        .map(|i| format!("key-{i:04}").into_bytes())
        .collect();
    for (i, key) in keys.iter().enumerate() {
        store
            .put(kind::CASE, fnv1a(key), key, &payload(i, payload_len))
            .expect("put");
    }
    store.flush().expect("flush");
    drop(store);
    let segment = std::fs::read_dir(&master)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("seg-"))
        })
        .expect("one sealed segment");

    // Locate the final record by walking the documented segment format:
    // 8-byte magic, then records of `len: u32 | checksum: u64 | payload`.
    let bytes = std::fs::read(&segment).expect("read segment");
    let mut pos = 8usize;
    let mut last_record_start = pos;
    while pos < bytes.len() {
        last_record_start = pos;
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("len prefix")) as usize;
        pos += 12 + len;
    }
    assert_eq!(pos, bytes.len(), "segment walk consumed the whole file");

    for cut in last_record_start..bytes.len() {
        let dir = temp_dir("segment-sweep");
        for entry in std::fs::read_dir(&master).expect("read dir") {
            let entry = entry.expect("entry");
            std::fs::copy(entry.path(), dir.join(entry.file_name())).expect("copy");
        }
        let torn = dir.join(segment.file_name().expect("name"));
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&torn)
            .expect("open for truncate");
        file.set_len(cut as u64).expect("truncate");
        drop(file);

        let store = ArtifactStore::open(&dir).expect("reopen torn store");
        let report = store.open_report();
        assert_eq!(
            report.quarantined_records, 1,
            "cut at {cut}: exactly the torn record is quarantined"
        );
        assert_eq!(report.records, records - 1, "cut at {cut}");
        let mut missing = 0usize;
        for (i, key) in keys.iter().enumerate() {
            match store.get(kind::CASE, fnv1a(key), key) {
                Some(value) => assert_eq!(&value[..], &payload(i, payload_len)[..]),
                None => missing += 1,
            }
        }
        assert_eq!(missing, 1, "cut at {cut}: every earlier record survives");
        drop(store);

        // The repair rewrote segment + manifest: offline fsck agrees.
        let fsck = check(&dir).expect("fsck");
        assert!(
            fsck.clean(),
            "cut at {cut}: repaired store fscks clean:\n{fsck}"
        );
        assert_eq!(fsck.records, records - 1);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
    std::fs::remove_dir_all(&master).expect("cleanup");
}

#[test]
fn interrupted_resumed_campaign_is_byte_identical_to_uninterrupted_and_plain() {
    let matrix = campaign_matrix();
    let total: usize = matrix.len() * matrix.scenarios()[0].suite_size;
    let budget = total / 3;

    // Interrupted at a third of the validations, then resumed.
    let dir = temp_dir("resume");
    let partial = run_incremental_campaign(&matrix, &dir, Some(budget)).expect("partial");
    assert!(!partial.completed, "the budget interrupts mid-campaign");
    let resumed = run_incremental_campaign(&matrix, &dir, None).expect("resume");
    assert!(resumed.completed);
    assert!(
        resumed.total_replayed() > 0,
        "the journal checkpoint replayed"
    );

    // Uninterrupted incremental baseline (fresh store).
    let ref_dir = temp_dir("resume-ref");
    let uninterrupted = run_incremental_campaign(&matrix, &ref_dir, None).expect("baseline");
    assert!(uninterrupted.completed);

    // Plain in-memory campaign: same laws, no store at all.
    let plain = run_campaign(&matrix);

    for ((resumed, baseline), plain) in resumed
        .results
        .scenarios
        .iter()
        .zip(&uninterrupted.results.scenarios)
        .zip(&plain.scenarios)
    {
        for other in [baseline, plain] {
            assert_eq!(resumed.judge, other.judge);
            assert_eq!(resumed.pipeline, other.pipeline);
            assert_eq!(resumed.judge_load, other.judge_load);
            assert_eq!(stage_stats(&resumed.stats), stage_stats(&other.stats));
        }
    }

    for dir in [&dir, &ref_dir] {
        let fsck = check(dir).expect("fsck");
        assert!(fsck.clean(), "campaign store fscks clean:\n{fsck}");
        std::fs::remove_dir_all(dir).expect("cleanup");
    }
}

#[test]
fn warm_rerun_validates_nothing_and_matches_the_planner() {
    let matrix = campaign_matrix();
    let total: usize = matrix.len() * matrix.scenarios()[0].suite_size;
    let dir = temp_dir("warm");

    let cold = run_incremental_campaign(&matrix, &dir, None).expect("cold");
    assert!(cold.completed);

    let store = ArtifactStore::open_shared(&dir).expect("reopen");
    let delta = plan_campaign_delta(&matrix, &store);
    assert_eq!(delta.total_fresh(), 0, "planner: everything is stored");
    assert_eq!(delta.total_reused(), total);
    drop(store);

    let warm = run_incremental_campaign(&matrix, &dir, None).expect("warm");
    assert!(warm.completed);
    assert_eq!(warm.total_replayed(), 0, "the journal was cleared");
    assert_eq!(warm.total_fresh(), 0, "zero fresh validations");
    assert_eq!(warm.total_reused(), total);
    for (warm, cold) in warm.results.scenarios.iter().zip(&cold.results.scenarios) {
        assert_eq!(warm.judge, cold.judge);
        assert_eq!(warm.pipeline, cold.pipeline);
        assert_eq!(warm.judge_load, cold.judge_load);
        assert_eq!(stage_stats(&warm.stats), stage_stats(&cold.stats));
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
