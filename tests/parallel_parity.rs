//! Parity and shutdown laws of the pipelined work-stealing executor
//! (`ExecutionStrategy::Pipelined`).
//!
//! The contract under test, at release scale:
//!
//! * **Byte identity** — for every worker count and compile-cache shard
//!   layout, `Pipelined` produces records equal (full `CaseRecord`
//!   equality, every captured field) to the `Sequential` baseline, in both
//!   pipeline modes;
//! * **Submission order** — unlike the other streaming strategies, the
//!   pipelined executor's `RecordStream` yields records in submission
//!   order (its reorder buffer releases ordinal `n + 1` only after `n`);
//! * **Exact histogram merge** — per-worker judge-latency histograms merge
//!   into exactly the sequential run's histogram (the accumulator-merge
//!   law applied to per-worker private stats). Float *sums* of simulated
//!   latency are intentionally not asserted — f64 addition is not
//!   order-stable across schedules;
//! * **Clean shutdown** — dropping the stream mid-run (any worker count)
//!   leaves no deadlocked or leaked worker: the drop returns, the lazy
//!   input tail is never pulled, and the service remains usable.
//!
//! Cache hit/miss *totals* are schedule-dependent under concurrency (two
//! workers can race-miss the same address), so the cache law asserted here
//! is conservation — `hits + misses == compiled` — not equality with the
//! sequential split.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use vv_corpus::CaseSource;
use vv_dclang::DirectiveModel;
use vv_pipeline::{
    CaseRecord, ExecutionStrategy, PipelineMode, ValidationService, ValidationServiceBuilder,
    WorkItem,
};
use vv_probing::{CorpusSpec, ProbeConfig};

/// Release runs exercise the executor at the scale the ISSUE pins (≥10k
/// mixed cases); debug builds keep the suite fast.
const SCALE: usize = if cfg!(debug_assertions) { 120 } else { 10_000 };

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A mixed corpus: half the cases carry probing mutations, so compile
/// failures, exec failures and judge rejections all occur and every
/// early-exit path is taken.
fn mixed_items(model: DirectiveModel, size: usize, seed: u64) -> Vec<WorkItem> {
    let mut probe = ProbeConfig::with_seed(seed ^ 0xA5A5);
    probe.mutated_fraction = 0.5;
    CorpusSpec::new(model)
        .seed(seed)
        .probe(probe)
        .size(size)
        .source()
        .into_cases()
        .map(WorkItem::from)
        .collect()
}

fn builder(mode: PipelineMode, strategy: ExecutionStrategy) -> ValidationServiceBuilder {
    ValidationService::builder().mode(mode).strategy(strategy)
}

#[test]
fn pipelined_is_byte_identical_to_sequential_across_workers_and_shards() {
    let items = mixed_items(DirectiveModel::OpenAcc, SCALE, 0xBEEF);
    for mode in [PipelineMode::EarlyExit, PipelineMode::RecordAll] {
        let reference = builder(mode, ExecutionStrategy::Sequential)
            .build()
            .run(items.clone());
        assert_eq!(reference.records.len(), items.len());
        // Mixed corpus sanity: the parity claim is vacuous unless every
        // stage actually rejects something.
        assert!(reference.stats.compile_failures > 0, "no compile failures");

        for workers in WORKER_COUNTS {
            // Shard layouts: the default sharded cache and the single-lock
            // single-shard layout both uphold the identity.
            for shards in [0usize, 1] {
                let run = builder(mode, ExecutionStrategy::Pipelined { workers })
                    .compile_cache_shards(shards)
                    .build()
                    .run(items.clone());
                assert_eq!(
                    reference.records, run.records,
                    "{mode:?} workers={workers} shards={shards} diverged from Sequential"
                );
                assert_eq!(
                    run.stats.compile_cache_hits + run.stats.compile_cache_misses,
                    run.stats.compiled,
                    "{mode:?} workers={workers} shards={shards}: cache counter conservation"
                );
            }
        }
    }
}

#[test]
fn per_worker_judge_latency_histograms_merge_exactly() {
    // RecordAll judges every case, maximizing the histogram mass.
    let items = mixed_items(DirectiveModel::OpenMp, SCALE / 2, 0xD00D);
    let sequential = builder(PipelineMode::RecordAll, ExecutionStrategy::Sequential)
        .build()
        .run(items.clone());
    for workers in WORKER_COUNTS {
        let run = builder(
            PipelineMode::RecordAll,
            ExecutionStrategy::Pipelined { workers },
        )
        .build()
        .run(items.clone());
        assert_eq!(run.stats.judged, sequential.stats.judged);
        assert_eq!(
            run.stats.judge_latency, sequential.stats.judge_latency,
            "workers={workers}: merged per-worker histogram differs from sequential"
        );
        // Exact merge implies exact quantiles.
        assert_eq!(
            run.stats.judge_latency_p95(),
            sequential.stats.judge_latency_p95()
        );
    }
}

#[test]
fn pipelined_stream_yields_records_in_submission_order() {
    let items = mixed_items(DirectiveModel::OpenAcc, SCALE.min(2000), 7);
    let expected_ids: Vec<String> = items.iter().map(|item| item.id.clone()).collect();
    for workers in [2, 8] {
        let service = builder(
            PipelineMode::RecordAll,
            ExecutionStrategy::Pipelined { workers },
        )
        .build();
        let yielded: Vec<String> = service
            .submit(items.clone())
            .map(|record: CaseRecord| record.id)
            .collect();
        assert_eq!(
            yielded, expected_ids,
            "workers={workers}: stream order is not submission order"
        );
    }
}

#[test]
fn dropping_the_stream_mid_run_shuts_down_cleanly() {
    // The assertions here are (a) this test returning at all — a deadlocked
    // or leaked worker would hang the drop or the process — and (b) the
    // lazy input tail never being pulled once the consumer is gone.
    let items = mixed_items(DirectiveModel::OpenAcc, SCALE.max(1000), 0xACE);
    let total = items.len();
    for workers in WORKER_COUNTS {
        for taken in [0usize, 1, 7, 64] {
            let pulled = Arc::new(AtomicUsize::new(0));
            let counter = Arc::clone(&pulled);
            let lazy = items.clone().into_iter().inspect(move |_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
            let service = builder(
                PipelineMode::RecordAll,
                ExecutionStrategy::Pipelined { workers },
            )
            .channel_capacity(4)
            .build();
            let mut stream = service.submit(lazy);
            for _ in 0..taken {
                assert!(
                    stream.next().is_some(),
                    "stream ended before {taken} records"
                );
            }
            drop(stream);
            let consumed = pulled.load(Ordering::SeqCst);
            assert!(
                consumed < total,
                "workers={workers} taken={taken}: input was fully materialized \
                 ({consumed}/{total} pulled)"
            );
        }
        // The service survives abandoned streams: a fresh full run still
        // completes and accounts for every submission.
        let service = builder(
            PipelineMode::RecordAll,
            ExecutionStrategy::Pipelined { workers },
        )
        .build();
        let rerun = service.run(items.clone());
        assert_eq!(rerun.records.len(), total);
    }
}
