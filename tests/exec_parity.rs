//! Differential law: the register-bytecode VM must be **byte-identical** to
//! the tree-walking oracle across the full streaming corpus.
//!
//! This is the exec-layer mirror of the corpus/metrics byte-identity laws
//! from earlier PRs: for every compiled case — clean template output,
//! random non-directive code, and negative-probed mutants — the two engines
//! must agree on return code, stdout, stderr, fault *and* step count, and a
//! validation service wired with the oracle backend must produce the same
//! records and the same judge-latency histogram buckets as the production
//! (bytecode) service.
//!
//! Release runs sweep ≥ 10k mixed cases per the PR-4 acceptance bar; debug
//! runs shrink so tier-1 `cargo test -q` stays fast.

use vv_corpus::{CaseSource, RandomCodeSource, TemplateSource};
use vv_dclang::DirectiveModel;
use vv_pipeline::{ExecBackend, ExecSummary, PipelineMode, ValidationService, WorkItem};
use vv_probing::CorpusSpec;
use vv_simcompiler::{compiler_for, Program};
use vv_simexec::{ExecConfig, Executor, TreeWalkExecutor};

/// Mixed-case budget: clean templates + random code + probed mutants.
fn per_source_budget() -> usize {
    if cfg!(debug_assertions) {
        60 // tier-1 debug runs stay fast
    } else {
        1800 // 1800 × 2 models × 3 sources ≥ 10.8k mixed cases
    }
}

fn sources_for(model: DirectiveModel, seed: u64) -> Vec<Box<dyn CaseSource + Send>> {
    let n = per_source_budget();
    vec![
        Box::new(TemplateSource::new(model, seed).take(n)),
        Box::new(RandomCodeSource::new(model, seed ^ 0x5EED).take(n)),
        CorpusSpec::new(model)
            .seed(seed ^ 0xC0DE)
            .probe_seed(seed ^ 0xBEEF)
            .size(n)
            .source(),
    ]
}

fn assert_outcomes_identical(limits: ExecConfig, label: &str) {
    let vm = Executor::new(limits);
    let oracle = TreeWalkExecutor::new(limits);
    let mut compiled_count = 0usize;
    let mut total = 0usize;
    for model in [DirectiveModel::OpenAcc, DirectiveModel::OpenMp] {
        let compiler = compiler_for(model);
        for mut source in sources_for(model, 0x9A17) {
            while let Some(case) = source.next_case() {
                total += 1;
                let outcome = compiler.compile(&case.source, case.case.lang);
                let Some(program) = outcome.artifact else {
                    continue;
                };
                compiled_count += 1;
                let fast = vm.run(&program);
                let slow = oracle.run(&program);
                let id = &case.case.id;
                assert_eq!(
                    fast.return_code, slow.return_code,
                    "{label}/{id}: return code diverged\nvm stderr: {}\noracle stderr: {}",
                    fast.stderr, slow.stderr
                );
                assert_eq!(fast.stdout, slow.stdout, "{label}/{id}: stdout diverged");
                assert_eq!(fast.stderr, slow.stderr, "{label}/{id}: stderr diverged");
                assert_eq!(fast.fault, slow.fault, "{label}/{id}: fault diverged");
                assert_eq!(
                    fast.steps, slow.steps,
                    "{label}/{id}: step accounting diverged"
                );
            }
        }
    }
    assert!(
        compiled_count * 2 >= total,
        "{label}: corpus should mostly compile ({compiled_count}/{total})"
    );
}

#[test]
fn bytecode_vm_matches_treewalk_oracle_on_mixed_corpus() {
    assert_outcomes_identical(ExecConfig::default(), "default-limits");
}

#[test]
fn parity_holds_under_tight_step_and_capture_limits() {
    // Tight limits exercise the boundary behaviours where step coalescing
    // or capture truncation could diverge: mid-expression step-limit kills
    // and output clipped during formatting.
    assert_outcomes_identical(
        ExecConfig {
            step_limit: 700,
            max_call_depth: 16,
            capture_limit: 96,
        },
        "tight-limits",
    );
}

/// Directed regressions for divergences found in review: shapes the
/// semantic checker accepts but the corpus rarely generates.
#[test]
fn parity_on_adversarial_shapes() {
    let cases = [
        // A compute region whose body faults after freeing a mapped
        // allocation: the oracle still runs the exit-phase copy-back, whose
        // use-after-free segfault replaces the divide-by-zero.
        (
            DirectiveModel::OpenMp,
            r#"
#include <stdlib.h>
int main() {
    double *a = (double *)malloc(4 * sizeof(double));
    int z = 0;
#pragma omp target map(tofrom: a[0:4])
    { free(a); z = 1 / z; }
    return 0;
}
"#,
        ),
        // exit() inside a compute region: exit clauses still apply.
        (
            DirectiveModel::OpenAcc,
            r#"
#include <stdlib.h>
int main() {
    double *a = (double *)malloc(4 * sizeof(double));
#pragma acc parallel copy(a[0:4])
    { exit(7); }
    return 0;
}
"#,
        ),
        // A call with a missing argument whose parameter shadows a global:
        // the oracle's dynamic lookup falls through to the global.
        (
            DirectiveModel::OpenAcc,
            "int g = 41;\nint f(int g) { return g + 1; }\nint main() { return f(); }",
        ),
        // Assignment through the unbound parameter writes the global.
        (
            DirectiveModel::OpenAcc,
            "int g = 1;\nint f(int g) { g = 9; return 0; }\nint main() { f(); return g; }",
        ),
        // Forward global reference: unbound at init time in both engines,
        // with identical step accounting around the faulting load.
        (
            DirectiveModel::OpenMp,
            "int a = b + 1;\nint b = 2;\nint main() { return a; }",
        ),
    ];
    let vm = Executor::default();
    let oracle = TreeWalkExecutor::default();
    for (i, (model, source)) in cases.iter().enumerate() {
        let outcome = compiler_for(*model).compile(source, vv_simcompiler::Lang::C);
        let Some(program) = outcome.artifact else {
            panic!(
                "adversarial case {i} must compile; stderr: {}",
                outcome.stderr
            );
        };
        let fast = vm.run(&program);
        let slow = oracle.run(&program);
        assert_eq!(fast.return_code, slow.return_code, "case {i}: return code");
        assert_eq!(fast.stdout, slow.stdout, "case {i}: stdout");
        assert_eq!(fast.stderr, slow.stderr, "case {i}: stderr");
        assert_eq!(fast.fault, slow.fault, "case {i}: fault");
        assert_eq!(fast.steps, slow.steps, "case {i}: steps");
    }
}

/// The oracle as a pipeline backend, for service-level parity.
#[derive(Clone, Debug, Default)]
struct TreeWalkBackend {
    executor: TreeWalkExecutor,
}

impl ExecBackend for TreeWalkBackend {
    fn execute(&self, _item: &WorkItem, program: &Program) -> ExecSummary {
        let outcome = self.executor.run(program);
        ExecSummary {
            return_code: outcome.return_code,
            stdout: outcome.stdout.into(),
            stderr: outcome.stderr.into(),
            passed: outcome.return_code == 0,
        }
    }

    fn name(&self) -> &'static str {
        "treewalk-oracle"
    }
}

#[test]
fn service_records_and_latency_histogram_are_engine_independent() {
    let n = if cfg!(debug_assertions) { 80 } else { 2500 };
    for model in [DirectiveModel::OpenAcc, DirectiveModel::OpenMp] {
        let items: Vec<WorkItem> = CorpusSpec::new(model)
            .seed(0xFA57)
            .probe_seed(0x51_0C)
            .size(n)
            .source()
            .into_cases()
            .map(WorkItem::from)
            .collect();

        let bytecode_run = ValidationService::builder()
            .mode(PipelineMode::RecordAll)
            .build()
            .run(items.clone());
        let oracle_run = ValidationService::builder()
            .mode(PipelineMode::RecordAll)
            .exec_backend(TreeWalkBackend::default())
            .build()
            .run(items);

        // Byte-identical records: same exec summaries feed the judge the
        // same prompts, so verdicts and responses match too.
        assert_eq!(
            bytecode_run.records, oracle_run.records,
            "{model}: records diverged between engines"
        );
        // And the PipelineStats latency histogram has identical bucket
        // counts — the simulated judge latency is a pure function of the
        // evidence both engines must agree on.
        assert_eq!(
            bytecode_run.stats.judge_latency, oracle_run.stats.judge_latency,
            "{model}: judge-latency histogram buckets diverged"
        );
        assert_eq!(bytecode_run.stats.judged, oracle_run.stats.judged);
        assert_eq!(bytecode_run.stats.executed, oracle_run.stats.executed);
        assert_eq!(
            bytecode_run.stats.exec_failures,
            oracle_run.stats.exec_failures
        );
    }
}
