//! Quickstart: generate a tiny OpenACC V&V suite, damage half of it with
//! negative probing, run the validation pipeline, and print the paper's
//! metrics (per-issue accuracy, overall accuracy, bias).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use llm4vv::experiment::{run_part_two, Evaluator, PartTwoConfig};
use llm4vv::metrics::{render_overall_table, render_per_issue_table};
use vv_dclang::DirectiveModel;

fn main() {
    // 60 files: 30 stay valid, 30 receive one of the five mutation classes.
    let config = PartTwoConfig::quick(DirectiveModel::OpenAcc, 60);
    println!(
        "running the validation pipeline over {} probed OpenACC files...\n",
        config.suite_size
    );

    let results = run_part_two(&config);

    println!(
        "{}",
        render_per_issue_table(
            "Per-issue accuracy (validation pipeline vs stand-alone agent judge)",
            DirectiveModel::OpenAcc,
            &[
                ("Pipeline 1", &results.per_issue(Evaluator::Pipeline1)),
                ("LLMJ 1", &results.per_issue(Evaluator::Llmj1)),
            ],
        )
    );
    println!(
        "{}",
        render_overall_table(
            "Overall accuracy and bias",
            &[
                ("Pipeline 1", results.overall(Evaluator::Pipeline1)),
                ("LLMJ 1", results.overall(Evaluator::Llmj1)),
            ],
        )
    );
    println!(
        "The pipeline gates the expensive LLM judge behind the compiler and the runtime: \
         files that fail those stages are rejected without ever reaching the GPU."
    );
}
