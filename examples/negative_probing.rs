//! Negative probing walkthrough: take one valid OpenMP test, apply every
//! mutation class to it, and show what the simulated compiler, the execution
//! substrate and the surrogate judge each observe.
//!
//! ```text
//! cargo run --release --example negative_probing
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use vv_corpus::{CaseSource, TemplateSource};
use vv_dclang::DirectiveModel;
use vv_judge::{
    JudgeProfile, JudgeSession, PromptStyle, SurrogateLlmJudge, ToolContext, ToolRecord,
};
use vv_probing::{apply_mutation, IssueKind};
use vv_simcompiler::compiler_for;
use vv_simexec::Executor;

fn main() {
    let case = TemplateSource::new(DirectiveModel::OpenMp, 2024)
        .into_cases()
        .next()
        .expect("the template source is unbounded")
        .case;
    let case = &case;
    println!("=== original test ({}) ===\n{}\n", case.id, case.source);

    let compiler = compiler_for(DirectiveModel::OpenMp);
    let executor = Executor::default();
    let judge = JudgeSession::new(
        SurrogateLlmJudge::new(JudgeProfile::deepseek_agent_direct(), 99),
        PromptStyle::AgentDirect,
    );
    let mut rng = StdRng::seed_from_u64(7);

    for issue in IssueKind::ALL {
        let mutated = apply_mutation(case, issue, &mut rng);
        let compiled = compiler.compile(&mutated.source, case.lang);
        let exec = compiled
            .artifact
            .as_ref()
            .map(|program| executor.run(program));
        let tools = ToolContext {
            compile: Some(ToolRecord {
                return_code: compiled.return_code,
                stdout: std::sync::Arc::clone(&compiled.stdout),
                stderr: std::sync::Arc::clone(&compiled.stderr),
            }),
            run: exec.as_ref().map(|e| ToolRecord {
                return_code: e.return_code,
                stdout: e.stdout.as_str().into(),
                stderr: e.stderr.as_str().into(),
            }),
        };
        let judgement = judge.evaluate(&mutated.source, DirectiveModel::OpenMp, Some(&tools));

        println!("--- issue {} ({:?}) ---", issue.id(), issue);
        println!("mutation: {}", mutated.note);
        println!("compiler: return code {}", compiled.return_code);
        match &exec {
            Some(outcome) => println!("runtime : return code {}", outcome.return_code),
            None => println!("runtime : not executed (compilation failed)"),
        }
        println!(
            "judge   : {:?} (ground truth: {})",
            judgement.verdict,
            if issue.is_valid() { "valid" } else { "invalid" }
        );
        println!();
    }
}
