//! Streaming at scale: drive 120,000 generated + probed cases through
//! `ValidationService::submit_source` without ever materializing the suite.
//!
//! The corpus pipeline (template generation → negative probing) runs lazily
//! as the validation pipeline demands more work; at most the in-flight
//! window of cases exists at any moment, so peak memory is bounded by the
//! channel capacity — not by the suite size. The same suite as a
//! materialized `Vec<WorkItem>` would hold 120k source files in memory at
//! once.
//!
//! ```text
//! cargo run --release --example streaming_scale                 # 120k cases
//! cargo run --release --example streaming_scale -- 250000       # pick a size
//! cargo run --release --example streaming_scale -- 120000 pipelined:4
//! ```
//!
//! The optional second argument selects the scheduling strategy
//! (`staged` | `sequential` | `batch` | `pipelined[:N]`); every strategy
//! produces identical records, so the counters printed here are
//! strategy-independent by construction.

use std::time::Instant;

use vv_dclang::DirectiveModel;
use vv_judge::Verdict;
use vv_pipeline::{ExecutionStrategy, ValidationService};
use vv_probing::CorpusSpec;

fn parse_strategy(arg: &str) -> Option<ExecutionStrategy> {
    match arg {
        "staged" => Some(ExecutionStrategy::Staged),
        "sequential" => Some(ExecutionStrategy::Sequential),
        "batch" => Some(ExecutionStrategy::RayonBatch),
        "pipelined" => Some(ExecutionStrategy::Pipelined { workers: 0 }),
        _ => {
            let workers = arg.strip_prefix("pipelined:")?.parse().ok()?;
            Some(ExecutionStrategy::Pipelined { workers })
        }
    }
}

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(120_000);
    let strategy = match std::env::args().nth(2) {
        Some(arg) => match parse_strategy(&arg) {
            Some(strategy) => strategy,
            None => {
                eprintln!(
                    "unknown strategy {arg:?} (expected staged | sequential | batch | \
                     pipelined[:N])"
                );
                std::process::exit(2);
            }
        },
        None => ExecutionStrategy::Staged,
    };

    let spec = CorpusSpec::new(DirectiveModel::OpenAcc)
        .seed(0xACC5)
        .probe_seed(0xACC6)
        .size(size);
    println!("source : {}", spec.describe());

    let service = ValidationService::builder()
        .workers(4, 4, 2)
        .channel_capacity(64)
        .strategy(strategy)
        .build();
    println!("strategy: {}", service.strategy().label());

    let started = Instant::now();
    let mut stream = service.submit_source(spec.source());
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for record in &mut stream {
        // Records are consumed (and dropped) as they complete — nothing
        // accumulates on this side either.
        match record.pipeline_verdict() {
            Verdict::Valid => accepted += 1,
            Verdict::Invalid => rejected += 1,
        }
    }
    let stats = stream.stats();
    let elapsed = started.elapsed();

    println!(
        "validated {} cases in {:.2}s ({:.0} cases/s, wall-clock)",
        stats.submitted,
        elapsed.as_secs_f64(),
        stats.submitted as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    );
    println!(
        "accepted {accepted}, rejected {rejected}; compiled {}, executed {}, judged {} (early-exit saved the judge {:.0}% of the files)",
        stats.compiled,
        stats.executed,
        stats.judged,
        stats.judge_stage_savings() * 100.0
    );
    assert_eq!(
        stats.submitted, size,
        "every generated case must be validated"
    );
    assert_eq!(accepted + rejected, size);
    println!(
        "peak in-flight cases bounded by the channel capacity ({}) per stage — the {size}-file suite never existed in memory.",
        service.config().channel_capacity
    );
}
