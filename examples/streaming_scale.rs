//! Streaming at scale: drive 120,000 generated + probed cases through
//! `ValidationService::submit_source` without ever materializing the suite.
//!
//! The corpus pipeline (template generation → negative probing) runs lazily
//! on the service's feeder thread; at most `channel_capacity` cases exist
//! per pipeline stage at any moment, so peak memory is bounded by the
//! channel capacity — not by the suite size. The same suite as a
//! materialized `Vec<WorkItem>` would hold 120k source files in memory at
//! once.
//!
//! ```text
//! cargo run --release --example streaming_scale            # 120k cases
//! cargo run --release --example streaming_scale -- 250000  # pick a size
//! ```

use std::time::Instant;

use vv_dclang::DirectiveModel;
use vv_judge::Verdict;
use vv_pipeline::ValidationService;
use vv_probing::CorpusSpec;

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(120_000);

    let spec = CorpusSpec::new(DirectiveModel::OpenAcc)
        .seed(0xACC5)
        .probe_seed(0xACC6)
        .size(size);
    println!("source : {}", spec.describe());

    let service = ValidationService::builder()
        .workers(4, 4, 2)
        .channel_capacity(64)
        .build();

    let started = Instant::now();
    let mut stream = service.submit_source(spec.source());
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for record in &mut stream {
        // Records are consumed (and dropped) as they complete — nothing
        // accumulates on this side either.
        match record.pipeline_verdict() {
            Verdict::Valid => accepted += 1,
            Verdict::Invalid => rejected += 1,
        }
    }
    let stats = stream.stats();
    let elapsed = started.elapsed();

    println!(
        "validated {} cases in {:.2}s ({:.0} cases/s, wall-clock)",
        stats.submitted,
        elapsed.as_secs_f64(),
        stats.submitted as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    );
    println!(
        "accepted {accepted}, rejected {rejected}; compiled {}, executed {}, judged {} (early-exit saved the judge {:.0}% of the files)",
        stats.compiled,
        stats.executed,
        stats.judged,
        stats.judge_stage_savings() * 100.0
    );
    assert_eq!(
        stats.submitted, size,
        "every generated case must be validated"
    );
    assert_eq!(accepted + rejected, size);
    println!(
        "peak in-flight cases bounded by the channel capacity ({}) per stage — the {size}-file suite never existed in memory.",
        service.config().channel_capacity
    );
}
