//! Campaign quickstart: sweep a scenario matrix — directive model ×
//! execution strategy here — with every scenario streamed through the
//! validation service as sharded corpus sources and folded into mergeable
//! accumulators. Nothing is ever materialized: per scenario, memory is
//! bounded by the service's channel capacity, not the corpus size.
//!
//! ```text
//! cargo run --release --example campaign_matrix            # 4 scenarios x 3000 cases
//! cargo run --release --example campaign_matrix -- 25000   # pick a per-scenario size
//! ```

use llm4vv::campaign::{run_campaign, ScenarioMatrix};
use vv_dclang::DirectiveModel;
use vv_pipeline::ExecutionStrategy;

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(3_000);

    // 2 models x 2 strategies = 4 scenarios, each streamed as 2 shards.
    let matrix = ScenarioMatrix::new(size)
        .models(vec![DirectiveModel::OpenAcc, DirectiveModel::OpenMp])
        .strategies(vec![
            ExecutionStrategy::Staged,
            ExecutionStrategy::RayonBatch,
        ])
        .shards(2);
    println!(
        "running {} scenarios x {size} cases ({} cases total)...\n",
        matrix.len(),
        matrix.len() * size
    );

    let campaign = run_campaign(&matrix);
    println!("{}", campaign.comparison_table());

    let max_in_flight = campaign
        .scenarios
        .iter()
        .map(|s| s.max_in_flight)
        .max()
        .expect("non-empty campaign");
    println!(
        "peak in-flight ground-truth entries across all scenarios: {max_in_flight} \
         (the {size}-case suites never existed in memory)"
    );

    assert_eq!(campaign.scenarios.len(), 4);
    assert_eq!(campaign.total_cases(), 4 * size);
    for metrics in &campaign.scenarios {
        assert_eq!(metrics.stats.submitted, size, "{}", metrics.scenario.label);
        assert_eq!(metrics.stats.judged, size, "record-all judges every file");
    }
}
