//! Validation-service throughput demo: run the same probed OpenACC suite
//! through all four execution strategies of the `ValidationService`
//! (early-exit and record-all), compare wall time, judge-stage savings and
//! verdict agreement, then stream a corpus source through `submit_source`
//! to show records arriving as the suite is generated on the fly.
//!
//! ```text
//! cargo run --release --example validation_pipeline
//! ```

use vv_corpus::CaseSource;
use vv_dclang::DirectiveModel;
use vv_pipeline::{ExecutionStrategy, PipelineMode, ValidationService, WorkItem};
use vv_probing::CorpusSpec;

fn spec(size: usize) -> CorpusSpec {
    CorpusSpec::new(DirectiveModel::OpenAcc)
        .seed(7)
        .probe_seed(8)
        .size(size)
}

fn probed_items(size: usize) -> Vec<WorkItem> {
    let items: Vec<WorkItem> = spec(size)
        .source()
        .into_cases()
        .map(WorkItem::from)
        .collect();
    println!(
        "{} probed files materialized for the strategy comparison\n",
        items.len()
    );
    items
}

fn main() {
    let items = probed_items(120);

    // One service per (strategy, mode) combination — a single entry point,
    // `run`, regardless of scheduling.
    let staged = ValidationService::builder().build().run(items.clone());
    let staged_all = ValidationService::builder()
        .mode(PipelineMode::RecordAll)
        .build()
        .run(items.clone());
    let sequential = ValidationService::builder()
        .strategy(ExecutionStrategy::Sequential)
        .build()
        .run(items.clone());
    let batch = ValidationService::builder()
        .strategy(ExecutionStrategy::RayonBatch)
        .build()
        .run(items.clone());
    let pipelined = ValidationService::builder()
        .strategy(ExecutionStrategy::Pipelined { workers: 0 })
        .build()
        .run(items.clone());

    let agreement = staged
        .records
        .iter()
        .zip(&sequential.records)
        .filter(|(a, b)| a.pipeline_verdict() == b.pipeline_verdict())
        .count();

    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>16}",
        "strategy", "wall (ms)", "judged", "savings", "sim. GPU (ms)"
    );
    for (name, run) in [
        ("staged, early-exit", &staged),
        ("staged, record-all", &staged_all),
        ("sequential, early-exit", &sequential),
        ("batch par., early-exit", &batch),
        ("pipelined, early-exit", &pipelined),
    ] {
        println!(
            "{:<28} {:>10.1} {:>10} {:>11.0}% {:>16.0}",
            name,
            run.stats.wall_time.as_secs_f64() * 1e3,
            run.stats.judged,
            run.stats.judge_stage_savings() * 100.0,
            run.stats.simulated_judge_latency_ms,
        );
    }
    println!(
        "\nverdict agreement between staged and sequential strategies: {agreement}/{} files",
        staged.records.len()
    );
    println!(
        "early-exit spared the (simulated 33B-parameter) judge {:.0}% of the files that record-all would have sent to the GPU.",
        (1.0 - staged.stats.judged as f64 / staged_all.stats.judged.max(1) as f64) * 100.0
    );

    // Streaming: `submit_source` drains the corpus pipeline lazily through
    // the bounded channels — generation, probing and validation overlap,
    // and the suite is never materialized.
    let streaming_spec = spec(40);
    println!(
        "\nstreaming through submit_source (first 5 completions)\n  source: {}",
        streaming_spec.describe()
    );
    let service = ValidationService::builder().channel_capacity(4).build();
    let stream = service.submit_source(streaming_spec.source());
    let mut completed = 0usize;
    for record in stream {
        if completed < 5 {
            println!(
                "  {:<36} stage {:?}, verdict {:?}",
                record.id,
                record.stage_reached(),
                record.pipeline_verdict()
            );
        }
        completed += 1;
    }
    println!("  ... {completed} records streamed in completion order");
}
