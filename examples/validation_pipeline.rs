//! Validation-pipeline throughput demo: run the same probed OpenACC suite
//! through the staged multi-worker pipeline (early-exit and record-all), the
//! sequential baseline, and the per-file rayon runner, then compare wall
//! time, judge-stage savings and verdict agreement.
//!
//! ```text
//! cargo run --release --example validation_pipeline
//! ```

use vv_corpus::{generate_suite, SuiteConfig};
use vv_dclang::DirectiveModel;
use vv_pipeline::{PipelineConfig, ValidationPipeline, WorkItem};
use vv_probing::{build_probed_suite, ProbeConfig};

fn main() {
    let suite = generate_suite(&SuiteConfig::new(DirectiveModel::OpenAcc, 120, 7));
    let probed = build_probed_suite(&suite, &ProbeConfig::with_seed(8));
    let items: Vec<WorkItem> = probed
        .cases
        .iter()
        .map(|c| WorkItem {
            id: c.case.id.clone(),
            source: c.source.clone(),
            lang: c.case.lang,
            model: DirectiveModel::OpenAcc,
        })
        .collect();
    println!("{} probed files ({} valid, {} mutated)\n", probed.len(), probed.valid_count(), probed.len() - probed.valid_count());

    let early = ValidationPipeline::new(PipelineConfig::default());
    let record_all = ValidationPipeline::new(PipelineConfig::default().record_all());

    let staged = early.run(items.clone());
    let staged_all = record_all.run(items.clone());
    let sequential = early.run_sequential(items.clone());
    let rayon = early.run_batch_rayon(items.clone());

    let agreement = staged
        .records
        .iter()
        .zip(&sequential.records)
        .filter(|(a, b)| a.pipeline_verdict() == b.pipeline_verdict())
        .count();

    println!("{:<28} {:>10} {:>10} {:>12} {:>16}", "runner", "wall (ms)", "judged", "savings", "sim. GPU (ms)");
    for (name, run) in [
        ("staged, early-exit", &staged),
        ("staged, record-all", &staged_all),
        ("sequential, early-exit", &sequential),
        ("rayon per-file, early-exit", &rayon),
    ] {
        println!(
            "{:<28} {:>10.1} {:>10} {:>11.0}% {:>16.0}",
            name,
            run.stats.wall_time.as_secs_f64() * 1e3,
            run.stats.judged,
            run.stats.judge_stage_savings() * 100.0,
            run.stats.simulated_judge_latency_ms,
        );
    }
    println!(
        "\nverdict agreement between staged and sequential runners: {agreement}/{} files",
        staged.records.len()
    );
    println!(
        "early-exit spared the (simulated 33B-parameter) judge {:.0}% of the files that record-all would have sent to the GPU.",
        (1.0 - staged.stats.judged as f64 / staged_all.stats.judged.max(1) as f64) * 100.0
    );
}
