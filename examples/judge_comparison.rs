//! Judge comparison: evaluate the same probed OpenACC and OpenMP suites with
//! the plain (non-agent) judge and both agent-based judges, and print the
//! radar-category accuracy series behind Figures 5 and 6.
//!
//! ```text
//! cargo run --release --example judge_comparison
//! ```

use llm4vv::experiment::{run_part_one, run_part_two, Evaluator, PartOneConfig, PartTwoConfig};
use llm4vv::metrics::render_radar_table;
use vv_dclang::DirectiveModel;

fn main() {
    for model in [DirectiveModel::OpenAcc, DirectiveModel::OpenMp] {
        let part_one = run_part_one(&PartOneConfig::quick(model, 90));
        let part_two = run_part_two(&PartTwoConfig::quick(model, 90));
        let title = format!("Per-category accuracy for {model} (cf. Figures 5/6)");
        println!(
            "{}",
            render_radar_table(
                &title,
                &[
                    ("Non-agent LLMJ", &part_one.radar()),
                    ("LLMJ 1", &part_two.radar(Evaluator::Llmj1)),
                    ("LLMJ 2", &part_two.radar(Evaluator::Llmj2)),
                ],
            )
        );
        println!(
            "overall: non-agent {:.1}%, LLMJ 1 {:.1}%, LLMJ 2 {:.1}%, pipeline 1 {:.1}%\n",
            part_one.overall().accuracy * 100.0,
            part_two.overall(Evaluator::Llmj1).accuracy * 100.0,
            part_two.overall(Evaluator::Llmj2).accuracy * 100.0,
            part_two.overall(Evaluator::Pipeline1).accuracy * 100.0,
        );
    }
    println!("Agent-based prompting and the pipeline structure both lift accuracy well above the plain judge, as in the paper.");
}
