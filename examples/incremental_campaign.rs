//! Incremental campaigns over a durable artifact store: crash, resume,
//! and warm re-run.
//!
//! The demo runs the same scenario matrix three ways against `vv-store`
//! directories under `target/`:
//!
//! 1. **cold** — an uninterrupted run into a fresh store (the baseline);
//! 2. **crashed + resumed** — the identical matrix into a second fresh
//!    store, aborted after a third of the validations (simulating a
//!    crash at a checkpoint), then resumed: the journal tail replays and
//!    only the missing cases run. The merged metrics are asserted
//!    byte-identical to the cold run's;
//! 3. **warm** — the cold store re-run end to end: the journal is empty,
//!    but every case replays wholesale from the store, so zero cases are
//!    validated from scratch and the run finishes an order of magnitude
//!    faster.
//!
//! Both stores are fsck'd clean at the end.
//!
//! ```text
//! cargo run --release --example incremental_campaign          # 2 scenarios x 4000 cases
//! cargo run --release --example incremental_campaign -- 9000  # pick a per-scenario size
//! ```

use std::path::PathBuf;
use std::time::Instant;

use llm4vv::campaign::ScenarioMatrix;
use llm4vv::incremental::{plan_campaign_delta, run_incremental_campaign, stage_stats};
use vv_pipeline::ExecutionStrategy;
use vv_store::ArtifactStore;

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(4_000);
    let matrix = ScenarioMatrix::new(size)
        .strategies(vec![
            ExecutionStrategy::Staged,
            ExecutionStrategy::Sequential,
        ])
        .shards(2);
    let total = matrix.len() * size;

    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/incremental_campaign");
    let _ = std::fs::remove_dir_all(&root);
    let cold_dir = root.join("cold");
    let crash_dir = root.join("crashed");

    // Phase 1: uninterrupted cold run.
    println!(
        "phase 1: cold run, {} scenarios x {size} cases...",
        matrix.len()
    );
    let started = Instant::now();
    let cold = run_incremental_campaign(&matrix, &cold_dir, None).expect("cold run");
    let cold_time = started.elapsed();
    assert!(cold.completed);
    // The store pays off *within* the cold run already: duplicate-source
    // cases hit the record a sibling persisted moments earlier, and the
    // second scenario (same corpus, different execution strategy — which
    // does not change any stage outcome, so not part of the record key)
    // reuses everything the first one stored.
    assert_eq!(cold.total_fresh() + cold.total_reused(), total);
    assert_eq!(
        cold.progress[1].fresh, 0,
        "scenario 2 reuses every record scenario 1 stored"
    );
    println!(
        "  {total} cases in {cold_time:.2?}: {} validated fresh, {} reused in-run ({:.0} cases/s)\n",
        cold.total_fresh(),
        cold.total_reused(),
        total as f64 / cold_time.as_secs_f64()
    );

    // Phase 2: the same matrix into a second store, aborted a third of the
    // way through (the budget plays the role of a crash: the journal is
    // left mid-campaign), then resumed to completion.
    let budget = total / 3;
    println!("phase 2: crash after {budget} validations, then resume...");
    let crashed = run_incremental_campaign(&matrix, &crash_dir, Some(budget)).expect("aborted run");
    assert!(!crashed.completed, "the budget interrupts the campaign");
    assert!(
        crashed.total_fresh() <= budget,
        "the budget caps fresh validations"
    );
    assert!(
        crashed.total_fresh() > 0,
        "some work happened before the crash"
    );
    let resumed = run_incremental_campaign(&matrix, &crash_dir, None).expect("resumed run");
    assert!(resumed.completed);
    println!(
        "  resumed: {} replayed from the journal, {} reused from the store, {} fresh",
        resumed.total_replayed(),
        resumed.total_reused(),
        resumed.total_fresh()
    );
    for (interrupted, baseline) in resumed
        .results
        .scenarios
        .iter()
        .zip(&cold.results.scenarios)
    {
        assert_eq!(interrupted.judge, baseline.judge);
        assert_eq!(interrupted.pipeline, baseline.pipeline);
        assert_eq!(interrupted.judge_load, baseline.judge_load);
        assert_eq!(
            stage_stats(&interrupted.stats),
            stage_stats(&baseline.stats)
        );
    }
    println!("  crash + resume is byte-identical to the uninterrupted run\n");

    // Phase 3: warm re-run of the cold store. The delta planner predicts
    // zero fresh work; the run confirms it.
    println!("phase 3: warm re-run over the cold store...");
    let store = ArtifactStore::open_shared(&cold_dir).expect("reopen store");
    let delta = plan_campaign_delta(&matrix, &store);
    assert_eq!(delta.total_fresh(), 0, "planner: everything is stored");
    drop(store);
    let started = Instant::now();
    let warm = run_incremental_campaign(&matrix, &cold_dir, None).expect("warm run");
    let warm_time = started.elapsed();
    assert!(warm.completed);
    assert_eq!(warm.total_fresh(), 0, "zero fresh validations");
    assert_eq!(warm.total_reused(), total);
    for (rerun, baseline) in warm.results.scenarios.iter().zip(&cold.results.scenarios) {
        assert_eq!(rerun.judge, baseline.judge);
        assert_eq!(rerun.pipeline, baseline.pipeline);
    }
    let speedup = cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9);
    println!("  {total} cases replayed in {warm_time:.2?} — {speedup:.1}x faster than cold\n");
    if !cfg!(debug_assertions) {
        assert!(
            speedup >= 10.0,
            "warm replay must be >=10x faster than cold validation (got {speedup:.1}x)"
        );
    }

    // Phase 4: both stores verify clean offline.
    for dir in [&cold_dir, &crash_dir] {
        let report = vv_store::check(dir).expect("fsck");
        assert!(report.clean(), "fsck found problems:\n{report}");
        println!("fsck {}: clean ({} records)", dir.display(), report.records);
    }

    println!("\n{}", warm.results.comparison_table());
}
