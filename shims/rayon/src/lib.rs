//! Vendored, offline stand-in for the parts of `rayon` this workspace uses:
//! `slice.par_iter().map(f).collect()`.
//!
//! Work is distributed over `std::thread::scope` workers that claim items
//! through an atomic cursor (a simple work-stealing-free task queue).
//! Results are written back index-aligned, so `collect()` preserves input
//! order exactly like rayon's indexed parallel iterators.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The rayon prelude: import the traits.
pub mod prelude {
    pub use super::{IntoParallelRefIterator, ParallelIterator};
}

/// `.par_iter()` on slice-like containers.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Sync + 'a;

    /// A parallel iterator over `&Self::Item`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator returned by
/// [`IntoParallelRefIterator::par_iter`].
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each item in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// Mapped parallel iterator; consume it with
/// [`ParallelIterator::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// The subset of rayon's `ParallelIterator` the workspace consumes.
pub trait ParallelIterator {
    /// The produced item type.
    type Output: Send;

    /// Run the pipeline and gather results in input order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Output>;
}

impl<'a, T, R, F> ParallelIterator for ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    type Output = R;

    fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let workers = workers.min(self.items.len().max(1));
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(self.items.len()));
        let f = &self.f;
        let items = self.items;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= items.len() {
                            break;
                        }
                        local.push((index, f(&items[index])));
                    }
                    results.lock().unwrap().extend(local);
                });
            }
        });
        let mut indexed = results.into_inner().unwrap();
        indexed.sort_by_key(|(index, _)| *index);
        indexed.into_iter().map(|(_, value)| value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_input_order() {
        let input: Vec<u64> = (0..500).collect();
        let squares: Vec<u64> = input.par_iter().map(|x| x * x).collect();
        assert_eq!(squares, input.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_collects_empty() {
        let input: Vec<u8> = Vec::new();
        let out: Vec<u8> = input.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }
}
