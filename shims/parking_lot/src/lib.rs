//! Vendored, offline stand-in for the parts of `parking_lot` this workspace
//! uses: `Mutex` and `RwLock` with panic-free (non-poisoning) guards.
//!
//! Wraps `std::sync` primitives and recovers from poisoning, which matches
//! parking_lot's user-visible behaviour (no `Result` on `lock()`).

use std::sync::{self, PoisonError};

/// A mutex whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
