//! Vendored, offline stand-in for the parts of `criterion` this workspace's
//! benches use: benchmark groups, `bench_function` / `bench_with_input`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple — a warm-up pass followed by
//! `sample_size` timed samples, reporting min / mean / max per benchmark —
//! rather than criterion's full statistical machinery. Good enough to rank
//! strategies and spot order-of-magnitude regressions offline.

use std::fmt;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Measurement markers, mirroring `criterion::measurement`.
pub mod measurement {
    /// Wall-clock time (the only measurement this shim supports).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

/// A benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from a bare parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
}

impl Bencher {
    /// Time `routine`, once per sample, after a warm-up pass.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_up_until = Instant::now() + self.warm_up_time;
        loop {
            black_box(routine());
            if Instant::now() >= warm_up_until {
                break;
            }
        }
        for _ in 0..self.sample_size {
            let started = Instant::now();
            black_box(routine());
            self.samples.push(started.elapsed());
        }
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    _measurement: PhantomData<M>,
    _criterion: PhantomData<&'a mut Criterion>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = duration;
        self
    }

    /// Accepted for API compatibility; the shim's measurement time is
    /// `sample_size` iterations, whatever they cost.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
        };
        f(&mut bencher);
        self.report(&id.label, &bencher.samples);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (prints nothing extra; provided for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, label: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{label}: no samples", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "{}/{label}: mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
            self.name,
            mean,
            min,
            max,
            samples.len()
        );
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            _measurement: PhantomData,
            _criterion: PhantomData,
        }
    }
}

/// Bundle benchmark functions into a runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $bench(&mut criterion); )+
        }
    };
}

/// Produce `fn main` from runner groups, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        let mut runs = 0u32;
        group
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(
            runs >= 5,
            "warm-up plus 5 samples should run at least 5 times"
        );
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
