//! Vendored, offline stand-in for the parts of the `rand` crate this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this shim provides
//! an API-compatible subset of `rand` 0.8: [`Rng::gen_range`] over integer
//! and float ranges, [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but the workspace only relies
//! on *determinism per seed* and uniformity, never on a specific stream.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn unit_f64(word: u64) -> f64 {
    // 53 random mantissa bits -> [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Sample uniformly from `[low, high)`; `high` is exclusive.
    fn sample_half_open<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self;
    /// The successor value, used to widen `..=` bounds (saturating).
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is < span / 2^64, negligible for the small
                // spans this workspace draws.
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }
            fn successor(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self {
                assert!(low < high, "gen_range: empty range");
                low + (unit_f64(rng.next_u64()) as $t) * (high - low)
            }
            fn successor(self) -> Self {
                self
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_half_open(*self.start(), self.end().successor(), rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice extensions, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = super::rngs::StdRng::seed_from_u64(42);
        let mut b = super::rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = super::rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = super::rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..5);
            assert!(x < 5);
            let y: i32 = rng.gen_range(2..=5);
            assert!((2..=5).contains(&y));
            let z: f64 = rng.gen_range(0.0..3.5);
            assert!((0.0..3.5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = super::rngs::StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = super::rngs::StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle left the slice sorted");
    }
}
