//! Vendored, offline stand-in for the parts of `crossbeam` this workspace
//! uses: bounded MPMC channels with blocking `send`/`recv`, disconnect
//! semantics, a draining `iter()`, and the [`deque`] injector queue the
//! pipelined executor's work-stealing scheduler is built on.
//!
//! Built on `std::sync::{Mutex, Condvar}`. Throughput is lower than real
//! crossbeam's lock-free queues, but the pipeline's stage work dominates by
//! orders of magnitude, so the difference is irrelevant here.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        capacity: usize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Create a bounded MPMC channel with the given capacity (minimum 1).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a bounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Block until there is room, then enqueue `value`. Fails (returning
        /// the value) once every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < self.shared.capacity {
                    state.queue.push_back(value);
                    drop(state);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self.shared.not_full.wait(state).unwrap();
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake receivers blocked on an empty queue so they observe
                // the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives. Fails once the queue is empty and
        /// every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).unwrap();
            }
        }

        /// A blocking iterator that drains the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                // Wake senders blocked on a full queue so they observe the
                // disconnect instead of waiting forever.
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

pub mod deque {
    //! A minimal stand-in for `crossbeam-deque`'s [`Injector`]: a shared
    //! FIFO task queue that any worker can push to or steal from. The real
    //! crate pairs it with per-worker LIFO deques; the pipelined executor
    //! only needs the shared injector (one per stage), so only that type is
    //! vendored. [`Steal::Retry`] is kept for API fidelity, although this
    //! mutex-based implementation never needs to report a lost race.

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Outcome of a [`Injector::steal`] attempt, mirroring
    /// `crossbeam_deque::Steal`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried (never produced by
        /// this shim; matched for API fidelity).
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }
    }

    /// A FIFO task queue shared by every worker of a scheduler.
    #[derive(Debug)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// An empty queue.
        pub fn new() -> Self {
            Self {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue
                .lock()
                .unwrap_or_else(|poison| poison.into_inner())
        }

        /// Push a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.lock().push_back(task);
        }

        /// Steal the task at the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.lock().pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// True when no tasks are queued (racy by nature — a snapshot).
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        /// Number of queued tasks (racy by nature — a snapshot).
        pub fn len(&self) -> usize {
            self.lock().len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvError, SendError};
    use super::deque::{Injector, Steal};
    use std::thread;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let collected: Vec<i32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(collected, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn receiver_drop_wakes_blocked_senders() {
        let (tx, rx) = bounded(1);
        tx.send(0u8).unwrap();
        let producer = thread::spawn(move || tx.send(1)); // blocks: queue full
        thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert!(producer.join().unwrap().is_err());
    }

    #[test]
    fn injector_is_fifo() {
        let q = Injector::new();
        assert!(q.is_empty());
        for i in 0..4 {
            q.push(i);
        }
        assert_eq!(q.len(), 4);
        for expect in 0..4 {
            assert_eq!(q.steal(), Steal::Success(expect));
        }
        assert_eq!(q.steal(), Steal::Empty);
        assert_eq!(Steal::Success(7).success(), Some(7));
        assert_eq!(Steal::<i32>::Empty.success(), None);
    }

    #[test]
    fn injector_steals_are_exactly_once_across_threads() {
        let q = std::sync::Arc::new(Injector::new());
        for i in 0..1000 {
            q.push(i);
        }
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let q = std::sync::Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match q.steal() {
                            Steal::Success(task) => got.push(task),
                            Steal::Empty => break,
                            Steal::Retry => continue,
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<i32> = workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn mpmc_delivers_every_message_once() {
        let (tx, rx) = bounded(8);
        let mut workers = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            workers.push(thread::spawn(move || rx.iter().count()));
        }
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
