//! Execution outcomes.

use std::fmt;

/// A runtime fault classified by cause. Mapped to the exit codes a POSIX
/// shell would report for the corresponding signals, so the agent prompt
/// sees realistic "Return code" values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RuntimeFault {
    /// Invalid memory access (uninitialized pointer, out of bounds,
    /// use-after-free). Exit code 139 (SIGSEGV).
    Segfault,
    /// Integer division by zero. Exit code 136 (SIGFPE).
    DivideByZero,
    /// The interpreter's step budget was exhausted (runaway loop).
    /// Exit code 124, matching `timeout(1)`.
    StepLimit,
    /// Call stack exceeded the configured depth. Exit code 139.
    StackOverflow,
    /// The program used a feature the interpreter does not model.
    /// Exit code 134 (SIGABRT), as an assertion inside the runtime.
    Unsupported,
}

impl RuntimeFault {
    /// Shell-style exit code for the fault.
    pub fn exit_code(&self) -> i32 {
        match self {
            RuntimeFault::Segfault | RuntimeFault::StackOverflow => 139,
            RuntimeFault::DivideByZero => 136,
            RuntimeFault::StepLimit => 124,
            RuntimeFault::Unsupported => 134,
        }
    }

    /// The message printed to stderr, mirroring what a shell/loader prints.
    pub fn message(&self) -> &'static str {
        match self {
            RuntimeFault::Segfault => "Segmentation fault (core dumped)",
            RuntimeFault::StackOverflow => "Segmentation fault (stack overflow)",
            RuntimeFault::DivideByZero => "Floating point exception (core dumped)",
            RuntimeFault::StepLimit => "Killed: execution time limit exceeded",
            RuntimeFault::Unsupported => "runtime error: unsupported operation",
        }
    }
}

impl fmt::Display for RuntimeFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message())
    }
}

/// The observable result of running a compiled test.
///
/// This is exactly the information the paper's agent prompt embeds
/// ("Return code", "STDOUT", "STDERR") and the validation pipeline's
/// execution stage gates on (`return_code == 0`).
#[derive(Clone, Debug, Default)]
pub struct ExecOutcome {
    /// Process exit code (0 means the test passed its own verification).
    pub return_code: i32,
    /// Captured standard output.
    pub stdout: String,
    /// Captured standard error.
    pub stderr: String,
    /// The fault that terminated execution, if any.
    pub fault: Option<RuntimeFault>,
    /// Number of interpreter steps executed (for the cost model and stats).
    pub steps: u64,
}

impl ExecOutcome {
    /// True if the program ran to completion and returned 0.
    pub fn passed(&self) -> bool {
        self.return_code == 0
    }

    /// Construct an outcome for a fault.
    pub fn from_fault(fault: RuntimeFault, stdout: String, steps: u64) -> Self {
        Self {
            return_code: fault.exit_code(),
            stdout,
            stderr: format!("{}\n", fault.message()),
            fault: Some(fault),
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_exit_codes_are_signal_style() {
        assert_eq!(RuntimeFault::Segfault.exit_code(), 139);
        assert_eq!(RuntimeFault::DivideByZero.exit_code(), 136);
        assert_eq!(RuntimeFault::StepLimit.exit_code(), 124);
    }

    #[test]
    fn outcome_pass_predicate() {
        assert!(ExecOutcome {
            return_code: 0,
            ..Default::default()
        }
        .passed());
        assert!(!ExecOutcome::from_fault(RuntimeFault::Segfault, String::new(), 10).passed());
    }

    #[test]
    fn from_fault_fills_stderr() {
        let o = ExecOutcome::from_fault(RuntimeFault::Segfault, "partial\n".into(), 5);
        assert!(o.stderr.contains("Segmentation fault"));
        assert_eq!(o.stdout, "partial\n");
        assert_eq!(o.steps, 5);
    }
}
