//! The tree-walking reference interpreter (`treewalk-reference` feature).
//!
//! This is the original AST-walking executor, kept as the *oracle* for the
//! register-bytecode VM in [`crate::bytecode`]: `tests/exec_parity.rs`
//! drives the full streaming corpus through both engines and asserts
//! byte-identical [`ExecOutcome`]s (return code, stdout, stderr, fault).
//! Per-operation semantics live in `crate::rt` and are shared with the
//! VM; what this module keeps is the original *control flow* — scope-chain
//! hash maps, `Flow` propagation, per-node step accounting — which the
//! lowering pass must reproduce exactly.
//!
//! It is compiled only when the `treewalk-reference` feature is enabled;
//! production callers always execute through [`crate::Executor`], which
//! runs the bytecode VM.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::interp::ExecConfig;
use crate::memory::{DeviceSpace, HostSpace, MapKind};
use crate::outcome::{ExecOutcome, RuntimeFault};
use crate::rt::{self, EResult, LimitedWriter, Stop};
use crate::value::Value;
use vv_dclang::{AssignOp, BinOp, Directive, Expr, Function, Stmt, UnOp, VarDecl};
use vv_simcompiler::semantic::clause_variables;
use vv_simcompiler::Program;

/// Runs compiled programs by walking the AST (the reference oracle).
#[derive(Clone, Debug, Default)]
pub struct TreeWalkExecutor {
    /// Execution limits (identical semantics to [`crate::Executor`]).
    pub config: ExecConfig,
}

impl TreeWalkExecutor {
    /// Create a tree-walk executor with a custom configuration.
    pub fn new(config: ExecConfig) -> Self {
        Self { config }
    }

    /// Execute a compiled program and capture its observable behaviour.
    pub fn run(&self, program: &Program) -> ExecOutcome {
        let mut interp = Interp::new(program, &self.config);
        interp.run()
    }
}

/// Statement-level control flow.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

struct Interp<'p> {
    program: &'p Program,
    config: &'p ExecConfig,
    host: HostSpace,
    device: DeviceSpace,
    globals: HashMap<String, Value>,
    locals: Vec<HashMap<String, Value>>,
    stdout: String,
    stderr: String,
    steps: u64,
    call_depth: usize,
    /// Nesting depth of compute/offload regions; device copies are consulted
    /// while this is nonzero.
    offload_depth: usize,
    rng_state: u64,
}

impl<'p> Interp<'p> {
    fn new(program: &'p Program, config: &'p ExecConfig) -> Self {
        Self {
            program,
            config,
            host: HostSpace::new(),
            device: DeviceSpace::new(),
            globals: HashMap::new(),
            locals: Vec::new(),
            stdout: String::new(),
            stderr: String::new(),
            steps: 0,
            call_depth: 0,
            offload_depth: 0,
            rng_state: 0x9E3779B97F4A7C15,
        }
    }

    fn run(&mut self) -> ExecOutcome {
        let result = self.run_inner();
        let (return_code, fault) = match result {
            Ok(code) => (code, None),
            Err(Stop::Exit(code)) => (code, None),
            Err(Stop::Fault(fault)) => {
                self.stderr.push_str(fault.message());
                self.stderr.push('\n');
                (fault.exit_code(), Some(fault))
            }
        };
        ExecOutcome {
            return_code,
            stdout: std::mem::take(&mut self.stdout),
            stderr: std::mem::take(&mut self.stderr),
            fault,
            steps: self.steps,
        }
    }

    fn run_inner(&mut self) -> EResult<i32> {
        // Globals first.
        let globals: Vec<VarDecl> = self.program.unit.globals.clone();
        for decl in &globals {
            let value = self.init_decl_value(decl)?;
            self.globals.insert(decl.name.clone(), value);
        }
        let Some(main) = self.program.unit.function("main") else {
            return Err(Stop::Fault(RuntimeFault::Unsupported));
        };
        let result = self.call_function(main, Vec::new())?;
        Ok((result.as_i64() & 0xFF) as i32)
    }

    // ------------------------------------------------------------------
    // bookkeeping
    // ------------------------------------------------------------------

    fn step(&mut self) -> EResult<()> {
        self.steps += 1;
        if self.steps > self.config.step_limit {
            Err(Stop::Fault(RuntimeFault::StepLimit))
        } else {
            Ok(())
        }
    }

    fn push_scope(&mut self) {
        self.locals.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.locals.pop();
    }

    fn lookup(&self, name: &str) -> Option<&Value> {
        for scope in self.locals.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v);
            }
        }
        self.globals.get(name)
    }

    fn bind(&mut self, name: &str, value: Value) {
        if let Some(scope) = self.locals.last_mut() {
            scope.insert(name.to_string(), value);
        } else {
            self.globals.insert(name.to_string(), value);
        }
    }

    fn assign_var(&mut self, name: &str, value: Value) {
        for scope in self.locals.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = value;
                return;
            }
        }
        if let Some(slot) = self.globals.get_mut(name) {
            *slot = value;
            return;
        }
        // Should be prevented by semantic analysis; bind locally to stay robust.
        self.bind(name, value);
    }

    // ------------------------------------------------------------------
    // declarations
    // ------------------------------------------------------------------

    fn init_decl_value(&mut self, decl: &VarDecl) -> EResult<Value> {
        if !decl.array_dims.is_empty() {
            let mut total: i64 = 1;
            for dim in &decl.array_dims {
                let v = self.eval(dim)?.as_i64();
                total = total.saturating_mul(v.max(0));
            }
            let total = total.clamp(0, 4_000_000) as usize;
            let alloc = self.host.alloc(total);
            return Ok(Value::Ptr { alloc, offset: 0 });
        }
        match &decl.init {
            Some(init) => {
                let value = self.eval(init)?;
                Ok(rt::coerce(&decl.ty, value))
            }
            None => Ok(Value::Uninit),
        }
    }

    fn exec_decl(&mut self, decls: &[VarDecl]) -> EResult<()> {
        for decl in decls {
            let value = self.init_decl_value(decl)?;
            self.bind(&decl.name, value);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // functions
    // ------------------------------------------------------------------

    fn call_function(&mut self, func: &Function, args: Vec<Value>) -> EResult<Value> {
        if self.call_depth >= self.config.max_call_depth {
            return Err(Stop::Fault(RuntimeFault::StackOverflow));
        }
        self.call_depth += 1;
        let saved_locals = std::mem::take(&mut self.locals);
        self.push_scope();
        for (param, arg) in func.params.iter().zip(args) {
            let value = rt::coerce(&param.ty, arg);
            self.bind(&param.name, value);
        }
        let mut result = Value::Int(0);
        let flow = self.exec_stmts(&func.body.stmts);
        self.locals = saved_locals;
        self.call_depth -= 1;
        match flow? {
            Flow::Return(v) => result = v,
            Flow::Normal | Flow::Break | Flow::Continue => {}
        }
        Ok(result)
    }

    // ------------------------------------------------------------------
    // statements
    // ------------------------------------------------------------------

    fn exec_stmts(&mut self, stmts: &[Stmt]) -> EResult<Flow> {
        for stmt in stmts {
            match self.exec_stmt(stmt)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> EResult<Flow> {
        self.step()?;
        match stmt {
            Stmt::Decl(decls) => {
                self.exec_decl(decls)?;
                Ok(Flow::Normal)
            }
            Stmt::Expr(expr) => {
                self.eval(expr)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let c = self.eval(cond)?;
                if c.truthy() {
                    self.push_scope();
                    let flow = self.exec_stmt(then_branch);
                    self.pop_scope();
                    flow
                } else if let Some(else_branch) = else_branch {
                    self.push_scope();
                    let flow = self.exec_stmt(else_branch);
                    self.pop_scope();
                    flow
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.push_scope();
                if let Some(init) = init {
                    if let Flow::Return(v) = self.exec_stmt(init)? {
                        self.pop_scope();
                        return Ok(Flow::Return(v));
                    }
                }
                loop {
                    self.step()?;
                    if let Some(cond) = cond {
                        if !self.eval(cond)?.truthy() {
                            break;
                        }
                    }
                    match self.exec_stmt(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => {
                            self.pop_scope();
                            return Ok(Flow::Return(v));
                        }
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(step) = step {
                        self.eval(step)?;
                    }
                }
                self.pop_scope();
                Ok(Flow::Normal)
            }
            Stmt::While { cond, body, .. } => {
                loop {
                    self.step()?;
                    if !self.eval(cond)?.truthy() {
                        break;
                    }
                    match self.exec_stmt(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::DoWhile { body, cond, .. } => {
                loop {
                    self.step()?;
                    match self.exec_stmt(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if !self.eval(cond)?.truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(value, _) => {
                let v = match value {
                    Some(expr) => self.eval(expr)?,
                    None => Value::Int(0),
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break(_) => Ok(Flow::Break),
            Stmt::Continue(_) => Ok(Flow::Continue),
            Stmt::Block(block) => {
                self.push_scope();
                let flow = self.exec_stmts(&block.stmts);
                self.pop_scope();
                flow
            }
            Stmt::Directive { directive, body } => self.exec_directive(directive, body.as_deref()),
            Stmt::Empty(_) => Ok(Flow::Normal),
        }
    }

    // ------------------------------------------------------------------
    // directives
    // ------------------------------------------------------------------

    fn exec_directive(&mut self, directive: &Directive, body: Option<&Stmt>) -> EResult<Flow> {
        if directive.model != Some(self.program.model) {
            // Foreign or unknown pragma: ignored by this compiler/runtime.
            return match body {
                Some(body) => self.exec_stmt(body),
                None => Ok(Flow::Normal),
            };
        }
        let name = directive.display_name();
        let first = directive.name.first().map(String::as_str).unwrap_or("");

        match name.as_str() {
            // Standalone data management
            "enter data" | "target enter data" => {
                self.apply_data_clauses(directive, ClausePhase::Enter)?;
                Ok(Flow::Normal)
            }
            "exit data" | "target exit data" => {
                self.apply_data_clauses(directive, ClausePhase::Exit)?;
                Ok(Flow::Normal)
            }
            "update" | "target update" => {
                self.apply_update_clauses(directive)?;
                Ok(Flow::Normal)
            }
            // Structured data regions
            "data" | "target data" | "host_data" => {
                self.apply_data_clauses(directive, ClausePhase::Enter)?;
                let flow = match body {
                    Some(body) => self.exec_stmt(body)?,
                    None => Flow::Normal,
                };
                self.apply_data_clauses(directive, ClausePhase::Exit)?;
                Ok(flow)
            }
            _ => {
                let is_offload_compute = matches!(
                    first,
                    "parallel" | "kernels" | "serial" | "target" | "teams" | "task" | "taskloop"
                );
                if is_offload_compute {
                    self.apply_data_clauses(directive, ClausePhase::Enter)?;
                    self.offload_depth += 1;
                    let flow = match body {
                        Some(body) => self.exec_stmt(body),
                        None => Ok(Flow::Normal),
                    };
                    self.offload_depth -= 1;
                    self.apply_data_clauses(directive, ClausePhase::Exit)?;
                    flow
                } else {
                    // Worksharing/synchronization constructs inside an
                    // enclosing region (loop, for, simd, atomic, critical,
                    // master, single, sections, ordered, ...) just execute
                    // their body; the sequential interpreter already provides
                    // a consistent order.
                    match body {
                        Some(body) => self.exec_stmt(body),
                        None => Ok(Flow::Normal),
                    }
                }
            }
        }
    }

    fn apply_data_clauses(&mut self, directive: &Directive, phase: ClausePhase) -> EResult<()> {
        for clause in &directive.clauses {
            let Some(args) = &clause.args else { continue };
            let kind = match clause.name.as_str() {
                "copyin" => Some(MapKind::ToDevice),
                "copyout" => Some(MapKind::FromDevice),
                "copy" => Some(MapKind::Both),
                "create" | "no_create" => Some(MapKind::AllocOnly),
                "present" => Some(MapKind::AllocOnly),
                "map" => Some(rt::map_kind_for(args)),
                "delete" => None, // handled below
                _ => None,
            };
            let is_delete = clause.name == "delete"
                || (clause.name == "map"
                    && args.trim_start().starts_with("release")
                    && args.contains(':'))
                || (clause.name == "map"
                    && args.trim_start().starts_with("delete")
                    && args.contains(':'));

            if kind.is_none() && !is_delete {
                continue;
            }
            for var in clause_variables(&clause.name, args) {
                let Some(Value::Ptr { alloc, .. }) = self.lookup(&var).cloned() else {
                    continue; // scalars are firstprivate; nothing to map
                };
                match phase {
                    ClausePhase::Enter => {
                        if is_delete {
                            continue;
                        }
                        let kind = kind.expect("kind is Some when not delete");
                        self.device
                            .enter(&self.host, alloc, kind)
                            .map_err(rt::fault_from)?;
                    }
                    ClausePhase::Exit => {
                        self.device
                            .exit(&mut self.host, alloc)
                            .map_err(rt::fault_from)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn apply_update_clauses(&mut self, directive: &Directive) -> EResult<()> {
        for clause in &directive.clauses {
            let Some(args) = &clause.args else { continue };
            let to_host = matches!(clause.name.as_str(), "self" | "host" | "from");
            let to_device = matches!(clause.name.as_str(), "device" | "to");
            if !to_host && !to_device {
                continue;
            }
            for var in clause_variables(&clause.name, args) {
                let Some(Value::Ptr { alloc, .. }) = self.lookup(&var).cloned() else {
                    continue;
                };
                if to_host {
                    self.device
                        .update_host(&mut self.host, alloc)
                        .map_err(rt::fault_from)?;
                } else {
                    self.device
                        .update_device(&self.host, alloc)
                        .map_err(rt::fault_from)?;
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // expressions
    // ------------------------------------------------------------------

    fn eval(&mut self, expr: &Expr) -> EResult<Value> {
        self.step()?;
        match expr {
            Expr::IntLit(v, _) => Ok(Value::Int(*v)),
            Expr::FloatLit(v, _) => Ok(Value::Float(*v)),
            Expr::StrLit(s, _) => Ok(Value::Str(s.clone())),
            Expr::CharLit(c, _) => Ok(Value::Int(*c as i64)),
            Expr::Ident(name, _) => match self.lookup(name) {
                Some(Value::Uninit) => Ok(rt::garbage(rt::eval_salt(name))),
                Some(v) => Ok(v.clone()),
                None => Err(Stop::Fault(RuntimeFault::Segfault)),
            },
            Expr::Unary { op, expr, .. } => self.eval_unary(*op, expr),
            Expr::Binary { op, lhs, rhs, .. } => self.eval_binary(*op, lhs, rhs),
            Expr::Assign {
                op, target, value, ..
            } => {
                let rhs = self.eval(value)?;
                let place = self.resolve_place(target)?;
                let new_value = if *op == AssignOp::Assign {
                    rhs
                } else {
                    let old = self.read_place(&place)?;
                    let bin = match op {
                        AssignOp::AddAssign => BinOp::Add,
                        AssignOp::SubAssign => BinOp::Sub,
                        AssignOp::MulAssign => BinOp::Mul,
                        AssignOp::DivAssign => BinOp::Div,
                        AssignOp::Assign => unreachable!(),
                    };
                    rt::apply_binop(bin, old, rhs).map_err(Stop::Fault)?
                };
                self.write_place(&place, new_value.clone())?;
                Ok(new_value)
            }
            Expr::Call { name, args, .. } => self.eval_call(name, args),
            Expr::Index { .. } | Expr::Postfix { .. } => {
                // Index reads and postfix inc/dec both need a place.
                match expr {
                    Expr::Index { .. } => {
                        let place = self.resolve_place(expr)?;
                        self.read_place(&place)
                    }
                    Expr::Postfix {
                        target, decrement, ..
                    } => {
                        let place = self.resolve_place(target)?;
                        let old = self.read_place(&place)?;
                        let delta = if *decrement { -1 } else { 1 };
                        let new = rt::apply_binop(BinOp::Add, old.clone(), Value::Int(delta))
                            .map_err(Stop::Fault)?;
                        self.write_place(&place, new)?;
                        Ok(old)
                    }
                    _ => unreachable!(),
                }
            }
            Expr::Cast { ty, expr, .. } => {
                let v = self.eval(expr)?;
                Ok(rt::coerce(ty, v))
            }
            Expr::SizeofType { ty, .. } => {
                let size = if ty.is_pointer() {
                    8
                } else {
                    ty.base.size_bytes()
                };
                Ok(Value::Int(size as i64))
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                if self.eval(cond)?.truthy() {
                    self.eval(then_expr)
                } else {
                    self.eval(else_expr)
                }
            }
        }
    }

    fn eval_unary(&mut self, op: UnOp, expr: &Expr) -> EResult<Value> {
        match op {
            UnOp::Neg => {
                let v = self.eval(expr)?;
                Ok(rt::unary_neg(v))
            }
            UnOp::Not => {
                let v = self.eval(expr)?;
                Ok(rt::unary_not(&v))
            }
            UnOp::BitNot => {
                let v = self.eval(expr)?;
                Ok(rt::unary_bitnot(&v))
            }
            UnOp::Deref => {
                let place = self.resolve_deref_place(expr)?;
                self.read_place(&place)
            }
            UnOp::AddrOf => {
                // `&x` materializes a one-cell allocation holding a copy of
                // the current value. The corpus does not rely on write-back
                // through such pointers; this keeps the model simple.
                let v = self.eval(expr)?;
                let alloc = self.host.alloc_init(1, v);
                Ok(Value::Ptr { alloc, offset: 0 })
            }
            UnOp::PreIncr | UnOp::PreDecr => {
                let place = self.resolve_place(expr)?;
                let old = self.read_place(&place)?;
                let delta = if op == UnOp::PreDecr { -1 } else { 1 };
                let new =
                    rt::apply_binop(BinOp::Add, old, Value::Int(delta)).map_err(Stop::Fault)?;
                self.write_place(&place, new.clone())?;
                Ok(new)
            }
        }
    }

    fn eval_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> EResult<Value> {
        if op == BinOp::And {
            let l = self.eval(lhs)?;
            if !l.truthy() {
                return Ok(Value::Int(0));
            }
            let r = self.eval(rhs)?;
            return Ok(Value::Int(if r.truthy() { 1 } else { 0 }));
        }
        if op == BinOp::Or {
            let l = self.eval(lhs)?;
            if l.truthy() {
                return Ok(Value::Int(1));
            }
            let r = self.eval(rhs)?;
            return Ok(Value::Int(if r.truthy() { 1 } else { 0 }));
        }
        let l = self.eval(lhs)?;
        let r = self.eval(rhs)?;
        rt::apply_binop(op, l, r).map_err(Stop::Fault)
    }

    // ------------------------------------------------------------------
    // places (lvalues)
    // ------------------------------------------------------------------

    fn resolve_place(&mut self, expr: &Expr) -> EResult<Place> {
        match expr {
            Expr::Ident(name, _) => Ok(Place::Var(name.clone())),
            Expr::Index { base, index, .. } => {
                let base_v = self.eval(base)?;
                let index_v = self.eval(index)?.as_i64();
                match base_v {
                    Value::Ptr { alloc, offset } => Ok(Place::Mem {
                        alloc,
                        offset: offset + index_v,
                    }),
                    _ => Err(Stop::Fault(RuntimeFault::Segfault)),
                }
            }
            Expr::Unary {
                op: UnOp::Deref,
                expr,
                ..
            } => self.resolve_deref_place(expr),
            Expr::Cast { expr, .. } => self.resolve_place(expr),
            _ => Err(Stop::Fault(RuntimeFault::Segfault)),
        }
    }

    fn resolve_deref_place(&mut self, pointer_expr: &Expr) -> EResult<Place> {
        let v = self.eval(pointer_expr)?;
        match v {
            Value::Ptr { alloc, offset } => Ok(Place::Mem { alloc, offset }),
            _ => Err(Stop::Fault(RuntimeFault::Segfault)),
        }
    }

    fn read_place(&mut self, place: &Place) -> EResult<Value> {
        match place {
            Place::Var(name) => match self.lookup(name) {
                Some(Value::Uninit) | None => Ok(rt::garbage(rt::place_salt(name))),
                Some(v) => Ok(v.clone()),
            },
            Place::Mem { alloc, offset } => rt::read_mem(
                &self.host,
                &self.device,
                self.offload_depth > 0,
                *alloc,
                *offset,
            ),
        }
    }

    fn write_place(&mut self, place: &Place, value: Value) -> EResult<()> {
        match place {
            Place::Var(name) => {
                self.assign_var(name, value);
                Ok(())
            }
            Place::Mem { alloc, offset } => rt::write_mem(
                &mut self.host,
                &mut self.device,
                self.offload_depth > 0,
                *alloc,
                *offset,
                value,
            ),
        }
    }

    // ------------------------------------------------------------------
    // calls
    // ------------------------------------------------------------------

    fn eval_call(&mut self, name: &str, args: &[Expr]) -> EResult<Value> {
        // User-defined functions take precedence over builtins.
        if let Some(func) = self.program.unit.function(name) {
            let func = func.clone();
            let mut values = Vec::with_capacity(args.len());
            for arg in args {
                values.push(self.eval(arg)?);
            }
            return self.call_function(&func, values);
        }
        self.eval_builtin(name, args)
    }

    fn eval_builtin(&mut self, name: &str, args: &[Expr]) -> EResult<Value> {
        match name {
            "malloc" | "acc_malloc" | "omp_target_alloc" => {
                let count = self.allocation_element_count(args.first())?;
                let alloc = self.host.alloc(count);
                Ok(Value::Ptr { alloc, offset: 0 })
            }
            "calloc" => {
                let count = match args.first() {
                    Some(expr) => self.eval(expr)?.as_i64().clamp(0, 4_000_000) as usize,
                    None => 0,
                };
                let alloc = self.host.alloc_init(count, Value::Int(0));
                Ok(Value::Ptr { alloc, offset: 0 })
            }
            "realloc" => {
                // Modeled as a fresh allocation of the requested size.
                let count = self.allocation_element_count(args.get(1))?;
                let alloc = self.host.alloc(count);
                Ok(Value::Ptr { alloc, offset: 0 })
            }
            "free" | "acc_free" | "omp_target_free" => {
                if let Some(expr) = args.first() {
                    let v = self.eval(expr)?;
                    if let Value::Ptr { alloc, .. } = v {
                        self.host.free(alloc).map_err(rt::fault_from)?;
                    }
                }
                Ok(Value::Int(0))
            }
            "printf" => {
                let values = self.eval_args(args)?;
                let total =
                    rt::write_formatted(&mut self.stdout, self.config.capture_limit, &values);
                Ok(Value::Int(total as i64))
            }
            "puts" => {
                let value = match args.first() {
                    Some(expr) => self.eval(expr)?,
                    None => Value::Str(String::new()),
                };
                let mut w = LimitedWriter::new(&mut self.stdout, self.config.capture_limit);
                let _ = rt::write_value_text(&mut w, &value);
                let _ = w.write_char('\n');
                let total = w.total();
                Ok(Value::Int(total as i64))
            }
            "putchar" => {
                let c = match args.first() {
                    Some(expr) => self.eval(expr)?.as_i64(),
                    None => 0,
                };
                let ch = char::from_u32(c as u32).unwrap_or('?');
                let mut w = LimitedWriter::new(&mut self.stdout, self.config.capture_limit);
                let _ = w.write_char(ch);
                let total = w.total();
                Ok(Value::Int(total as i64))
            }
            "fprintf" => {
                // The first argument is the stream; everything else formats
                // like printf. Streams are not modeled, so output goes to
                // stderr (the common use in V&V tests).
                let values = self.eval_args(args.get(1..).unwrap_or(&[]))?;
                let total =
                    rt::write_formatted(&mut self.stderr, self.config.capture_limit, &values);
                Ok(Value::Int(total as i64))
            }
            "exit" => {
                let code = match args.first() {
                    Some(expr) => self.eval(expr)?.as_i64() as i32,
                    None => 0,
                };
                Err(Stop::Exit(code))
            }
            "abort" => Err(Stop::Exit(134)),
            "fabs" | "fabsf" => self.math1(args, f64::abs),
            "sqrt" | "sqrtf" => self.math1(args, f64::sqrt),
            "exp" => self.math1(args, f64::exp),
            "log" => self.math1(args, f64::ln),
            "sin" => self.math1(args, f64::sin),
            "cos" => self.math1(args, f64::cos),
            "tan" => self.math1(args, f64::tan),
            "floor" => self.math1(args, f64::floor),
            "ceil" => self.math1(args, f64::ceil),
            "pow" => {
                let a = self.arg_f64(args, 0)?;
                let b = self.arg_f64(args, 1)?;
                Ok(Value::Float(a.powf(b)))
            }
            "abs" | "labs" => {
                let v = match args.first() {
                    Some(expr) => self.eval(expr)?.as_i64(),
                    None => 0,
                };
                Ok(Value::Int(rt::int_abs(v)))
            }
            "rand" => {
                self.rng_state ^= self.rng_state << 13;
                self.rng_state ^= self.rng_state >> 7;
                self.rng_state ^= self.rng_state << 17;
                Ok(Value::Int((self.rng_state % 2147483647) as i64))
            }
            "srand" => {
                if let Some(expr) = args.first() {
                    let seed = self.eval(expr)?.as_i64() as u64;
                    self.rng_state = seed | 1;
                }
                Ok(Value::Int(0))
            }
            "memset" => {
                if let (Some(ptr_expr), Some(val_expr)) = (args.first(), args.get(1)) {
                    let ptr = self.eval(ptr_expr)?;
                    let fill = self.eval(val_expr)?;
                    if let Value::Ptr { alloc, offset } = ptr {
                        let len = self.host.len(alloc).map_err(rt::fault_from)?;
                        for i in (offset.max(0) as usize)..len {
                            self.host
                                .write(alloc, i as i64, fill.clone())
                                .map_err(rt::fault_from)?;
                        }
                        return Ok(Value::Ptr { alloc, offset });
                    }
                }
                Ok(Value::Int(0))
            }
            "memcpy" => {
                if let (Some(dst_expr), Some(src_expr)) = (args.first(), args.get(1)) {
                    let dst = self.eval(dst_expr)?;
                    let src = self.eval(src_expr)?;
                    if let (Value::Ptr { alloc: da, .. }, Value::Ptr { alloc: sa, .. }) =
                        (dst.clone(), src)
                    {
                        let data = self.host.snapshot(sa).map_err(rt::fault_from)?;
                        self.host.restore(da, data).map_err(rt::fault_from)?;
                    }
                    return Ok(dst);
                }
                Ok(Value::Int(0))
            }
            "strlen" => {
                let v = match args.first() {
                    Some(expr) => self.eval(expr)?,
                    None => Value::Int(0),
                };
                Ok(Value::Int(match v {
                    Value::Str(s) => s.len() as i64,
                    _ => 0,
                }))
            }
            "strcmp" => {
                let a = self.arg_string(args, 0)?;
                let b = self.arg_string(args, 1)?;
                Ok(Value::Int(match a.cmp(&b) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                }))
            }
            // Runtime library introspection
            "acc_get_num_devices" | "omp_get_num_devices" => Ok(Value::Int(1)),
            "acc_get_device_num" | "omp_get_team_num" | "omp_get_thread_num" => Ok(Value::Int(0)),
            "acc_set_device_num" | "omp_set_num_threads" => Ok(Value::Int(0)),
            "omp_get_num_threads" => Ok(Value::Int(if self.offload_depth > 0 { 8 } else { 1 })),
            "omp_get_num_teams" => Ok(Value::Int(if self.offload_depth > 0 { 4 } else { 1 })),
            "omp_is_initial_device" => Ok(Value::Int(if self.offload_depth > 0 { 0 } else { 1 })),
            "omp_get_wtime" => Ok(Value::Float(self.steps as f64 * 1.0e-9)),
            _ => {
                // Implicitly declared function (compile-time warning): calling
                // it returns 0, mirroring a link against a stub.
                for arg in args {
                    self.eval(arg)?;
                }
                Ok(Value::Int(0))
            }
        }
    }

    fn allocation_element_count(&mut self, arg: Option<&Expr>) -> EResult<usize> {
        let Some(arg) = arg else { return Ok(0) };
        // Recognize the idiomatic `count * sizeof(T)` shape and use `count`
        // as the element count; otherwise fall back to the raw byte value
        // divided by 8 (the widest element the corpus uses).
        if let Expr::Binary {
            op: BinOp::Mul,
            lhs,
            rhs,
            ..
        } = arg
        {
            if matches!(rhs.as_ref(), Expr::SizeofType { .. }) {
                let count = self.eval(lhs)?.as_i64();
                return Ok(count.clamp(0, 4_000_000) as usize);
            }
            if matches!(lhs.as_ref(), Expr::SizeofType { .. }) {
                let count = self.eval(rhs)?.as_i64();
                return Ok(count.clamp(0, 4_000_000) as usize);
            }
        }
        let bytes = self.eval(arg)?.as_i64().clamp(0, 32_000_000);
        Ok(((bytes + 7) / 8) as usize)
    }

    fn math1(&mut self, args: &[Expr], f: impl Fn(f64) -> f64) -> EResult<Value> {
        let v = self.arg_f64(args, 0)?;
        Ok(Value::Float(f(v)))
    }

    fn arg_f64(&mut self, args: &[Expr], index: usize) -> EResult<f64> {
        match args.get(index) {
            Some(expr) => Ok(self.eval(expr)?.as_f64()),
            None => Ok(0.0),
        }
    }

    fn arg_string(&mut self, args: &[Expr], index: usize) -> EResult<String> {
        match args.get(index) {
            Some(expr) => Ok(rt::value_text(&self.eval(expr)?)),
            None => Ok(String::new()),
        }
    }

    /// Evaluate a printf-style argument list in order.
    fn eval_args(&mut self, args: &[Expr]) -> EResult<Vec<Value>> {
        let mut values = Vec::with_capacity(args.len());
        for arg in args {
            values.push(self.eval(arg)?);
        }
        Ok(values)
    }
}

/// A resolved storage location.
enum Place {
    Var(String),
    Mem { alloc: usize, offset: i64 },
}

/// Whether data clauses are being applied at region entry or exit.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ClausePhase {
    Enter,
    Exit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vv_dclang::DirectiveModel;
    use vv_simcompiler::{compiler_for, Lang};

    fn run(source: &str, model: DirectiveModel) -> ExecOutcome {
        let outcome = compiler_for(model).compile(source, Lang::C);
        assert!(outcome.succeeded(), "compile failed: {}", outcome.stderr);
        TreeWalkExecutor::default().run(&outcome.artifact.unwrap())
    }

    #[test]
    fn oracle_still_walks_the_tree() {
        let out = run(
            "#include <stdio.h>\nint main() { int x = 6 * 7; printf(\"x=%d\\n\", x); return 0; }",
            DirectiveModel::OpenAcc,
        );
        assert_eq!(out.return_code, 0);
        assert_eq!(out.stdout, "x=42\n");
    }

    #[test]
    fn oracle_reports_runtime_faults() {
        let out = run(
            "#include <stdlib.h>\nint main() { double *a = (double *)malloc(4 * sizeof(double)); a[100] = 1.0; return 0; }",
            DirectiveModel::OpenAcc,
        );
        assert_eq!(out.return_code, 139);
        assert_eq!(out.fault, Some(RuntimeFault::Segfault));
    }

    #[test]
    fn oracle_respects_capture_limit_during_formatting() {
        let outcome = compiler_for(DirectiveModel::OpenAcc).compile(
            "#include <stdio.h>\nint main() { for (int i = 0; i < 100; i++) { printf(\"0123456789\"); } return 0; }",
            Lang::C,
        );
        let exec = TreeWalkExecutor::new(ExecConfig {
            capture_limit: 64,
            ..Default::default()
        });
        let out = exec.run(&outcome.artifact.unwrap());
        assert_eq!(out.stdout.len(), 64);
    }
}
