//! `vv-simexec` — the execution substrate.
//!
//! The paper runs every successfully compiled test on a Perlmutter GPU node
//! and feeds the program's *return code, stdout and stderr* into the agent
//! prompt and the validation pipeline's second stage. This crate substitutes
//! a deterministic interpreter for that step:
//!
//! * it executes the checked [`vv_simcompiler::Program`] artifact directly;
//! * it models host and device memory separately, honouring data-movement
//!   clauses (`copyin`/`copyout`/`create`/`map`/`update`), with a present
//!   table per the OpenACC/OpenMP runtime semantics;
//! * it reproduces the runtime failure modes that matter for negative
//!   probing: dereferencing an uninitialized pointer (the "removed memory
//!   allocation" mutation) raises a simulated segmentation fault, failed
//!   verification loops make the test return a nonzero exit code, runaway
//!   loops hit a step budget, and data written only to a device copy that is
//!   never mapped back is lost, exactly as on real hardware;
//! * execution is fully deterministic, so every experiment in the benchmark
//!   harness is reproducible bit-for-bit.
//!
//! The outcome type mirrors exactly what the judge's agent prompt consumes.
//!
//! # Execution engines
//!
//! Programs execute through the register-bytecode VM in [`bytecode`]: the
//! checked AST is lowered once (interned symbols, frame-slot variable
//! resolution, pre-resolved function and clause references) and the artifact
//! is cached on the [`vv_simcompiler::Program`], so repeated execution pays
//! only the dispatch loop. The original tree-walking interpreter is retained
//! behind the `treewalk-reference` feature as a differential oracle: both
//! engines share per-operation semantics and must produce byte-identical
//! [`ExecOutcome`]s (asserted over the streaming corpus by
//! `tests/exec_parity.rs`).

pub mod bytecode;
pub mod interp;
pub mod memory;
pub mod outcome;
pub(crate) mod rt;
#[cfg(feature = "treewalk-reference")]
pub mod treewalk;
pub mod value;

pub use bytecode::{lower, lower_cached, CompiledProgram};
pub use interp::{ExecConfig, Executor};
pub use memory::{DeviceSpace, HostSpace, MemoryError};
pub use outcome::{ExecOutcome, RuntimeFault};
pub use rt::format_c_string;
#[cfg(feature = "treewalk-reference")]
pub use treewalk::TreeWalkExecutor;
pub use value::Value;

#[cfg(test)]
mod tests {
    use super::*;
    use vv_dclang::DirectiveModel;
    use vv_simcompiler::{compiler_for, Lang};

    fn run(source: &str, model: DirectiveModel) -> ExecOutcome {
        let compiler = compiler_for(model);
        let compiled = compiler.compile(source, Lang::C);
        assert!(compiled.succeeded(), "compile failed: {}", compiled.stderr);
        Executor::default().run(&compiled.artifact.unwrap())
    }

    #[test]
    fn valid_acc_test_passes_end_to_end() {
        let src = r#"
#include <stdio.h>
#include <stdlib.h>
#define N 64
int main() {
    double *a = (double *)malloc(N * sizeof(double));
    double *b = (double *)malloc(N * sizeof(double));
    for (int i = 0; i < N; i++) { a[i] = i * 0.5; b[i] = 0.0; }
#pragma acc data copyin(a[0:N]) copyout(b[0:N])
    {
#pragma acc parallel loop
        for (int i = 0; i < N; i++) { b[i] = a[i] * 2.0; }
    }
    int err = 0;
    for (int i = 0; i < N; i++) { if (b[i] != a[i] * 2.0) { err = err + 1; } }
    free(a);
    free(b);
    if (err != 0) { printf("Test failed with %d errors\n", err); return 1; }
    printf("Test passed\n");
    return 0;
}
"#;
        let outcome = run(src, DirectiveModel::OpenAcc);
        assert_eq!(outcome.return_code, 0, "stderr: {}", outcome.stderr);
        assert!(outcome.stdout.contains("Test passed"));
    }

    #[test]
    fn removed_allocation_segfaults_at_runtime() {
        let src = r#"
#include <stdio.h>
#include <stdlib.h>
#define N 16
int main() {
    double *a;
    for (int i = 0; i < N; i++) { a[i] = i; }
    printf("done\n");
    return 0;
}
"#;
        let outcome = run(src, DirectiveModel::OpenAcc);
        assert_ne!(outcome.return_code, 0);
        assert!(outcome.stderr.to_lowercase().contains("segmentation"));
    }
}
