//! Host and device memory spaces.
//!
//! The host space owns every allocation (stack arrays, `malloc` blocks and
//! the cells backing `&scalar`). The device space mirrors a subset of those
//! allocations via a *present table*, exactly like the OpenACC/OpenMP
//! offloading runtimes: `copyin`/`map(to:)` populate the device copy,
//! `copyout`/`map(from:)` bring data back, `create`/`map(alloc:)` allocate
//! without transfer, and structured regions reference-count their entries.

use crate::value::Value;

/// Errors raised by memory accesses; the interpreter converts these to
/// [`crate::RuntimeFault`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemoryError {
    /// Access to an allocation id that was never created (wild pointer).
    InvalidAllocation,
    /// Access outside the bounds of an allocation.
    OutOfBounds {
        alloc: usize,
        offset: i64,
        len: usize,
    },
    /// Access to an allocation after `free`.
    UseAfterFree { alloc: usize },
    /// `free` called twice on the same allocation.
    DoubleFree { alloc: usize },
}

/// A single host allocation.
#[derive(Clone, Debug)]
struct Allocation {
    data: Vec<Value>,
    freed: bool,
}

/// The host memory space.
#[derive(Clone, Debug, Default)]
pub struct HostSpace {
    allocations: Vec<Allocation>,
}

impl HostSpace {
    /// Create an empty host space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate `len` cells, all uninitialized. Returns the allocation id.
    pub fn alloc(&mut self, len: usize) -> usize {
        self.allocations.push(Allocation {
            data: vec![Value::Uninit; len],
            freed: false,
        });
        self.allocations.len() - 1
    }

    /// Allocate `len` cells initialized to `value`.
    pub fn alloc_init(&mut self, len: usize, value: Value) -> usize {
        self.allocations.push(Allocation {
            data: vec![value; len],
            freed: false,
        });
        self.allocations.len() - 1
    }

    /// Number of cells in an allocation.
    pub fn len(&self, alloc: usize) -> Result<usize, MemoryError> {
        self.allocations
            .get(alloc)
            .map(|a| a.data.len())
            .ok_or(MemoryError::InvalidAllocation)
    }

    /// True if the space holds no allocations.
    pub fn is_empty(&self) -> bool {
        self.allocations.is_empty()
    }

    /// Total number of allocations ever made.
    pub fn allocation_count(&self) -> usize {
        self.allocations.len()
    }

    /// Checked access to one cell, shared by the read/write fast paths:
    /// resolves the allocation exactly once (no re-indexing after the
    /// bounds check, which is what the old `check`-then-index pair did).
    #[inline]
    fn cell(&self, alloc: usize, offset: i64) -> Result<&Value, MemoryError> {
        let a = self
            .allocations
            .get(alloc)
            .ok_or(MemoryError::InvalidAllocation)?;
        if a.freed {
            return Err(MemoryError::UseAfterFree { alloc });
        }
        if offset < 0 {
            return Err(MemoryError::OutOfBounds {
                alloc,
                offset,
                len: a.data.len(),
            });
        }
        a.data.get(offset as usize).ok_or(MemoryError::OutOfBounds {
            alloc,
            offset,
            len: a.data.len(),
        })
    }

    /// Borrow a cell without cloning (the interpreter hot path clones only
    /// after the uninit-garbage check).
    #[inline]
    pub fn read_ref(&self, alloc: usize, offset: i64) -> Result<&Value, MemoryError> {
        self.cell(alloc, offset)
    }

    /// Read a cell.
    #[inline]
    pub fn read(&self, alloc: usize, offset: i64) -> Result<Value, MemoryError> {
        self.cell(alloc, offset).cloned()
    }

    /// Write a cell.
    #[inline]
    pub fn write(&mut self, alloc: usize, offset: i64, value: Value) -> Result<(), MemoryError> {
        let a = self
            .allocations
            .get_mut(alloc)
            .ok_or(MemoryError::InvalidAllocation)?;
        if a.freed {
            return Err(MemoryError::UseAfterFree { alloc });
        }
        let len = a.data.len();
        if offset < 0 {
            return Err(MemoryError::OutOfBounds { alloc, offset, len });
        }
        match a.data.get_mut(offset as usize) {
            Some(cell) => {
                *cell = value;
                Ok(())
            }
            None => Err(MemoryError::OutOfBounds { alloc, offset, len }),
        }
    }

    /// Free an allocation.
    pub fn free(&mut self, alloc: usize) -> Result<(), MemoryError> {
        let a = self
            .allocations
            .get_mut(alloc)
            .ok_or(MemoryError::InvalidAllocation)?;
        if a.freed {
            return Err(MemoryError::DoubleFree { alloc });
        }
        a.freed = true;
        Ok(())
    }

    /// Snapshot of an allocation's cells (used for device transfers).
    pub fn snapshot(&self, alloc: usize) -> Result<Vec<Value>, MemoryError> {
        let a = self
            .allocations
            .get(alloc)
            .ok_or(MemoryError::InvalidAllocation)?;
        if a.freed {
            return Err(MemoryError::UseAfterFree { alloc });
        }
        Ok(a.data.clone())
    }

    /// Overwrite an allocation's cells (used for device→host transfers).
    pub fn restore(&mut self, alloc: usize, data: Vec<Value>) -> Result<(), MemoryError> {
        let a = self
            .allocations
            .get_mut(alloc)
            .ok_or(MemoryError::InvalidAllocation)?;
        if a.freed {
            return Err(MemoryError::UseAfterFree { alloc });
        }
        let n = a.data.len().min(data.len());
        a.data[..n].clone_from_slice(&data[..n]);
        Ok(())
    }
}

/// How a device mapping was created; controls what happens at region exit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapKind {
    /// Copy host→device at entry only (`copyin`, `map(to:)`).
    ToDevice,
    /// Copy device→host at exit only (`copyout`, `map(from:)`).
    FromDevice,
    /// Copy both ways (`copy`, `map(tofrom:)`).
    Both,
    /// Allocate on the device without transfers (`create`, `map(alloc:)`).
    AllocOnly,
}

/// A device-side copy of a host allocation.
#[derive(Clone, Debug)]
struct DeviceEntry {
    data: Vec<Value>,
    kind: MapKind,
    refcount: usize,
}

/// The device memory space (present table).
///
/// Host allocation ids are dense (indices into the host space), so the
/// present table is a plain vector rather than a hash map: the
/// present-check on every offloaded memory access is an index plus an
/// `is_some`, not a hash.
#[derive(Clone, Debug, Default)]
pub struct DeviceSpace {
    present: Vec<Option<DeviceEntry>>,
}

impl DeviceSpace {
    /// Create an empty device space.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn entry(&self, alloc: usize) -> Option<&DeviceEntry> {
        self.present.get(alloc).and_then(Option::as_ref)
    }

    #[inline]
    fn entry_mut(&mut self, alloc: usize) -> Option<&mut DeviceEntry> {
        self.present.get_mut(alloc).and_then(Option::as_mut)
    }

    /// True if a host allocation is present on the device.
    #[inline]
    pub fn is_present(&self, alloc: usize) -> bool {
        self.entry(alloc).is_some()
    }

    /// Number of present entries.
    pub fn present_count(&self) -> usize {
        self.present.iter().filter(|e| e.is_some()).count()
    }

    /// Enter a data region for one allocation. If already present the
    /// reference count is incremented (structured-region semantics).
    pub fn enter(
        &mut self,
        host: &HostSpace,
        alloc: usize,
        kind: MapKind,
    ) -> Result<(), MemoryError> {
        if let Some(entry) = self.entry_mut(alloc) {
            entry.refcount += 1;
            return Ok(());
        }
        let data = match kind {
            MapKind::ToDevice | MapKind::Both => host.snapshot(alloc)?,
            MapKind::FromDevice | MapKind::AllocOnly => {
                vec![Value::Uninit; host.len(alloc)?]
            }
        };
        if self.present.len() <= alloc {
            self.present.resize_with(alloc + 1, || None);
        }
        self.present[alloc] = Some(DeviceEntry {
            data,
            kind,
            refcount: 1,
        });
        Ok(())
    }

    /// Exit a data region for one allocation, copying back if the mapping
    /// requires it and the reference count drops to zero.
    pub fn exit(&mut self, host: &mut HostSpace, alloc: usize) -> Result<(), MemoryError> {
        let Some(entry) = self.entry_mut(alloc) else {
            return Ok(()); // exiting a region for data never entered is a no-op
        };
        if entry.refcount > 1 {
            entry.refcount -= 1;
            return Ok(());
        }
        let entry = self.present[alloc].take().expect("entry exists");
        if matches!(entry.kind, MapKind::FromDevice | MapKind::Both) {
            host.restore(alloc, entry.data)?;
        }
        Ok(())
    }

    /// Explicit device→host update (`update host(...)` / `target update from(...)`).
    pub fn update_host(&self, host: &mut HostSpace, alloc: usize) -> Result<(), MemoryError> {
        if let Some(entry) = self.entry(alloc) {
            host.restore(alloc, entry.data.clone())?;
        }
        Ok(())
    }

    /// Explicit host→device update (`update device(...)` / `target update to(...)`).
    pub fn update_device(&mut self, host: &HostSpace, alloc: usize) -> Result<(), MemoryError> {
        if let Some(entry) = self.entry_mut(alloc) {
            entry.data = host.snapshot(alloc)?;
        }
        Ok(())
    }

    /// Borrow a cell from the device copy if the allocation is present:
    /// the fused presence-check + access the interpreter hot path uses
    /// (one table lookup instead of `is_present` followed by `read`).
    #[inline]
    pub fn try_read_ref(&self, alloc: usize, offset: i64) -> Option<Result<&Value, MemoryError>> {
        let entry = self.entry(alloc)?;
        if offset < 0 {
            return Some(Err(MemoryError::OutOfBounds {
                alloc,
                offset,
                len: entry.data.len(),
            }));
        }
        Some(
            entry
                .data
                .get(offset as usize)
                .ok_or(MemoryError::OutOfBounds {
                    alloc,
                    offset,
                    len: entry.data.len(),
                }),
        )
    }

    /// Write a cell on the device copy if present (fused check + access).
    #[inline]
    pub fn try_write(
        &mut self,
        alloc: usize,
        offset: i64,
        value: Value,
    ) -> Option<Result<(), MemoryError>> {
        let entry = self.entry_mut(alloc)?;
        let len = entry.data.len();
        if offset < 0 {
            return Some(Err(MemoryError::OutOfBounds { alloc, offset, len }));
        }
        match entry.data.get_mut(offset as usize) {
            Some(cell) => {
                *cell = value;
                Some(Ok(()))
            }
            None => Some(Err(MemoryError::OutOfBounds { alloc, offset, len })),
        }
    }

    /// Borrow a cell from the device copy without cloning.
    #[inline]
    pub fn read_ref(&self, alloc: usize, offset: i64) -> Result<&Value, MemoryError> {
        self.try_read_ref(alloc, offset)
            .unwrap_or(Err(MemoryError::InvalidAllocation))
    }

    /// Read a cell from the device copy (caller checked presence).
    #[inline]
    pub fn read(&self, alloc: usize, offset: i64) -> Result<Value, MemoryError> {
        self.read_ref(alloc, offset).cloned()
    }

    /// Write a cell on the device copy (caller checked presence).
    pub fn write(&mut self, alloc: usize, offset: i64, value: Value) -> Result<(), MemoryError> {
        self.try_write(alloc, offset, value)
            .unwrap_or(Err(MemoryError::InvalidAllocation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_alloc_read_write_roundtrip() {
        let mut host = HostSpace::new();
        let a = host.alloc(4);
        assert_eq!(host.read(a, 0).unwrap(), Value::Uninit);
        host.write(a, 2, Value::Float(3.5)).unwrap();
        assert_eq!(host.read(a, 2).unwrap(), Value::Float(3.5));
        assert_eq!(host.len(a).unwrap(), 4);
    }

    #[test]
    fn out_of_bounds_and_negative_offsets_fail() {
        let mut host = HostSpace::new();
        let a = host.alloc(2);
        assert!(matches!(
            host.read(a, 5),
            Err(MemoryError::OutOfBounds { .. })
        ));
        assert!(matches!(
            host.write(a, -1, Value::Int(0)),
            Err(MemoryError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn use_after_free_and_double_free_fail() {
        let mut host = HostSpace::new();
        let a = host.alloc(2);
        host.free(a).unwrap();
        assert!(matches!(
            host.read(a, 0),
            Err(MemoryError::UseAfterFree { .. })
        ));
        assert!(matches!(host.free(a), Err(MemoryError::DoubleFree { .. })));
    }

    #[test]
    fn invalid_allocation_id_fails() {
        let host = HostSpace::new();
        assert!(matches!(
            host.read(99, 0),
            Err(MemoryError::InvalidAllocation)
        ));
    }

    #[test]
    fn device_copyin_copyout_semantics() {
        let mut host = HostSpace::new();
        let mut dev = DeviceSpace::new();
        let a = host.alloc_init(3, Value::Float(1.0));
        dev.enter(&host, a, MapKind::Both).unwrap();
        assert!(dev.is_present(a));
        dev.write(a, 1, Value::Float(9.0)).unwrap();
        // host copy unchanged until exit
        assert_eq!(host.read(a, 1).unwrap(), Value::Float(1.0));
        dev.exit(&mut host, a).unwrap();
        assert!(!dev.is_present(a));
        assert_eq!(host.read(a, 1).unwrap(), Value::Float(9.0));
    }

    #[test]
    fn copyin_only_discards_device_writes() {
        let mut host = HostSpace::new();
        let mut dev = DeviceSpace::new();
        let a = host.alloc_init(2, Value::Int(5));
        dev.enter(&host, a, MapKind::ToDevice).unwrap();
        dev.write(a, 0, Value::Int(42)).unwrap();
        dev.exit(&mut host, a).unwrap();
        assert_eq!(host.read(a, 0).unwrap(), Value::Int(5));
    }

    #[test]
    fn nested_regions_refcount() {
        let mut host = HostSpace::new();
        let mut dev = DeviceSpace::new();
        let a = host.alloc_init(2, Value::Int(1));
        dev.enter(&host, a, MapKind::Both).unwrap();
        dev.enter(&host, a, MapKind::Both).unwrap();
        dev.exit(&mut host, a).unwrap();
        assert!(dev.is_present(a), "still present after inner exit");
        dev.exit(&mut host, a).unwrap();
        assert!(!dev.is_present(a));
    }

    #[test]
    fn explicit_update_directions() {
        let mut host = HostSpace::new();
        let mut dev = DeviceSpace::new();
        let a = host.alloc_init(1, Value::Int(1));
        dev.enter(&host, a, MapKind::AllocOnly).unwrap();
        dev.update_device(&host, a).unwrap();
        assert_eq!(dev.read(a, 0).unwrap(), Value::Int(1));
        dev.write(a, 0, Value::Int(7)).unwrap();
        dev.update_host(&mut host, a).unwrap();
        assert_eq!(host.read(a, 0).unwrap(), Value::Int(7));
    }

    #[test]
    fn exit_without_enter_is_noop() {
        let mut host = HostSpace::new();
        let mut dev = DeviceSpace::new();
        let a = host.alloc(1);
        dev.exit(&mut host, a).unwrap();
        assert_eq!(dev.present_count(), 0);
    }
}
