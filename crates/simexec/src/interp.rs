//! The interpreter.

use std::collections::HashMap;

use crate::memory::{DeviceSpace, HostSpace, MapKind, MemoryError};
use crate::outcome::{ExecOutcome, RuntimeFault};
use crate::value::Value;
use vv_dclang::{AssignOp, BaseType, BinOp, Directive, Expr, Function, Stmt, Type, UnOp, VarDecl};
use vv_simcompiler::semantic::clause_variables;
use vv_simcompiler::Program;

/// Configuration for the executor.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Maximum number of interpreter steps before the run is killed
    /// (simulates a batch-system time limit).
    pub step_limit: u64,
    /// Maximum call depth before a simulated stack overflow.
    pub max_call_depth: usize,
    /// Maximum captured stdout/stderr size in bytes.
    pub capture_limit: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            step_limit: 4_000_000,
            max_call_depth: 128,
            capture_limit: 64 * 1024,
        }
    }
}

/// Runs compiled programs.
#[derive(Clone, Debug, Default)]
pub struct Executor {
    /// Execution limits.
    pub config: ExecConfig,
}

impl Executor {
    /// Create an executor with a custom configuration.
    pub fn new(config: ExecConfig) -> Self {
        Self { config }
    }

    /// Execute a compiled program and capture its observable behaviour.
    pub fn run(&self, program: &Program) -> ExecOutcome {
        let mut interp = Interp::new(program, &self.config);
        interp.run()
    }
}

/// Early termination of the interpreted program.
enum Stop {
    Exit(i32),
    Fault(RuntimeFault),
}

/// Statement-level control flow.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

type EResult<T> = Result<T, Stop>;

struct Interp<'p> {
    program: &'p Program,
    config: &'p ExecConfig,
    host: HostSpace,
    device: DeviceSpace,
    globals: HashMap<String, Value>,
    locals: Vec<HashMap<String, Value>>,
    stdout: String,
    stderr: String,
    steps: u64,
    call_depth: usize,
    /// Nesting depth of compute/offload regions; device copies are consulted
    /// while this is nonzero.
    offload_depth: usize,
    rng_state: u64,
}

impl<'p> Interp<'p> {
    fn new(program: &'p Program, config: &'p ExecConfig) -> Self {
        Self {
            program,
            config,
            host: HostSpace::new(),
            device: DeviceSpace::new(),
            globals: HashMap::new(),
            locals: Vec::new(),
            stdout: String::new(),
            stderr: String::new(),
            steps: 0,
            call_depth: 0,
            offload_depth: 0,
            rng_state: 0x9E3779B97F4A7C15,
        }
    }

    fn run(&mut self) -> ExecOutcome {
        let result = self.run_inner();
        let (return_code, fault) = match result {
            Ok(code) => (code, None),
            Err(Stop::Exit(code)) => (code, None),
            Err(Stop::Fault(fault)) => {
                self.stderr.push_str(fault.message());
                self.stderr.push('\n');
                (fault.exit_code(), Some(fault))
            }
        };
        ExecOutcome {
            return_code,
            stdout: std::mem::take(&mut self.stdout),
            stderr: std::mem::take(&mut self.stderr),
            fault,
            steps: self.steps,
        }
    }

    fn run_inner(&mut self) -> EResult<i32> {
        // Globals first.
        let globals: Vec<VarDecl> = self.program.unit.globals.clone();
        for decl in &globals {
            let value = self.init_decl_value(decl)?;
            self.globals.insert(decl.name.clone(), value);
        }
        let Some(main) = self.program.unit.function("main") else {
            return Err(Stop::Fault(RuntimeFault::Unsupported));
        };
        let result = self.call_function(main, Vec::new())?;
        Ok((result.as_i64() & 0xFF) as i32)
    }

    // ------------------------------------------------------------------
    // bookkeeping
    // ------------------------------------------------------------------

    fn step(&mut self) -> EResult<()> {
        self.steps += 1;
        if self.steps > self.config.step_limit {
            Err(Stop::Fault(RuntimeFault::StepLimit))
        } else {
            Ok(())
        }
    }

    fn fault_from(err: MemoryError) -> Stop {
        let _ = &err;
        Stop::Fault(RuntimeFault::Segfault)
    }

    fn garbage(&self, salt: u64) -> Value {
        // Deterministic "garbage" for uninitialized reads: large, odd values
        // that will never match a correctly computed result.
        let mixed = salt
            .wrapping_mul(0x9E3779B97F4A7C15)
            .rotate_left(31)
            .wrapping_add(0xDEADBEEF);
        Value::Float(((mixed % 100_000) as f64) * 1.0e9 + 0.731)
    }

    fn push_scope(&mut self) {
        self.locals.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.locals.pop();
    }

    fn lookup(&self, name: &str) -> Option<&Value> {
        for scope in self.locals.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v);
            }
        }
        self.globals.get(name)
    }

    fn bind(&mut self, name: &str, value: Value) {
        if let Some(scope) = self.locals.last_mut() {
            scope.insert(name.to_string(), value);
        } else {
            self.globals.insert(name.to_string(), value);
        }
    }

    fn assign_var(&mut self, name: &str, value: Value) {
        for scope in self.locals.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = value;
                return;
            }
        }
        if let Some(slot) = self.globals.get_mut(name) {
            *slot = value;
            return;
        }
        // Should be prevented by semantic analysis; bind locally to stay robust.
        self.bind(name, value);
    }

    // ------------------------------------------------------------------
    // declarations
    // ------------------------------------------------------------------

    fn init_decl_value(&mut self, decl: &VarDecl) -> EResult<Value> {
        if !decl.array_dims.is_empty() {
            let mut total: i64 = 1;
            for dim in &decl.array_dims {
                let v = self.eval(dim)?.as_i64();
                total = total.saturating_mul(v.max(0));
            }
            let total = total.clamp(0, 4_000_000) as usize;
            let alloc = self.host.alloc(total);
            return Ok(Value::Ptr { alloc, offset: 0 });
        }
        match &decl.init {
            Some(init) => {
                let value = self.eval(init)?;
                Ok(coerce(&decl.ty, value))
            }
            None => Ok(Value::Uninit),
        }
    }

    fn exec_decl(&mut self, decls: &[VarDecl]) -> EResult<()> {
        for decl in decls {
            let value = self.init_decl_value(decl)?;
            self.bind(&decl.name, value);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // functions
    // ------------------------------------------------------------------

    fn call_function(&mut self, func: &Function, args: Vec<Value>) -> EResult<Value> {
        if self.call_depth >= self.config.max_call_depth {
            return Err(Stop::Fault(RuntimeFault::StackOverflow));
        }
        self.call_depth += 1;
        let saved_locals = std::mem::take(&mut self.locals);
        self.push_scope();
        for (param, arg) in func.params.iter().zip(args) {
            let value = coerce(&param.ty, arg);
            self.bind(&param.name, value);
        }
        let mut result = Value::Int(0);
        let flow = self.exec_stmts(&func.body.stmts);
        self.locals = saved_locals;
        self.call_depth -= 1;
        match flow? {
            Flow::Return(v) => result = v,
            Flow::Normal | Flow::Break | Flow::Continue => {}
        }
        Ok(result)
    }

    // ------------------------------------------------------------------
    // statements
    // ------------------------------------------------------------------

    fn exec_stmts(&mut self, stmts: &[Stmt]) -> EResult<Flow> {
        for stmt in stmts {
            match self.exec_stmt(stmt)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> EResult<Flow> {
        self.step()?;
        match stmt {
            Stmt::Decl(decls) => {
                self.exec_decl(decls)?;
                Ok(Flow::Normal)
            }
            Stmt::Expr(expr) => {
                self.eval(expr)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let c = self.eval(cond)?;
                if c.truthy() {
                    self.push_scope();
                    let flow = self.exec_stmt(then_branch);
                    self.pop_scope();
                    flow
                } else if let Some(else_branch) = else_branch {
                    self.push_scope();
                    let flow = self.exec_stmt(else_branch);
                    self.pop_scope();
                    flow
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.push_scope();
                if let Some(init) = init {
                    if let Flow::Return(v) = self.exec_stmt_propagating(init)? {
                        self.pop_scope();
                        return Ok(Flow::Return(v));
                    }
                }
                loop {
                    self.step()?;
                    if let Some(cond) = cond {
                        if !self.eval(cond)?.truthy() {
                            break;
                        }
                    }
                    match self.exec_stmt(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => {
                            self.pop_scope();
                            return Ok(Flow::Return(v));
                        }
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(step) = step {
                        self.eval(step)?;
                    }
                }
                self.pop_scope();
                Ok(Flow::Normal)
            }
            Stmt::While { cond, body, .. } => {
                loop {
                    self.step()?;
                    if !self.eval(cond)?.truthy() {
                        break;
                    }
                    match self.exec_stmt(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::DoWhile { body, cond, .. } => {
                loop {
                    self.step()?;
                    match self.exec_stmt(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if !self.eval(cond)?.truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(value, _) => {
                let v = match value {
                    Some(expr) => self.eval(expr)?,
                    None => Value::Int(0),
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break(_) => Ok(Flow::Break),
            Stmt::Continue(_) => Ok(Flow::Continue),
            Stmt::Block(block) => {
                self.push_scope();
                let flow = self.exec_stmts(&block.stmts);
                self.pop_scope();
                flow
            }
            Stmt::Directive { directive, body } => self.exec_directive(directive, body.as_deref()),
            Stmt::Empty(_) => Ok(Flow::Normal),
        }
    }

    /// Execute a statement where `Return` must propagate but scopes are
    /// managed by the caller (used for `for` initializers).
    fn exec_stmt_propagating(&mut self, stmt: &Stmt) -> EResult<Flow> {
        self.exec_stmt(stmt)
    }

    // ------------------------------------------------------------------
    // directives
    // ------------------------------------------------------------------

    fn exec_directive(&mut self, directive: &Directive, body: Option<&Stmt>) -> EResult<Flow> {
        if directive.model != Some(self.program.model) {
            // Foreign or unknown pragma: ignored by this compiler/runtime.
            return match body {
                Some(body) => self.exec_stmt(body),
                None => Ok(Flow::Normal),
            };
        }
        let name = directive.display_name();
        let first = directive.name.first().map(String::as_str).unwrap_or("");

        match name.as_str() {
            // Standalone data management
            "enter data" | "target enter data" => {
                self.apply_data_clauses(directive, ClausePhase::Enter)?;
                Ok(Flow::Normal)
            }
            "exit data" | "target exit data" => {
                self.apply_data_clauses(directive, ClausePhase::Exit)?;
                Ok(Flow::Normal)
            }
            "update" | "target update" => {
                self.apply_update_clauses(directive)?;
                Ok(Flow::Normal)
            }
            // Structured data regions
            "data" | "target data" | "host_data" => {
                self.apply_data_clauses(directive, ClausePhase::Enter)?;
                let flow = match body {
                    Some(body) => self.exec_stmt(body)?,
                    None => Flow::Normal,
                };
                self.apply_data_clauses(directive, ClausePhase::Exit)?;
                Ok(flow)
            }
            _ => {
                let is_offload_compute = matches!(
                    first,
                    "parallel" | "kernels" | "serial" | "target" | "teams" | "task" | "taskloop"
                );
                if is_offload_compute {
                    self.apply_data_clauses(directive, ClausePhase::Enter)?;
                    self.offload_depth += 1;
                    let flow = match body {
                        Some(body) => self.exec_stmt(body),
                        None => Ok(Flow::Normal),
                    };
                    self.offload_depth -= 1;
                    self.apply_data_clauses(directive, ClausePhase::Exit)?;
                    flow
                } else {
                    // Worksharing/synchronization constructs inside an
                    // enclosing region (loop, for, simd, atomic, critical,
                    // master, single, sections, ordered, ...) just execute
                    // their body; the sequential interpreter already provides
                    // a consistent order.
                    match body {
                        Some(body) => self.exec_stmt(body),
                        None => Ok(Flow::Normal),
                    }
                }
            }
        }
    }

    fn apply_data_clauses(&mut self, directive: &Directive, phase: ClausePhase) -> EResult<()> {
        for clause in &directive.clauses {
            let Some(args) = &clause.args else { continue };
            let kind = match clause.name.as_str() {
                "copyin" => Some(MapKind::ToDevice),
                "copyout" => Some(MapKind::FromDevice),
                "copy" => Some(MapKind::Both),
                "create" | "no_create" => Some(MapKind::AllocOnly),
                "present" => Some(MapKind::AllocOnly),
                "map" => Some(map_kind_for(args)),
                "delete" => None, // handled below
                _ => None,
            };
            let is_delete = clause.name == "delete"
                || (clause.name == "map"
                    && args.trim_start().starts_with("release")
                    && args.contains(':'))
                || (clause.name == "map"
                    && args.trim_start().starts_with("delete")
                    && args.contains(':'));

            if kind.is_none() && !is_delete {
                continue;
            }
            for var in clause_variables(&clause.name, args) {
                let Some(Value::Ptr { alloc, .. }) = self.lookup(&var).cloned() else {
                    continue; // scalars are firstprivate; nothing to map
                };
                match phase {
                    ClausePhase::Enter => {
                        if is_delete {
                            continue;
                        }
                        let kind = kind.expect("kind is Some when not delete");
                        self.device
                            .enter(&self.host, alloc, kind)
                            .map_err(Self::fault_from)?;
                    }
                    ClausePhase::Exit => {
                        self.device
                            .exit(&mut self.host, alloc)
                            .map_err(Self::fault_from)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn apply_update_clauses(&mut self, directive: &Directive) -> EResult<()> {
        for clause in &directive.clauses {
            let Some(args) = &clause.args else { continue };
            let to_host = matches!(clause.name.as_str(), "self" | "host" | "from");
            let to_device = matches!(clause.name.as_str(), "device" | "to");
            if !to_host && !to_device {
                continue;
            }
            for var in clause_variables(&clause.name, args) {
                let Some(Value::Ptr { alloc, .. }) = self.lookup(&var).cloned() else {
                    continue;
                };
                if to_host {
                    self.device
                        .update_host(&mut self.host, alloc)
                        .map_err(Self::fault_from)?;
                } else {
                    self.device
                        .update_device(&self.host, alloc)
                        .map_err(Self::fault_from)?;
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // expressions
    // ------------------------------------------------------------------

    fn eval(&mut self, expr: &Expr) -> EResult<Value> {
        self.step()?;
        match expr {
            Expr::IntLit(v, _) => Ok(Value::Int(*v)),
            Expr::FloatLit(v, _) => Ok(Value::Float(*v)),
            Expr::StrLit(s, _) => Ok(Value::Str(s.clone())),
            Expr::CharLit(c, _) => Ok(Value::Int(*c as i64)),
            Expr::Ident(name, _) => match self.lookup(name) {
                Some(Value::Uninit) => {
                    let salt = name
                        .bytes()
                        .fold(0u64, |acc, b| acc.wrapping_mul(31) + b as u64);
                    Ok(self.garbage(salt))
                }
                Some(v) => Ok(v.clone()),
                None => Err(Stop::Fault(RuntimeFault::Segfault)),
            },
            Expr::Unary { op, expr, .. } => self.eval_unary(*op, expr),
            Expr::Binary { op, lhs, rhs, .. } => self.eval_binary(*op, lhs, rhs),
            Expr::Assign {
                op, target, value, ..
            } => {
                let rhs = self.eval(value)?;
                let place = self.resolve_place(target)?;
                let new_value = if *op == AssignOp::Assign {
                    rhs
                } else {
                    let old = self.read_place(&place)?;
                    let bin = match op {
                        AssignOp::AddAssign => BinOp::Add,
                        AssignOp::SubAssign => BinOp::Sub,
                        AssignOp::MulAssign => BinOp::Mul,
                        AssignOp::DivAssign => BinOp::Div,
                        AssignOp::Assign => unreachable!(),
                    };
                    self.apply_binop(bin, old, rhs)?
                };
                self.write_place(&place, new_value.clone())?;
                Ok(new_value)
            }
            Expr::Call { name, args, .. } => self.eval_call(name, args),
            Expr::Index { .. } | Expr::Postfix { .. } => {
                // Index reads and postfix inc/dec both need a place.
                match expr {
                    Expr::Index { .. } => {
                        let place = self.resolve_place(expr)?;
                        self.read_place(&place)
                    }
                    Expr::Postfix {
                        target, decrement, ..
                    } => {
                        let place = self.resolve_place(target)?;
                        let old = self.read_place(&place)?;
                        let delta = if *decrement { -1 } else { 1 };
                        let new = self.apply_binop(BinOp::Add, old.clone(), Value::Int(delta))?;
                        self.write_place(&place, new)?;
                        Ok(old)
                    }
                    _ => unreachable!(),
                }
            }
            Expr::Cast { ty, expr, .. } => {
                let v = self.eval(expr)?;
                Ok(coerce(ty, v))
            }
            Expr::SizeofType { ty, .. } => {
                let size = if ty.is_pointer() {
                    8
                } else {
                    ty.base.size_bytes()
                };
                Ok(Value::Int(size as i64))
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                if self.eval(cond)?.truthy() {
                    self.eval(then_expr)
                } else {
                    self.eval(else_expr)
                }
            }
        }
    }

    fn eval_unary(&mut self, op: UnOp, expr: &Expr) -> EResult<Value> {
        match op {
            UnOp::Neg => {
                let v = self.eval(expr)?;
                Ok(match v {
                    Value::Int(i) => Value::Int(-i),
                    other => Value::Float(-other.as_f64()),
                })
            }
            UnOp::Not => {
                let v = self.eval(expr)?;
                Ok(Value::Int(if v.truthy() { 0 } else { 1 }))
            }
            UnOp::BitNot => {
                let v = self.eval(expr)?;
                Ok(Value::Int(!v.as_i64()))
            }
            UnOp::Deref => {
                let place = self.resolve_deref_place(expr)?;
                self.read_place(&place)
            }
            UnOp::AddrOf => {
                // `&x` materializes a one-cell allocation holding a copy of
                // the current value. The corpus does not rely on write-back
                // through such pointers; this keeps the model simple.
                let v = self.eval(expr)?;
                let alloc = self.host.alloc_init(1, v);
                Ok(Value::Ptr { alloc, offset: 0 })
            }
            UnOp::PreIncr | UnOp::PreDecr => {
                let place = self.resolve_place(expr)?;
                let old = self.read_place(&place)?;
                let delta = if op == UnOp::PreDecr { -1 } else { 1 };
                let new = self.apply_binop(BinOp::Add, old, Value::Int(delta))?;
                self.write_place(&place, new.clone())?;
                Ok(new)
            }
        }
    }

    fn eval_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> EResult<Value> {
        if op == BinOp::And {
            let l = self.eval(lhs)?;
            if !l.truthy() {
                return Ok(Value::Int(0));
            }
            let r = self.eval(rhs)?;
            return Ok(Value::Int(if r.truthy() { 1 } else { 0 }));
        }
        if op == BinOp::Or {
            let l = self.eval(lhs)?;
            if l.truthy() {
                return Ok(Value::Int(1));
            }
            let r = self.eval(rhs)?;
            return Ok(Value::Int(if r.truthy() { 1 } else { 0 }));
        }
        let l = self.eval(lhs)?;
        let r = self.eval(rhs)?;
        self.apply_binop(op, l, r)
    }

    fn apply_binop(&mut self, op: BinOp, l: Value, r: Value) -> EResult<Value> {
        // Pointer arithmetic.
        if let Value::Ptr { alloc, offset } = &l {
            match op {
                BinOp::Add => {
                    return Ok(Value::Ptr {
                        alloc: *alloc,
                        offset: offset + r.as_i64(),
                    })
                }
                BinOp::Sub => {
                    if let Value::Ptr {
                        alloc: ra,
                        offset: ro,
                    } = &r
                    {
                        if ra == alloc {
                            return Ok(Value::Int(offset - ro));
                        }
                    }
                    return Ok(Value::Ptr {
                        alloc: *alloc,
                        offset: offset - r.as_i64(),
                    });
                }
                BinOp::Eq | BinOp::Ne => {
                    let equal = matches!(&r, Value::Ptr { alloc: ra, offset: ro } if ra == alloc && ro == offset);
                    let result = if op == BinOp::Eq { equal } else { !equal };
                    return Ok(Value::Int(result as i64));
                }
                _ => {}
            }
        }
        if let (Value::Ptr { alloc, offset }, BinOp::Add) = (&r, op) {
            return Ok(Value::Ptr {
                alloc: *alloc,
                offset: offset + l.as_i64(),
            });
        }

        let float_mode = l.is_float() || r.is_float() || l.is_uninit() || r.is_uninit();
        if op.is_comparison() {
            let result = if float_mode {
                let (a, b) = (l.as_f64(), r.as_f64());
                match op {
                    BinOp::Eq => a == b,
                    BinOp::Ne => a != b,
                    BinOp::Lt => a < b,
                    BinOp::Gt => a > b,
                    BinOp::Le => a <= b,
                    BinOp::Ge => a >= b,
                    _ => unreachable!(),
                }
            } else {
                let (a, b) = (l.as_i64(), r.as_i64());
                match op {
                    BinOp::Eq => a == b,
                    BinOp::Ne => a != b,
                    BinOp::Lt => a < b,
                    BinOp::Gt => a > b,
                    BinOp::Le => a <= b,
                    BinOp::Ge => a >= b,
                    _ => unreachable!(),
                }
            };
            return Ok(Value::Int(result as i64));
        }

        if float_mode {
            let (a, b) = (l.as_f64(), r.as_f64());
            let v = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Rem => a % b,
                BinOp::And | BinOp::Or => unreachable!("short-circuit handled earlier"),
                BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor | BinOp::Shl | BinOp::Shr => {
                    return Ok(Value::Int(int_bitop(op, a as i64, b as i64)))
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(v))
        } else {
            let (a, b) = (l.as_i64(), r.as_i64());
            let v = match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(Stop::Fault(RuntimeFault::DivideByZero));
                    }
                    a.wrapping_div(b)
                }
                BinOp::Rem => {
                    if b == 0 {
                        return Err(Stop::Fault(RuntimeFault::DivideByZero));
                    }
                    a.wrapping_rem(b)
                }
                BinOp::And | BinOp::Or => unreachable!("short-circuit handled earlier"),
                BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor | BinOp::Shl | BinOp::Shr => {
                    int_bitop(op, a, b)
                }
                _ => unreachable!(),
            };
            Ok(Value::Int(v))
        }
    }

    // ------------------------------------------------------------------
    // places (lvalues)
    // ------------------------------------------------------------------

    fn resolve_place(&mut self, expr: &Expr) -> EResult<Place> {
        match expr {
            Expr::Ident(name, _) => Ok(Place::Var(name.clone())),
            Expr::Index { base, index, .. } => {
                let base_v = self.eval(base)?;
                let index_v = self.eval(index)?.as_i64();
                match base_v {
                    Value::Ptr { alloc, offset } => Ok(Place::Mem {
                        alloc,
                        offset: offset + index_v,
                    }),
                    _ => Err(Stop::Fault(RuntimeFault::Segfault)),
                }
            }
            Expr::Unary {
                op: UnOp::Deref,
                expr,
                ..
            } => self.resolve_deref_place(expr),
            Expr::Cast { expr, .. } => self.resolve_place(expr),
            _ => Err(Stop::Fault(RuntimeFault::Segfault)),
        }
    }

    fn resolve_deref_place(&mut self, pointer_expr: &Expr) -> EResult<Place> {
        let v = self.eval(pointer_expr)?;
        match v {
            Value::Ptr { alloc, offset } => Ok(Place::Mem { alloc, offset }),
            _ => Err(Stop::Fault(RuntimeFault::Segfault)),
        }
    }

    fn read_place(&mut self, place: &Place) -> EResult<Value> {
        match place {
            Place::Var(name) => match self.lookup(name) {
                Some(Value::Uninit) | None => {
                    let salt = name
                        .bytes()
                        .fold(7u64, |acc, b| acc.wrapping_mul(131) + b as u64);
                    Ok(self.garbage(salt))
                }
                Some(v) => Ok(v.clone()),
            },
            Place::Mem { alloc, offset } => {
                let value = if self.offload_depth > 0 && self.device.is_present(*alloc) {
                    self.device
                        .read(*alloc, *offset)
                        .map_err(Self::fault_from)?
                } else {
                    self.host.read(*alloc, *offset).map_err(Self::fault_from)?
                };
                if value.is_uninit() {
                    Ok(self.garbage((*alloc as u64) << 20 | (*offset as u64 & 0xFFFFF)))
                } else {
                    Ok(value)
                }
            }
        }
    }

    fn write_place(&mut self, place: &Place, value: Value) -> EResult<()> {
        match place {
            Place::Var(name) => {
                self.assign_var(name, value);
                Ok(())
            }
            Place::Mem { alloc, offset } => {
                if self.offload_depth > 0 && self.device.is_present(*alloc) {
                    self.device
                        .write(*alloc, *offset, value)
                        .map_err(Self::fault_from)
                } else {
                    self.host
                        .write(*alloc, *offset, value)
                        .map_err(Self::fault_from)
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // calls
    // ------------------------------------------------------------------

    fn eval_call(&mut self, name: &str, args: &[Expr]) -> EResult<Value> {
        // User-defined functions take precedence over builtins.
        if let Some(func) = self.program.unit.function(name) {
            let func = func.clone();
            let mut values = Vec::with_capacity(args.len());
            for arg in args {
                values.push(self.eval(arg)?);
            }
            return self.call_function(&func, values);
        }
        self.eval_builtin(name, args)
    }

    fn eval_builtin(&mut self, name: &str, args: &[Expr]) -> EResult<Value> {
        match name {
            "malloc" | "acc_malloc" | "omp_target_alloc" => {
                let count = self.allocation_element_count(args.first())?;
                let alloc = self.host.alloc(count);
                Ok(Value::Ptr { alloc, offset: 0 })
            }
            "calloc" => {
                let count = match args.first() {
                    Some(expr) => self.eval(expr)?.as_i64().clamp(0, 4_000_000) as usize,
                    None => 0,
                };
                let alloc = self.host.alloc_init(count, Value::Int(0));
                Ok(Value::Ptr { alloc, offset: 0 })
            }
            "realloc" => {
                // Modeled as a fresh allocation of the requested size.
                let count = self.allocation_element_count(args.get(1))?;
                let alloc = self.host.alloc(count);
                Ok(Value::Ptr { alloc, offset: 0 })
            }
            "free" | "acc_free" | "omp_target_free" => {
                if let Some(expr) = args.first() {
                    let v = self.eval(expr)?;
                    if let Value::Ptr { alloc, .. } = v {
                        self.host.free(alloc).map_err(Self::fault_from)?;
                    }
                }
                Ok(Value::Int(0))
            }
            "printf" | "puts" | "putchar" => {
                let text = self.format_output(name, args)?;
                self.write_stdout(&text);
                Ok(Value::Int(text.len() as i64))
            }
            "fprintf" => {
                // The first argument is the stream; everything else formats
                // like printf. Streams are not modeled, so output goes to
                // stderr (the common use in V&V tests).
                let text = self.format_printf(&args[1..])?;
                self.write_stderr(&text);
                Ok(Value::Int(text.len() as i64))
            }
            "exit" => {
                let code = match args.first() {
                    Some(expr) => self.eval(expr)?.as_i64() as i32,
                    None => 0,
                };
                Err(Stop::Exit(code))
            }
            "abort" => Err(Stop::Exit(134)),
            "fabs" | "fabsf" => self.math1(args, f64::abs),
            "sqrt" | "sqrtf" => self.math1(args, f64::sqrt),
            "exp" => self.math1(args, f64::exp),
            "log" => self.math1(args, f64::ln),
            "sin" => self.math1(args, f64::sin),
            "cos" => self.math1(args, f64::cos),
            "tan" => self.math1(args, f64::tan),
            "floor" => self.math1(args, f64::floor),
            "ceil" => self.math1(args, f64::ceil),
            "pow" => {
                let a = self.arg_f64(args, 0)?;
                let b = self.arg_f64(args, 1)?;
                Ok(Value::Float(a.powf(b)))
            }
            "abs" | "labs" => {
                let v = match args.first() {
                    Some(expr) => self.eval(expr)?.as_i64(),
                    None => 0,
                };
                Ok(Value::Int(v.abs()))
            }
            "rand" => {
                self.rng_state ^= self.rng_state << 13;
                self.rng_state ^= self.rng_state >> 7;
                self.rng_state ^= self.rng_state << 17;
                Ok(Value::Int((self.rng_state % 2147483647) as i64))
            }
            "srand" => {
                if let Some(expr) = args.first() {
                    let seed = self.eval(expr)?.as_i64() as u64;
                    self.rng_state = seed | 1;
                }
                Ok(Value::Int(0))
            }
            "memset" => {
                if let (Some(ptr_expr), Some(val_expr)) = (args.first(), args.get(1)) {
                    let ptr = self.eval(ptr_expr)?;
                    let fill = self.eval(val_expr)?;
                    if let Value::Ptr { alloc, offset } = ptr {
                        let len = self.host.len(alloc).map_err(Self::fault_from)?;
                        for i in (offset.max(0) as usize)..len {
                            self.host
                                .write(alloc, i as i64, fill.clone())
                                .map_err(Self::fault_from)?;
                        }
                        return Ok(Value::Ptr { alloc, offset });
                    }
                }
                Ok(Value::Int(0))
            }
            "memcpy" => {
                if let (Some(dst_expr), Some(src_expr)) = (args.first(), args.get(1)) {
                    let dst = self.eval(dst_expr)?;
                    let src = self.eval(src_expr)?;
                    if let (Value::Ptr { alloc: da, .. }, Value::Ptr { alloc: sa, .. }) =
                        (dst.clone(), src)
                    {
                        let data = self.host.snapshot(sa).map_err(Self::fault_from)?;
                        self.host.restore(da, data).map_err(Self::fault_from)?;
                    }
                    return Ok(dst);
                }
                Ok(Value::Int(0))
            }
            "strlen" => {
                let v = match args.first() {
                    Some(expr) => self.eval(expr)?,
                    None => Value::Int(0),
                };
                Ok(Value::Int(match v {
                    Value::Str(s) => s.len() as i64,
                    _ => 0,
                }))
            }
            "strcmp" => {
                let a = self.arg_string(args, 0)?;
                let b = self.arg_string(args, 1)?;
                Ok(Value::Int(match a.cmp(&b) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                }))
            }
            // Runtime library introspection
            "acc_get_num_devices" | "omp_get_num_devices" => Ok(Value::Int(1)),
            "acc_get_device_num" | "omp_get_team_num" | "omp_get_thread_num" => Ok(Value::Int(0)),
            "acc_set_device_num" | "omp_set_num_threads" => Ok(Value::Int(0)),
            "omp_get_num_threads" => Ok(Value::Int(if self.offload_depth > 0 { 8 } else { 1 })),
            "omp_get_num_teams" => Ok(Value::Int(if self.offload_depth > 0 { 4 } else { 1 })),
            "omp_is_initial_device" => Ok(Value::Int(if self.offload_depth > 0 { 0 } else { 1 })),
            "omp_get_wtime" => Ok(Value::Float(self.steps as f64 * 1.0e-9)),
            _ => {
                // Implicitly declared function (compile-time warning): calling
                // it returns 0, mirroring a link against a stub.
                for arg in args {
                    self.eval(arg)?;
                }
                Ok(Value::Int(0))
            }
        }
    }

    fn allocation_element_count(&mut self, arg: Option<&Expr>) -> EResult<usize> {
        let Some(arg) = arg else { return Ok(0) };
        // Recognize the idiomatic `count * sizeof(T)` shape and use `count`
        // as the element count; otherwise fall back to the raw byte value
        // divided by 8 (the widest element the corpus uses).
        if let Expr::Binary {
            op: BinOp::Mul,
            lhs,
            rhs,
            ..
        } = arg
        {
            if matches!(rhs.as_ref(), Expr::SizeofType { .. }) {
                let count = self.eval(lhs)?.as_i64();
                return Ok(count.clamp(0, 4_000_000) as usize);
            }
            if matches!(lhs.as_ref(), Expr::SizeofType { .. }) {
                let count = self.eval(rhs)?.as_i64();
                return Ok(count.clamp(0, 4_000_000) as usize);
            }
        }
        let bytes = self.eval(arg)?.as_i64().clamp(0, 32_000_000);
        Ok(((bytes + 7) / 8) as usize)
    }

    fn math1(&mut self, args: &[Expr], f: impl Fn(f64) -> f64) -> EResult<Value> {
        let v = self.arg_f64(args, 0)?;
        Ok(Value::Float(f(v)))
    }

    fn arg_f64(&mut self, args: &[Expr], index: usize) -> EResult<f64> {
        match args.get(index) {
            Some(expr) => Ok(self.eval(expr)?.as_f64()),
            None => Ok(0.0),
        }
    }

    fn arg_string(&mut self, args: &[Expr], index: usize) -> EResult<String> {
        match args.get(index) {
            Some(expr) => Ok(match self.eval(expr)? {
                Value::Str(s) => s,
                other => other.to_string(),
            }),
            None => Ok(String::new()),
        }
    }

    // ------------------------------------------------------------------
    // output
    // ------------------------------------------------------------------

    fn write_stdout(&mut self, text: &str) {
        if self.stdout.len() < self.config.capture_limit {
            self.stdout.push_str(text);
            self.stdout.truncate(self.config.capture_limit);
        }
    }

    fn write_stderr(&mut self, text: &str) {
        if self.stderr.len() < self.config.capture_limit {
            self.stderr.push_str(text);
            self.stderr.truncate(self.config.capture_limit);
        }
    }

    fn format_output(&mut self, name: &str, args: &[Expr]) -> EResult<String> {
        match name {
            "puts" => {
                let mut s = self.arg_string(args, 0)?;
                s.push('\n');
                Ok(s)
            }
            "putchar" => {
                let c = match args.first() {
                    Some(expr) => self.eval(expr)?.as_i64(),
                    None => 0,
                };
                Ok(char::from_u32(c as u32).unwrap_or('?').to_string())
            }
            _ => self.format_printf(args),
        }
    }

    fn format_printf(&mut self, args: &[Expr]) -> EResult<String> {
        let Some(first) = args.first() else {
            return Ok(String::new());
        };
        let fmt = match self.eval(first)? {
            Value::Str(s) => s,
            other => other.to_string(),
        };
        let mut values = Vec::new();
        for arg in &args[1..] {
            values.push(self.eval(arg)?);
        }
        Ok(format_c_string(&fmt, &values))
    }
}

/// A resolved storage location.
enum Place {
    Var(String),
    Mem { alloc: usize, offset: i64 },
}

/// Whether data clauses are being applied at region entry or exit.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ClausePhase {
    Enter,
    Exit,
}

fn map_kind_for(args: &str) -> MapKind {
    let prefix = args.split(':').next().unwrap_or("").trim();
    match prefix {
        "to" | "always to" => MapKind::ToDevice,
        "from" | "always from" => MapKind::FromDevice,
        "tofrom" | "always tofrom" => MapKind::Both,
        "alloc" => MapKind::AllocOnly,
        _ => MapKind::Both,
    }
}

fn int_bitop(op: BinOp, a: i64, b: i64) -> i64 {
    match op {
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::BitXor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32),
        BinOp::Shr => a.wrapping_shr(b as u32),
        _ => unreachable!(),
    }
}

/// Coerce a value to a declared type.
fn coerce(ty: &Type, value: Value) -> Value {
    if ty.is_pointer() {
        return value; // pointers keep whatever they were assigned
    }
    match ty.base {
        BaseType::Float | BaseType::Double => Value::Float(value.as_f64()),
        BaseType::Int | BaseType::Long | BaseType::Char => match value {
            Value::Uninit => Value::Uninit,
            Value::Ptr { .. } => value,
            other => Value::Int(other.as_i64()),
        },
        BaseType::Void => value,
    }
}

/// Minimal C `printf` formatting.
fn format_c_string(fmt: &str, values: &[Value]) -> String {
    let mut out = String::with_capacity(fmt.len() + 16);
    let mut chars = fmt.chars().peekable();
    let mut arg_index = 0usize;
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        // collect flags / width / precision / length modifiers
        let mut spec = String::new();
        let mut conversion = None;
        while let Some(&next) = chars.peek() {
            if next.is_ascii_digit()
                || matches!(next, '-' | '+' | ' ' | '.' | '#' | '*' | 'l' | 'h' | 'z')
            {
                spec.push(next);
                chars.next();
            } else {
                conversion = Some(next);
                chars.next();
                break;
            }
        }
        let Some(conv) = conversion else {
            out.push('%');
            out.push_str(&spec);
            break;
        };
        if conv == '%' {
            out.push('%');
            continue;
        }
        let value = values.get(arg_index).cloned().unwrap_or(Value::Int(0));
        arg_index += 1;
        let precision = spec.split('.').nth(1).and_then(|p| {
            p.chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse::<usize>()
                .ok()
        });
        match conv {
            'd' | 'i' | 'u' => out.push_str(&value.as_i64().to_string()),
            'x' => out.push_str(&format!("{:x}", value.as_i64())),
            'c' => out.push(char::from_u32(value.as_i64() as u32).unwrap_or('?')),
            'f' | 'F' => out.push_str(&format!("{:.*}", precision.unwrap_or(6), value.as_f64())),
            'e' | 'E' => out.push_str(&format!("{:e}", value.as_f64())),
            'g' | 'G' => out.push_str(&format!("{}", value.as_f64())),
            's' => out.push_str(&value.to_string()),
            'p' => out.push_str(&format!("{value}")),
            other => {
                out.push('%');
                out.push(other);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vv_dclang::DirectiveModel;
    use vv_simcompiler::{compiler_for, Lang};

    fn compile(source: &str, model: DirectiveModel) -> Program {
        let outcome = compiler_for(model).compile(source, Lang::C);
        assert!(outcome.succeeded(), "compile failed: {}", outcome.stderr);
        outcome.artifact.unwrap()
    }

    fn run(source: &str, model: DirectiveModel) -> ExecOutcome {
        Executor::default().run(&compile(source, model))
    }

    #[test]
    fn arithmetic_and_printf() {
        let out = run(
            "#include <stdio.h>\nint main() { int x = 6 * 7; double y = 1.5 + 2.25; printf(\"x=%d y=%f\\n\", x, y); return 0; }",
            DirectiveModel::OpenAcc,
        );
        assert_eq!(out.return_code, 0);
        assert_eq!(out.stdout, "x=42 y=3.750000\n");
    }

    #[test]
    fn return_code_propagates() {
        let out = run("int main() { return 3; }", DirectiveModel::OpenMp);
        assert_eq!(out.return_code, 3);
    }

    #[test]
    fn exit_call_stops_execution() {
        let out = run(
            "#include <stdlib.h>\n#include <stdio.h>\nint main() { printf(\"before\\n\"); exit(7); printf(\"after\\n\"); return 0; }",
            DirectiveModel::OpenAcc,
        );
        assert_eq!(out.return_code, 7);
        assert_eq!(out.stdout, "before\n");
    }

    #[test]
    fn user_function_calls_work() {
        let out = run(
            "int square(int x) { return x * x; }\nint main() { return square(5) == 25 ? 0 : 1; }",
            DirectiveModel::OpenAcc,
        );
        assert_eq!(out.return_code, 0);
    }

    #[test]
    fn stack_arrays_and_loops() {
        let out = run(
            "#include <stdio.h>\nint main() { int a[10]; int sum = 0; for (int i = 0; i < 10; i++) { a[i] = i; } for (int i = 0; i < 10; i++) { sum += a[i]; } printf(\"%d\\n\", sum); return sum == 45 ? 0 : 1; }",
            DirectiveModel::OpenMp,
        );
        assert_eq!(out.return_code, 0, "stdout: {}", out.stdout);
        assert_eq!(out.stdout.trim(), "45");
    }

    #[test]
    fn out_of_bounds_write_segfaults() {
        let out = run(
            "#include <stdlib.h>\nint main() { double *a = (double *)malloc(4 * sizeof(double)); a[100] = 1.0; return 0; }",
            DirectiveModel::OpenAcc,
        );
        assert_eq!(out.return_code, 139);
        assert!(out.stderr.contains("Segmentation fault"));
    }

    #[test]
    fn division_by_zero_faults() {
        let out = run(
            "int main() { int a = 4; int b = 0; return a / b; }",
            DirectiveModel::OpenMp,
        );
        assert_eq!(out.return_code, 136);
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let program = compile(
            "int main() { while (1) { } return 0; }",
            DirectiveModel::OpenAcc,
        );
        let exec = Executor::new(ExecConfig {
            step_limit: 10_000,
            ..Default::default()
        });
        let out = exec.run(&program);
        assert_eq!(out.return_code, 124);
        assert_eq!(out.fault, Some(RuntimeFault::StepLimit));
    }

    #[test]
    fn use_after_free_segfaults() {
        let out = run(
            "#include <stdlib.h>\nint main() { double *a = (double *)malloc(4 * sizeof(double)); free(a); a[0] = 1.0; return 0; }",
            DirectiveModel::OpenAcc,
        );
        assert_eq!(out.return_code, 139);
    }

    #[test]
    fn omp_target_map_round_trip() {
        let out = run(
            r#"
#include <stdio.h>
#define N 32
int main() {
    double a[N];
    double b[N];
    for (int i = 0; i < N; i++) { a[i] = i * 1.0; b[i] = 0.0; }
#pragma omp target map(to: a[0:N]) map(from: b[0:N])
    {
#pragma omp parallel for
        for (int i = 0; i < N; i++) { b[i] = a[i] + 1.0; }
    }
    int err = 0;
    for (int i = 0; i < N; i++) { if (b[i] != a[i] + 1.0) { err++; } }
    if (err != 0) { printf("FAIL %d\n", err); return 1; }
    printf("PASS\n");
    return 0;
}
"#,
            DirectiveModel::OpenMp,
        );
        assert_eq!(
            out.return_code, 0,
            "stdout: {} stderr: {}",
            out.stdout, out.stderr
        );
        assert!(out.stdout.contains("PASS"));
    }

    #[test]
    fn acc_reduction_computes_correct_sum() {
        let out = run(
            r#"
#include <stdio.h>
#include <stdlib.h>
#define N 100
int main() {
    double *a = (double *)malloc(N * sizeof(double));
    for (int i = 0; i < N; i++) { a[i] = 1.0; }
    double sum = 0.0;
#pragma acc parallel loop reduction(+:sum) copyin(a[0:N])
    for (int i = 0; i < N; i++) { sum += a[i]; }
    free(a);
    if (sum != 100.0) { printf("FAIL sum=%f\n", sum); return 1; }
    printf("PASS\n");
    return 0;
}
"#,
            DirectiveModel::OpenAcc,
        );
        assert_eq!(
            out.return_code, 0,
            "stdout: {} stderr: {}",
            out.stdout, out.stderr
        );
    }

    #[test]
    fn copyin_without_copyout_loses_device_writes() {
        // A classic data-movement mistake: results computed on the device are
        // never copied back, so the host-side verification fails.
        let out = run(
            r#"
#include <stdio.h>
#include <stdlib.h>
#define N 16
int main() {
    double *b = (double *)malloc(N * sizeof(double));
    for (int i = 0; i < N; i++) { b[i] = 0.0; }
#pragma acc data copyin(b[0:N])
    {
#pragma acc parallel loop
        for (int i = 0; i < N; i++) { b[i] = 5.0; }
    }
    int err = 0;
    for (int i = 0; i < N; i++) { if (b[i] != 5.0) { err++; } }
    if (err != 0) { printf("FAIL\n"); return 1; }
    printf("PASS\n");
    return 0;
}
"#,
            DirectiveModel::OpenAcc,
        );
        assert_eq!(out.return_code, 1, "stdout: {}", out.stdout);
        assert!(out.stdout.contains("FAIL"));
    }

    #[test]
    fn enter_exit_data_and_update() {
        let out = run(
            r#"
#include <stdio.h>
#include <stdlib.h>
#define N 8
int main() {
    double *a = (double *)malloc(N * sizeof(double));
    for (int i = 0; i < N; i++) { a[i] = 2.0; }
#pragma acc enter data copyin(a[0:N])
#pragma acc parallel loop present(a[0:N])
    for (int i = 0; i < N; i++) { a[i] = a[i] * 3.0; }
#pragma acc update self(a[0:N])
#pragma acc exit data delete(a[0:N])
    int err = 0;
    for (int i = 0; i < N; i++) { if (a[i] != 6.0) { err++; } }
    free(a);
    if (err != 0) { printf("FAIL\n"); return 1; }
    printf("PASS\n");
    return 0;
}
"#,
            DirectiveModel::OpenAcc,
        );
        assert_eq!(
            out.return_code, 0,
            "stdout: {} stderr: {}",
            out.stdout, out.stderr
        );
    }

    #[test]
    fn math_builtins() {
        let out = run(
            "#include <math.h>\nint main() { double x = sqrt(16.0) + fabs(-2.0) + pow(2.0, 3.0); return x == 14.0 ? 0 : 1; }",
            DirectiveModel::OpenAcc,
        );
        assert_eq!(out.return_code, 0);
    }

    #[test]
    fn format_c_string_specifiers() {
        assert_eq!(
            format_c_string(
                "i=%d f=%.2f s=%s %%",
                &[Value::Int(3), Value::Float(1.5), Value::Str("ok".into())]
            ),
            "i=3 f=1.50 s=ok %"
        );
        assert_eq!(format_c_string("%ld", &[Value::Int(-9)]), "-9");
        assert_eq!(format_c_string("no args %d", &[]), "no args 0");
    }

    #[test]
    fn recursion_depth_limit_triggers_stack_overflow() {
        let src = "int rec(int n) { return rec(n + 1); }\nint main() { return rec(0); }";
        let out = run(src, DirectiveModel::OpenAcc);
        assert!(out.return_code == 139 || out.return_code == 124);
    }

    #[test]
    fn uninitialized_scalar_reads_produce_garbage_not_zero() {
        let out = run(
            "int main() { double x; if (x == 0.0) { return 0; } return 1; }",
            DirectiveModel::OpenAcc,
        );
        assert_eq!(out.return_code, 1);
    }
}
