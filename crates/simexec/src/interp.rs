//! The execution entry point.
//!
//! [`Executor::run`] lowers the checked [`Program`] to register bytecode
//! (once — the artifact is cached on the program, see
//! [`crate::bytecode::lower_cached`]) and executes it with the VM's
//! dispatch loop. The original tree-walking interpreter is available as an
//! oracle behind the `treewalk-reference` feature
//! ([`crate::treewalk::TreeWalkExecutor`]); both produce byte-identical
//! [`ExecOutcome`]s.

use crate::bytecode;
use crate::outcome::ExecOutcome;
use vv_simcompiler::Program;

/// Configuration for the executor.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Maximum number of interpreter steps before the run is killed
    /// (simulates a batch-system time limit).
    pub step_limit: u64,
    /// Maximum call depth before a simulated stack overflow.
    pub max_call_depth: usize,
    /// Maximum captured stdout/stderr size in bytes.
    pub capture_limit: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            step_limit: 4_000_000,
            max_call_depth: 128,
            capture_limit: 64 * 1024,
        }
    }
}

/// Runs compiled programs through the register-bytecode VM.
#[derive(Clone, Debug, Default)]
pub struct Executor {
    /// Execution limits.
    pub config: ExecConfig,
}

impl Executor {
    /// Create an executor with a custom configuration.
    pub fn new(config: ExecConfig) -> Self {
        Self { config }
    }

    /// Execute a compiled program and capture its observable behaviour.
    ///
    /// The first run of a given program lowers it to bytecode and caches
    /// the artifact on the program itself; subsequent runs (including runs
    /// of clones) skip straight to execution.
    pub fn run(&self, program: &Program) -> ExecOutcome {
        let lowered = bytecode::lower_cached(program);
        bytecode::run_lowered(&lowered, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format_c_string;
    use crate::outcome::RuntimeFault;
    use crate::value::Value;
    use vv_dclang::DirectiveModel;
    use vv_simcompiler::{compiler_for, Lang};

    fn compile(source: &str, model: DirectiveModel) -> Program {
        let outcome = compiler_for(model).compile(source, Lang::C);
        assert!(outcome.succeeded(), "compile failed: {}", outcome.stderr);
        outcome.artifact.unwrap()
    }

    fn run(source: &str, model: DirectiveModel) -> ExecOutcome {
        Executor::default().run(&compile(source, model))
    }

    #[test]
    fn arithmetic_and_printf() {
        let out = run(
            "#include <stdio.h>\nint main() { int x = 6 * 7; double y = 1.5 + 2.25; printf(\"x=%d y=%f\\n\", x, y); return 0; }",
            DirectiveModel::OpenAcc,
        );
        assert_eq!(out.return_code, 0);
        assert_eq!(out.stdout, "x=42 y=3.750000\n");
    }

    #[test]
    fn return_code_propagates() {
        let out = run("int main() { return 3; }", DirectiveModel::OpenMp);
        assert_eq!(out.return_code, 3);
    }

    #[test]
    fn exit_call_stops_execution() {
        let out = run(
            "#include <stdlib.h>\n#include <stdio.h>\nint main() { printf(\"before\\n\"); exit(7); printf(\"after\\n\"); return 0; }",
            DirectiveModel::OpenAcc,
        );
        assert_eq!(out.return_code, 7);
        assert_eq!(out.stdout, "before\n");
    }

    #[test]
    fn user_function_calls_work() {
        let out = run(
            "int square(int x) { return x * x; }\nint main() { return square(5) == 25 ? 0 : 1; }",
            DirectiveModel::OpenAcc,
        );
        assert_eq!(out.return_code, 0);
    }

    #[test]
    fn stack_arrays_and_loops() {
        let out = run(
            "#include <stdio.h>\nint main() { int a[10]; int sum = 0; for (int i = 0; i < 10; i++) { a[i] = i; } for (int i = 0; i < 10; i++) { sum += a[i]; } printf(\"%d\\n\", sum); return sum == 45 ? 0 : 1; }",
            DirectiveModel::OpenMp,
        );
        assert_eq!(out.return_code, 0, "stdout: {}", out.stdout);
        assert_eq!(out.stdout.trim(), "45");
    }

    #[test]
    fn out_of_bounds_write_segfaults() {
        let out = run(
            "#include <stdlib.h>\nint main() { double *a = (double *)malloc(4 * sizeof(double)); a[100] = 1.0; return 0; }",
            DirectiveModel::OpenAcc,
        );
        assert_eq!(out.return_code, 139);
        assert!(out.stderr.contains("Segmentation fault"));
    }

    #[test]
    fn division_by_zero_faults() {
        let out = run(
            "int main() { int a = 4; int b = 0; return a / b; }",
            DirectiveModel::OpenMp,
        );
        assert_eq!(out.return_code, 136);
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let program = compile(
            "int main() { while (1) { } return 0; }",
            DirectiveModel::OpenAcc,
        );
        let exec = Executor::new(ExecConfig {
            step_limit: 10_000,
            ..Default::default()
        });
        let out = exec.run(&program);
        assert_eq!(out.return_code, 124);
        assert_eq!(out.fault, Some(RuntimeFault::StepLimit));
    }

    #[test]
    fn use_after_free_segfaults() {
        let out = run(
            "#include <stdlib.h>\nint main() { double *a = (double *)malloc(4 * sizeof(double)); free(a); a[0] = 1.0; return 0; }",
            DirectiveModel::OpenAcc,
        );
        assert_eq!(out.return_code, 139);
    }

    #[test]
    fn omp_target_map_round_trip() {
        let out = run(
            r#"
#include <stdio.h>
#define N 32
int main() {
    double a[N];
    double b[N];
    for (int i = 0; i < N; i++) { a[i] = i * 1.0; b[i] = 0.0; }
#pragma omp target map(to: a[0:N]) map(from: b[0:N])
    {
#pragma omp parallel for
        for (int i = 0; i < N; i++) { b[i] = a[i] + 1.0; }
    }
    int err = 0;
    for (int i = 0; i < N; i++) { if (b[i] != a[i] + 1.0) { err++; } }
    if (err != 0) { printf("FAIL %d\n", err); return 1; }
    printf("PASS\n");
    return 0;
}
"#,
            DirectiveModel::OpenMp,
        );
        assert_eq!(
            out.return_code, 0,
            "stdout: {} stderr: {}",
            out.stdout, out.stderr
        );
        assert!(out.stdout.contains("PASS"));
    }

    #[test]
    fn acc_reduction_computes_correct_sum() {
        let out = run(
            r#"
#include <stdio.h>
#include <stdlib.h>
#define N 100
int main() {
    double *a = (double *)malloc(N * sizeof(double));
    for (int i = 0; i < N; i++) { a[i] = 1.0; }
    double sum = 0.0;
#pragma acc parallel loop reduction(+:sum) copyin(a[0:N])
    for (int i = 0; i < N; i++) { sum += a[i]; }
    free(a);
    if (sum != 100.0) { printf("FAIL sum=%f\n", sum); return 1; }
    printf("PASS\n");
    return 0;
}
"#,
            DirectiveModel::OpenAcc,
        );
        assert_eq!(
            out.return_code, 0,
            "stdout: {} stderr: {}",
            out.stdout, out.stderr
        );
    }

    #[test]
    fn copyin_without_copyout_loses_device_writes() {
        // A classic data-movement mistake: results computed on the device are
        // never copied back, so the host-side verification fails.
        let out = run(
            r#"
#include <stdio.h>
#include <stdlib.h>
#define N 16
int main() {
    double *b = (double *)malloc(N * sizeof(double));
    for (int i = 0; i < N; i++) { b[i] = 0.0; }
#pragma acc data copyin(b[0:N])
    {
#pragma acc parallel loop
        for (int i = 0; i < N; i++) { b[i] = 5.0; }
    }
    int err = 0;
    for (int i = 0; i < N; i++) { if (b[i] != 5.0) { err++; } }
    if (err != 0) { printf("FAIL\n"); return 1; }
    printf("PASS\n");
    return 0;
}
"#,
            DirectiveModel::OpenAcc,
        );
        assert_eq!(out.return_code, 1, "stdout: {}", out.stdout);
        assert!(out.stdout.contains("FAIL"));
    }

    #[test]
    fn enter_exit_data_and_update() {
        let out = run(
            r#"
#include <stdio.h>
#include <stdlib.h>
#define N 8
int main() {
    double *a = (double *)malloc(N * sizeof(double));
    for (int i = 0; i < N; i++) { a[i] = 2.0; }
#pragma acc enter data copyin(a[0:N])
#pragma acc parallel loop present(a[0:N])
    for (int i = 0; i < N; i++) { a[i] = a[i] * 3.0; }
#pragma acc update self(a[0:N])
#pragma acc exit data delete(a[0:N])
    int err = 0;
    for (int i = 0; i < N; i++) { if (a[i] != 6.0) { err++; } }
    free(a);
    if (err != 0) { printf("FAIL\n"); return 1; }
    printf("PASS\n");
    return 0;
}
"#,
            DirectiveModel::OpenAcc,
        );
        assert_eq!(
            out.return_code, 0,
            "stdout: {} stderr: {}",
            out.stdout, out.stderr
        );
    }

    #[test]
    fn math_builtins() {
        let out = run(
            "#include <math.h>\nint main() { double x = sqrt(16.0) + fabs(-2.0) + pow(2.0, 3.0); return x == 14.0 ? 0 : 1; }",
            DirectiveModel::OpenAcc,
        );
        assert_eq!(out.return_code, 0);
    }

    #[test]
    fn format_c_string_specifiers() {
        assert_eq!(
            format_c_string(
                "i=%d f=%.2f s=%s %%",
                &[Value::Int(3), Value::Float(1.5), Value::Str("ok".into())]
            ),
            "i=3 f=1.50 s=ok %"
        );
        assert_eq!(format_c_string("%ld", &[Value::Int(-9)]), "-9");
        assert_eq!(format_c_string("no args %d", &[]), "no args 0");
    }

    #[test]
    fn recursion_depth_limit_triggers_stack_overflow() {
        let src = "int rec(int n) { return rec(n + 1); }\nint main() { return rec(0); }";
        let out = run(src, DirectiveModel::OpenAcc);
        assert!(out.return_code == 139 || out.return_code == 124);
    }

    #[test]
    fn uninitialized_scalar_reads_produce_garbage_not_zero() {
        let out = run(
            "int main() { double x; if (x == 0.0) { return 0; } return 1; }",
            DirectiveModel::OpenAcc,
        );
        assert_eq!(out.return_code, 1);
    }

    #[test]
    fn break_and_continue_inside_data_region() {
        // Break out of a loop from inside a structured data region: the
        // region's exit transfers must still run (flow unwinding).
        let out = run(
            r#"
#include <stdio.h>
#include <stdlib.h>
#define N 8
int main() {
    double *b = (double *)malloc(N * sizeof(double));
    for (int i = 0; i < N; i++) { b[i] = 0.0; }
    for (int i = 0; i < N; i++) {
#pragma acc data copy(b[0:N])
        {
#pragma acc parallel loop
            for (int j = 0; j < N; j++) { b[j] = b[j] + 1.0; }
        }
        if (i == 2) { break; }
    }
    int err = 0;
    for (int i = 0; i < N; i++) { if (b[i] != 3.0) { err++; } }
    if (err != 0) { printf("FAIL\n"); return 1; }
    printf("PASS\n");
    return 0;
}
"#,
            DirectiveModel::OpenAcc,
        );
        assert_eq!(
            out.return_code, 0,
            "stdout: {} stderr: {}",
            out.stdout, out.stderr
        );
    }

    #[test]
    fn lowering_is_cached_on_the_program() {
        let program = compile("int main() { return 0; }", DirectiveModel::OpenAcc);
        let first = bytecode::lower_cached(&program);
        let second = bytecode::lower_cached(&program.clone());
        assert!(std::sync::Arc::ptr_eq(&first, &second));
        assert!(first.instruction_count() > 0);
    }

    #[test]
    fn printf_return_value_counts_all_bytes_past_capture_limit() {
        let program = compile(
            "#include <stdio.h>\nint main() { int n = 0; for (int i = 0; i < 10; i++) { n += printf(\"0123456789\"); } return n == 100 ? 0 : 1; }",
            DirectiveModel::OpenAcc,
        );
        let exec = Executor::new(ExecConfig {
            capture_limit: 32,
            ..Default::default()
        });
        let out = exec.run(&program);
        assert_eq!(out.return_code, 0, "stdout: {}", out.stdout);
        assert_eq!(out.stdout.len(), 32);
    }
}
