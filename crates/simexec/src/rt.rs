//! Shared runtime semantics.
//!
//! Everything in here is *the* definition of what an operation means at
//! runtime: binary/unary operator application, type coercion, deterministic
//! garbage for uninitialized reads, host/device memory access with the
//! present-table rules, and C `printf` formatting with capture limits.
//!
//! Both execution engines — the register-bytecode VM in [`crate::bytecode`]
//! and the tree-walking reference interpreter behind the
//! `treewalk-reference` feature — call these functions, so the differential
//! law "bytecode VM ≡ tree-walk oracle, byte for byte" holds by
//! construction for every per-operation semantic and can only be broken by
//! control-flow or step-accounting differences (which `tests/exec_parity.rs`
//! covers at corpus scale).

use std::fmt;

use crate::memory::{DeviceSpace, HostSpace, MapKind, MemoryError};
use crate::outcome::RuntimeFault;
use crate::value::Value;
use vv_dclang::{BinOp, Type};

/// Early termination of an interpreted program.
pub(crate) enum Stop {
    /// `exit(code)` / `abort()`.
    Exit(i32),
    /// A runtime fault (segfault, divide-by-zero, step limit, ...).
    Fault(RuntimeFault),
}

pub(crate) type EResult<T> = Result<T, Stop>;

/// Convert a memory error into the fault the shell would report.
pub(crate) fn fault_from(err: MemoryError) -> Stop {
    let _ = &err;
    Stop::Fault(RuntimeFault::Segfault)
}

/// Deterministic "garbage" for uninitialized reads: large, odd values that
/// will never match a correctly computed result.
#[inline]
pub(crate) fn garbage(salt: u64) -> Value {
    let mixed = salt
        .wrapping_mul(0x9E3779B97F4A7C15)
        .rotate_left(31)
        .wrapping_add(0xDEADBEEF);
    Value::Float(((mixed % 100_000) as f64) * 1.0e9 + 0.731)
}

/// The garbage salt for reading an uninitialized variable as an rvalue.
pub(crate) fn eval_salt(name: &str) -> u64 {
    name.bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64))
}

/// The garbage salt for reading a variable through a place (compound
/// assignment, increment/decrement).
pub(crate) fn place_salt(name: &str) -> u64 {
    name.bytes()
        .fold(7u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64))
}

/// The garbage salt for reading an uninitialized memory cell.
pub(crate) fn mem_salt(alloc: usize, offset: i64) -> u64 {
    ((alloc as u64) << 20) | (offset as u64 & 0xFFFFF)
}

/// Unary negation (`-x`).
pub(crate) fn unary_neg(v: Value) -> Value {
    match v {
        Value::Int(i) => Value::Int(i.wrapping_neg()),
        other => Value::Float(-other.as_f64()),
    }
}

/// Logical not (`!x`).
pub(crate) fn unary_not(v: &Value) -> Value {
    Value::Int(if v.truthy() { 0 } else { 1 })
}

/// Bitwise not (`~x`).
pub(crate) fn unary_bitnot(v: &Value) -> Value {
    Value::Int(!v.as_i64())
}

/// `|x|` for the `abs`/`labs` builtins.
pub(crate) fn int_abs(v: i64) -> i64 {
    v.wrapping_abs()
}

pub(crate) fn int_bitop(op: BinOp, a: i64, b: i64) -> i64 {
    match op {
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::BitXor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32),
        BinOp::Shr => a.wrapping_shr(b as u32),
        _ => unreachable!(),
    }
}

/// [`apply_binop`] over borrowed operands: the numeric fast paths (the hot
/// loop bodies — counters, comparisons, accumulators) avoid cloning the
/// operands out of the VM's register file; everything else defers to the
/// owned implementation. Semantically identical to [`apply_binop`].
#[inline]
pub(crate) fn apply_binop_ref(op: BinOp, l: &Value, r: &Value) -> Result<Value, RuntimeFault> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let (a, b) = (*a, *b);
            if op.is_comparison() {
                let result = match op {
                    BinOp::Eq => a == b,
                    BinOp::Ne => a != b,
                    BinOp::Lt => a < b,
                    BinOp::Gt => a > b,
                    BinOp::Le => a <= b,
                    BinOp::Ge => a >= b,
                    _ => unreachable!(),
                };
                return Ok(Value::Int(result as i64));
            }
            let v = match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(RuntimeFault::DivideByZero);
                    }
                    a.wrapping_div(b)
                }
                BinOp::Rem => {
                    if b == 0 {
                        return Err(RuntimeFault::DivideByZero);
                    }
                    a.wrapping_rem(b)
                }
                BinOp::And | BinOp::Or => unreachable!("short-circuit handled earlier"),
                BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor | BinOp::Shl | BinOp::Shr => {
                    int_bitop(op, a, b)
                }
                _ => unreachable!(),
            };
            Ok(Value::Int(v))
        }
        (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
            // Mixed numeric operands promote to float, exactly as the
            // owned implementation's float mode.
            let (a, b) = (l.as_f64(), r.as_f64());
            if op.is_comparison() {
                let result = match op {
                    BinOp::Eq => a == b,
                    BinOp::Ne => a != b,
                    BinOp::Lt => a < b,
                    BinOp::Gt => a > b,
                    BinOp::Le => a <= b,
                    BinOp::Ge => a >= b,
                    _ => unreachable!(),
                };
                return Ok(Value::Int(result as i64));
            }
            let v = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Rem => a % b,
                BinOp::And | BinOp::Or => unreachable!("short-circuit handled earlier"),
                BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor | BinOp::Shl | BinOp::Shr => {
                    return Ok(Value::Int(int_bitop(op, a as i64, b as i64)))
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(v))
        }
        _ => apply_binop(op, l.clone(), r.clone()),
    }
}

/// Apply a (non-short-circuit) binary operator per the simulated C
/// semantics: pointer arithmetic, float promotion, wrapping integers,
/// divide-by-zero faults.
pub(crate) fn apply_binop(op: BinOp, l: Value, r: Value) -> Result<Value, RuntimeFault> {
    // Pointer arithmetic.
    if let Value::Ptr { alloc, offset } = &l {
        match op {
            BinOp::Add => {
                return Ok(Value::Ptr {
                    alloc: *alloc,
                    offset: offset.wrapping_add(r.as_i64()),
                })
            }
            BinOp::Sub => {
                if let Value::Ptr {
                    alloc: ra,
                    offset: ro,
                } = &r
                {
                    if ra == alloc {
                        return Ok(Value::Int(offset.wrapping_sub(*ro)));
                    }
                }
                return Ok(Value::Ptr {
                    alloc: *alloc,
                    offset: offset.wrapping_sub(r.as_i64()),
                });
            }
            BinOp::Eq | BinOp::Ne => {
                let equal = matches!(&r, Value::Ptr { alloc: ra, offset: ro } if ra == alloc && ro == offset);
                let result = if op == BinOp::Eq { equal } else { !equal };
                return Ok(Value::Int(result as i64));
            }
            _ => {}
        }
    }
    if let (Value::Ptr { alloc, offset }, BinOp::Add) = (&r, op) {
        return Ok(Value::Ptr {
            alloc: *alloc,
            offset: offset.wrapping_add(l.as_i64()),
        });
    }

    let float_mode = l.is_float() || r.is_float() || l.is_uninit() || r.is_uninit();
    if op.is_comparison() {
        let result = if float_mode {
            let (a, b) = (l.as_f64(), r.as_f64());
            match op {
                BinOp::Eq => a == b,
                BinOp::Ne => a != b,
                BinOp::Lt => a < b,
                BinOp::Gt => a > b,
                BinOp::Le => a <= b,
                BinOp::Ge => a >= b,
                _ => unreachable!(),
            }
        } else {
            let (a, b) = (l.as_i64(), r.as_i64());
            match op {
                BinOp::Eq => a == b,
                BinOp::Ne => a != b,
                BinOp::Lt => a < b,
                BinOp::Gt => a > b,
                BinOp::Le => a <= b,
                BinOp::Ge => a >= b,
                _ => unreachable!(),
            }
        };
        return Ok(Value::Int(result as i64));
    }

    if float_mode {
        let (a, b) = (l.as_f64(), r.as_f64());
        let v = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Rem => a % b,
            BinOp::And | BinOp::Or => unreachable!("short-circuit handled earlier"),
            BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor | BinOp::Shl | BinOp::Shr => {
                return Ok(Value::Int(int_bitop(op, a as i64, b as i64)))
            }
            _ => unreachable!(),
        };
        Ok(Value::Float(v))
    } else {
        let (a, b) = (l.as_i64(), r.as_i64());
        let v = match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return Err(RuntimeFault::DivideByZero);
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return Err(RuntimeFault::DivideByZero);
                }
                a.wrapping_rem(b)
            }
            BinOp::And | BinOp::Or => unreachable!("short-circuit handled earlier"),
            BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor | BinOp::Shl | BinOp::Shr => {
                int_bitop(op, a, b)
            }
            _ => unreachable!(),
        };
        Ok(Value::Int(v))
    }
}

/// How a declared type coerces an assigned value. `None` means the value is
/// kept as-is (pointers, `void`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoerceKind {
    /// Widen to `f64`.
    ToFloat,
    /// Narrow to the integer lattice (`Uninit` and pointers pass through).
    ToInt,
}

/// The coercion a declared type applies, resolvable at lowering time.
pub(crate) fn coerce_kind(ty: &Type) -> Option<CoerceKind> {
    use vv_dclang::BaseType;
    if ty.is_pointer() {
        return None;
    }
    match ty.base {
        BaseType::Float | BaseType::Double => Some(CoerceKind::ToFloat),
        BaseType::Int | BaseType::Long | BaseType::Char => Some(CoerceKind::ToInt),
        BaseType::Void => None,
    }
}

/// Apply a coercion to a value.
pub(crate) fn apply_coerce(kind: CoerceKind, value: Value) -> Value {
    match kind {
        CoerceKind::ToFloat => Value::Float(value.as_f64()),
        CoerceKind::ToInt => match value {
            Value::Uninit => Value::Uninit,
            Value::Ptr { .. } => value,
            other => Value::Int(other.as_i64()),
        },
    }
}

/// Coerce a value to a declared type (used by the tree-walk oracle; the VM
/// pre-resolves the coercion at lowering time via [`coerce_kind`]).
#[cfg(feature = "treewalk-reference")]
pub(crate) fn coerce(ty: &Type, value: Value) -> Value {
    match coerce_kind(ty) {
        Some(kind) => apply_coerce(kind, value),
        None => value,
    }
}

/// The device mapping implied by a `map(...)` clause argument prefix.
pub(crate) fn map_kind_for(args: &str) -> MapKind {
    let prefix = args.split(':').next().unwrap_or("").trim();
    match prefix {
        "to" | "always to" => MapKind::ToDevice,
        "from" | "always from" => MapKind::FromDevice,
        "tofrom" | "always tofrom" => MapKind::Both,
        "alloc" => MapKind::AllocOnly,
        _ => MapKind::Both,
    }
}

/// Read one memory cell, consulting the device copy while inside an offload
/// region, and converting uninitialized cells to deterministic garbage.
#[inline]
pub(crate) fn read_mem(
    host: &HostSpace,
    device: &DeviceSpace,
    offloaded: bool,
    alloc: usize,
    offset: i64,
) -> EResult<Value> {
    let value = if offloaded {
        match device.try_read_ref(alloc, offset) {
            Some(result) => result.map_err(fault_from)?,
            None => host.read_ref(alloc, offset).map_err(fault_from)?,
        }
    } else {
        host.read_ref(alloc, offset).map_err(fault_from)?
    };
    if value.is_uninit() {
        Ok(garbage(mem_salt(alloc, offset)))
    } else {
        Ok(value.clone())
    }
}

/// Write one memory cell, honouring the present table while offloaded.
#[inline]
pub(crate) fn write_mem(
    host: &mut HostSpace,
    device: &mut DeviceSpace,
    offloaded: bool,
    alloc: usize,
    offset: i64,
    value: Value,
) -> EResult<()> {
    // `is_present` is a dense-vector index, so the check-then-write pair
    // costs one extra bounds check, not a second hash lookup.
    if offloaded && device.is_present(alloc) {
        device.write(alloc, offset, value).map_err(fault_from)
    } else {
        host.write(alloc, offset, value).map_err(fault_from)
    }
}

// ---------------------------------------------------------------------------
// capture buffers and printf formatting
// ---------------------------------------------------------------------------

/// A `fmt::Write` sink that appends to a capture buffer, enforcing the
/// capture limit *during* formatting (never materializing text past the
/// limit) while still counting the total bytes the program "wrote" — which
/// is what `printf`'s return value reports.
pub(crate) struct LimitedWriter<'a> {
    buf: &'a mut String,
    limit: usize,
    total: usize,
}

impl<'a> LimitedWriter<'a> {
    pub(crate) fn new(buf: &'a mut String, limit: usize) -> Self {
        Self {
            buf,
            limit,
            total: 0,
        }
    }

    /// Bytes written by the program (including any dropped past the limit).
    pub(crate) fn total(&self) -> usize {
        self.total
    }
}

impl fmt::Write for LimitedWriter<'_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.total += s.len();
        if self.buf.len() < self.limit {
            let room = self.limit - self.buf.len();
            if s.len() <= room {
                self.buf.push_str(s);
            } else {
                let mut end = room;
                while !s.is_char_boundary(end) {
                    end -= 1;
                }
                self.buf.push_str(&s[..end]);
            }
        }
        Ok(())
    }
}

const PRINTF_DEFAULT: Value = Value::Int(0);

/// Minimal C `printf` formatting, written directly into `w` — no
/// per-conversion `String` allocations. Width and flags are accepted but
/// ignored (as the corpus expects); precision applies to `%f`.
pub(crate) fn write_c_format<W: fmt::Write>(w: &mut W, fmt: &str, values: &[Value]) -> fmt::Result {
    let mut chars = fmt.char_indices().peekable();
    let mut arg_index = 0usize;
    while let Some((_, c)) = chars.next() {
        if c != '%' {
            w.write_char(c)?;
            continue;
        }
        // Collect flags / width / precision / length modifiers, tracking
        // only the precision (the digits after the first '.').
        let spec_start = chars.peek().map(|&(i, _)| i).unwrap_or(fmt.len());
        let mut spec_end = spec_start;
        let mut conversion = None;
        let mut seen_dot = false;
        let mut collecting_precision = false;
        let mut precision: Option<usize> = None;
        while let Some(&(i, next)) = chars.peek() {
            if next.is_ascii_digit()
                || matches!(next, '-' | '+' | ' ' | '.' | '#' | '*' | 'l' | 'h' | 'z')
            {
                if next == '.' {
                    if !seen_dot {
                        seen_dot = true;
                        collecting_precision = true;
                    } else {
                        collecting_precision = false;
                    }
                } else if collecting_precision {
                    if let Some(d) = next.to_digit(10) {
                        precision = Some(precision.unwrap_or(0) * 10 + d as usize);
                    } else {
                        collecting_precision = false;
                    }
                }
                spec_end = i + next.len_utf8();
                chars.next();
            } else {
                conversion = Some(next);
                chars.next();
                break;
            }
        }
        let Some(conv) = conversion else {
            w.write_char('%')?;
            w.write_str(&fmt[spec_start..spec_end])?;
            break;
        };
        if conv == '%' {
            w.write_char('%')?;
            continue;
        }
        let value = values.get(arg_index).unwrap_or(&PRINTF_DEFAULT);
        arg_index += 1;
        match conv {
            'd' | 'i' | 'u' => write!(w, "{}", value.as_i64())?,
            'x' => write!(w, "{:x}", value.as_i64())?,
            'c' => w.write_char(char::from_u32(value.as_i64() as u32).unwrap_or('?'))?,
            'f' | 'F' => write!(w, "{:.*}", precision.unwrap_or(6), value.as_f64())?,
            'e' | 'E' => write!(w, "{:e}", value.as_f64())?,
            'g' | 'G' => write!(w, "{}", value.as_f64())?,
            's' | 'p' => write!(w, "{value}")?,
            other => {
                w.write_char('%')?;
                w.write_char(other)?;
            }
        }
    }
    Ok(())
}

/// Minimal C `printf` formatting into a fresh `String` (no capture limit).
///
/// Kept as the allocation-friendly entry point for tests and callers that
/// want the full text; the interpreters format straight into their capped
/// capture buffers through `write_c_format`.
pub fn format_c_string(fmt: &str, values: &[Value]) -> String {
    let mut out = String::with_capacity(fmt.len() + 16);
    let _ = write_c_format(&mut out, fmt, values);
    out
}

/// Write a value the way `puts`/`strcmp` see it: string contents for
/// strings, `Display` for everything else.
pub(crate) fn write_value_text<W: fmt::Write>(w: &mut W, value: &Value) -> fmt::Result {
    match value {
        Value::Str(s) => w.write_str(s),
        other => write!(w, "{other}"),
    }
}

/// The textual form a value takes as a string argument (`strcmp`).
pub(crate) fn value_text(value: &Value) -> String {
    match value {
        Value::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

/// `printf` semantics over already-evaluated values: format `values[1..]`
/// against the format string in `values[0]`, writing straight into the
/// capped capture buffer. Returns the total byte count the program
/// "printed" — the `printf` return value, limit or not.
pub(crate) fn write_formatted(buf: &mut String, limit: usize, values: &[Value]) -> usize {
    let Some(first) = values.first() else {
        return 0;
    };
    let owned;
    let fmt: &str = match first {
        Value::Str(s) => s,
        other => {
            owned = other.to_string();
            &owned
        }
    };
    let mut w = LimitedWriter::new(buf, limit);
    let _ = write_c_format(&mut w, fmt, &values[1..]);
    w.total()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt::Write as _;

    #[test]
    fn format_c_string_specifiers() {
        assert_eq!(
            format_c_string(
                "i=%d f=%.2f s=%s %%",
                &[Value::Int(3), Value::Float(1.5), Value::Str("ok".into())]
            ),
            "i=3 f=1.50 s=ok %"
        );
        assert_eq!(format_c_string("%ld", &[Value::Int(-9)]), "-9");
        assert_eq!(format_c_string("no args %d", &[]), "no args 0");
        assert_eq!(format_c_string("hex %x", &[Value::Int(255)]), "hex ff");
        assert_eq!(format_c_string("trailing %", &[]), "trailing %");
        assert_eq!(format_c_string("%q", &[Value::Int(1)]), "%q");
    }

    #[test]
    fn limited_writer_respects_capture_limit_but_counts_total() {
        let mut buf = String::new();
        let mut w = LimitedWriter::new(&mut buf, 8);
        w.write_str("0123456").unwrap();
        w.write_str("789abc").unwrap();
        w.write_str("xyz").unwrap();
        assert_eq!(buf, "01234567");
        // total counts every byte the program wrote, not just the capture.
        let mut buf2 = String::new();
        let mut w2 = LimitedWriter::new(&mut buf2, 4);
        w2.write_str("abcdef").unwrap();
        assert_eq!(w2.total(), 6);
        assert_eq!(buf2, "abcd");
    }

    #[test]
    fn limited_writer_truncates_on_char_boundary() {
        let mut buf = String::new();
        let mut w = LimitedWriter::new(&mut buf, 4);
        w.write_str("aé€").unwrap(); // 1 + 2 + 3 bytes
        assert_eq!(buf, "aé"); // the euro sign would split at byte 4
    }

    #[test]
    fn binop_divide_by_zero_faults() {
        assert_eq!(
            apply_binop(BinOp::Div, Value::Int(4), Value::Int(0)),
            Err(RuntimeFault::DivideByZero)
        );
        assert_eq!(
            apply_binop(BinOp::Add, Value::Int(4), Value::Int(5)),
            Ok(Value::Int(9))
        );
    }

    #[test]
    fn pointer_difference_same_allocation() {
        let a = Value::Ptr {
            alloc: 3,
            offset: 10,
        };
        let b = Value::Ptr {
            alloc: 3,
            offset: 4,
        };
        assert_eq!(apply_binop(BinOp::Sub, a, b), Ok(Value::Int(6)));
    }

    #[test]
    fn garbage_is_deterministic_and_salted() {
        assert_eq!(garbage(1), garbage(1));
        assert_ne!(garbage(1), garbage(2));
        assert_ne!(eval_salt("x"), place_salt("x"));
    }
}
