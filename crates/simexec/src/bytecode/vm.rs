//! The register VM: a tight dispatch loop over the lowered instruction
//! stream.
//!
//! All per-operation semantics route through `crate::rt`, shared with the
//! tree-walk oracle. The frame model is two growable stacks — a register
//! stack and a slot stack — windows of which are handed to each call frame,
//! so after warm-up the per-call cost is a `resize`/`truncate` pair with no
//! fresh allocation, and the per-instruction path allocates nothing.

use std::fmt::Write as _;

use super::{BuiltinOp, CompiledProgram, FuncCode, Instr, VarRef};
use crate::interp::ExecConfig;
use crate::memory::{DeviceSpace, HostSpace};
use crate::outcome::{ExecOutcome, RuntimeFault};
use crate::rt::{self, EResult, LimitedWriter, Stop};
use crate::value::Value;
use vv_dclang::BinOp;

/// Execute a lowered program under the given limits.
pub(crate) fn run_lowered(prog: &CompiledProgram, config: &ExecConfig) -> ExecOutcome {
    Vm::new(config).run(prog)
}

/// A local slot's runtime state.
#[derive(Clone, Debug)]
enum Slot {
    /// Never bound: rvalue reads segfault, place reads give garbage.
    Unbound,
    /// A parameter left unbound by a missing call argument, aliasing the
    /// same-named global (the oracle's dynamic lookup falls through to it).
    Alias(u16),
    /// A bound value (`Uninit` counts as bound).
    Bound(Value),
}

struct Vm<'c> {
    config: &'c ExecConfig,
    host: HostSpace,
    device: DeviceSpace,
    globals: Vec<Option<Value>>,
    regs: Vec<Value>,
    slots: Vec<Slot>,
    /// Open compute/offload regions (directive indices), for fault/exit
    /// unwinding — the oracle applies a compute region's exit clauses even
    /// when the body stops early.
    compute_regions: Vec<u32>,
    stdout: String,
    stderr: String,
    steps: u64,
    call_depth: usize,
    offload_depth: usize,
    rng_state: u64,
}

impl<'c> Vm<'c> {
    fn new(config: &'c ExecConfig) -> Self {
        Self {
            config,
            host: HostSpace::new(),
            device: DeviceSpace::new(),
            globals: Vec::new(),
            regs: Vec::new(),
            slots: Vec::new(),
            compute_regions: Vec::new(),
            stdout: String::new(),
            stderr: String::new(),
            steps: 0,
            call_depth: 0,
            offload_depth: 0,
            rng_state: 0x9E3779B97F4A7C15,
        }
    }

    fn run(mut self, prog: &CompiledProgram) -> ExecOutcome {
        let result = self.run_inner(prog);
        let (return_code, fault) = match result {
            Ok(code) => (code, None),
            Err(Stop::Exit(code)) => (code, None),
            Err(Stop::Fault(fault)) => {
                // Fault banners bypass the capture limit, like the shell's.
                self.stderr.push_str(fault.message());
                self.stderr.push('\n');
                (fault.exit_code(), Some(fault))
            }
        };
        ExecOutcome {
            return_code,
            stdout: std::mem::take(&mut self.stdout),
            stderr: std::mem::take(&mut self.stderr),
            fault,
            steps: self.steps,
        }
    }

    fn run_inner(&mut self, prog: &CompiledProgram) -> EResult<i32> {
        self.globals = vec![None; prog.global_meta.len()];
        self.exec_toplevel(prog)?;
        let Some(main) = prog.main else {
            return Err(Stop::Fault(RuntimeFault::Unsupported));
        };
        let result = self.call(prog, main as usize, 0, 0, 0)?;
        Ok((result.as_i64() & 0xFF) as i32)
    }

    /// Run the global-initializer code (not a call: no depth accounting).
    fn exec_toplevel(&mut self, prog: &CompiledProgram) -> EResult<()> {
        let f = &prog.global_init;
        let (rb, sb) = self.push_frame(f);
        let result = self.exec(prog, f, rb, sb);
        self.pop_frame(rb, sb);
        result.map(|_| ())
    }

    fn push_frame(&mut self, f: &FuncCode) -> (usize, usize) {
        let sb = self.slots.len();
        self.slots
            .resize_with(sb + f.slots as usize, || Slot::Unbound);
        let rb = self.regs.len();
        self.regs.resize(rb + f.regs as usize, Value::Int(0));
        (rb, sb)
    }

    fn pop_frame(&mut self, rb: usize, sb: usize) {
        self.regs.truncate(rb);
        self.slots.truncate(sb);
    }

    fn call(
        &mut self,
        prog: &CompiledProgram,
        fidx: usize,
        caller_rb: usize,
        args: usize,
        argc: usize,
    ) -> EResult<Value> {
        if self.call_depth >= self.config.max_call_depth {
            return Err(Stop::Fault(RuntimeFault::StackOverflow));
        }
        self.call_depth += 1;
        let f = &prog.funcs[fidx];
        let sb = self.slots.len();
        self.slots
            .resize_with(sb + f.slots as usize, || Slot::Unbound);
        for (i, param) in f.params.iter().enumerate() {
            self.slots[sb + param.slot as usize] = if i < argc {
                let v = self.regs[caller_rb + args + i].clone();
                Slot::Bound(match param.coerce {
                    Some(kind) => rt::apply_coerce(kind, v),
                    None => v,
                })
            } else if let Some(g) = param.global_fallback {
                // The oracle never binds a missing argument's parameter, so
                // its dynamic lookup reaches the same-named global.
                Slot::Alias(g)
            } else {
                Slot::Unbound
            };
        }
        let rb = self.regs.len();
        self.regs.resize(rb + f.regs as usize, Value::Int(0));
        let result = self.exec(prog, f, rb, sb);
        self.pop_frame(rb, sb);
        self.call_depth -= 1;
        result
    }

    /// Execute one frame; on early termination, unwind any compute regions
    /// this frame opened (offload depth + exit clauses), letting an exit
    /// fault replace the original stop — exactly the oracle's `Flow`
    /// propagation through `exec_directive`.
    fn exec(
        &mut self,
        prog: &CompiledProgram,
        f: &FuncCode,
        rb: usize,
        sb: usize,
    ) -> EResult<Value> {
        let region_base = self.compute_regions.len();
        let mut result = self.exec_inner(prog, f, rb, sb);
        if result.is_err() {
            while self.compute_regions.len() > region_base {
                let dir = self.compute_regions.pop().expect("open region");
                self.offload_depth -= 1;
                if let Err(err) = self.apply_exit_clauses(prog, sb, dir) {
                    result = Err(err);
                }
            }
        }
        result
    }

    #[allow(clippy::too_many_lines)]
    fn exec_inner(
        &mut self,
        prog: &CompiledProgram,
        f: &FuncCode,
        rb: usize,
        sb: usize,
    ) -> EResult<Value> {
        let code = &f.code;
        let mut pc = 0usize;
        loop {
            let instr = code[pc];
            pc += 1;
            match instr {
                Instr::Step(n) => {
                    self.steps += n as u64;
                    if self.steps > self.config.step_limit {
                        // The oracle charges one step at a time and stops
                        // the instant the limit is exceeded; clamp the
                        // coalesced charge to the same observable count.
                        self.steps = self.config.step_limit + 1;
                        return Err(Stop::Fault(RuntimeFault::StepLimit));
                    }
                }
                Instr::Const { dst, idx } => {
                    self.regs[rb + dst as usize] = prog.consts[idx as usize].clone();
                }
                Instr::LoadVar { dst, var } => {
                    let v = self.load_var(prog, f, sb, var)?;
                    self.regs[rb + dst as usize] = v;
                }
                Instr::ReadVarPlace { dst, var } => {
                    let v = self.read_var_place(prog, f, sb, var);
                    self.regs[rb + dst as usize] = v;
                }
                Instr::StoreVar { var, src } => {
                    let v = self.regs[rb + src as usize].clone();
                    self.store_var(sb, var, v);
                }
                Instr::BindUninit { var } => {
                    self.store_var(sb, var, Value::Uninit);
                }
                Instr::IncVar { var, delta } => {
                    // Fast path for the dominant loop-counter shape; the
                    // general path mirrors place-read + add + store exactly.
                    if let VarRef::Local(s) = var {
                        if let Slot::Bound(Value::Int(i)) = &mut self.slots[sb + s as usize] {
                            *i = i.wrapping_add(delta);
                            continue;
                        }
                    }
                    let old = self.read_var_place(prog, f, sb, var);
                    let new =
                        rt::apply_binop(BinOp::Add, old, Value::Int(delta)).map_err(Stop::Fault)?;
                    self.store_var(sb, var, new);
                }
                Instr::AccumVar { op, var, src } => {
                    let old = self.read_var_place(prog, f, sb, var);
                    let new = rt::apply_binop_ref(op, &old, &self.regs[rb + src as usize])
                        .map_err(Stop::Fault)?;
                    self.store_var(sb, var, new);
                }
                Instr::Coerce { reg, kind } => {
                    let i = rb + reg as usize;
                    let v = std::mem::replace(&mut self.regs[i], Value::Int(0));
                    self.regs[i] = rt::apply_coerce(kind, v);
                }
                Instr::Neg { dst, src } => {
                    let i = rb + src as usize;
                    let v = std::mem::replace(&mut self.regs[i], Value::Int(0));
                    self.regs[rb + dst as usize] = rt::unary_neg(v);
                }
                Instr::Not { dst, src } => {
                    self.regs[rb + dst as usize] = rt::unary_not(&self.regs[rb + src as usize]);
                }
                Instr::BitNot { dst, src } => {
                    self.regs[rb + dst as usize] = rt::unary_bitnot(&self.regs[rb + src as usize]);
                }
                Instr::Truthy { dst, src } => {
                    let t = self.regs[rb + src as usize].truthy();
                    self.regs[rb + dst as usize] = Value::Int(if t { 1 } else { 0 });
                }
                Instr::Bin { op, dst, lhs, rhs } => {
                    let v = rt::apply_binop_ref(
                        op,
                        &self.regs[rb + lhs as usize],
                        &self.regs[rb + rhs as usize],
                    )
                    .map_err(Stop::Fault)?;
                    self.regs[rb + dst as usize] = v;
                }
                Instr::BinVC { op, dst, var, idx } => {
                    let l = self.load_var(prog, f, sb, var)?;
                    let v = rt::apply_binop_ref(op, &l, &prog.consts[idx as usize])
                        .map_err(Stop::Fault)?;
                    self.regs[rb + dst as usize] = v;
                }
                Instr::BinVV { op, dst, lhs, rhs } => {
                    let l = self.load_var(prog, f, sb, lhs)?;
                    let r = self.load_var(prog, f, sb, rhs)?;
                    let v = rt::apply_binop_ref(op, &l, &r).map_err(Stop::Fault)?;
                    self.regs[rb + dst as usize] = v;
                }
                Instr::BinRC { op, dst, lhs, idx } => {
                    let v = rt::apply_binop_ref(
                        op,
                        &self.regs[rb + lhs as usize],
                        &prog.consts[idx as usize],
                    )
                    .map_err(Stop::Fault)?;
                    self.regs[rb + dst as usize] = v;
                }
                Instr::AddrOf { dst, src } => {
                    let v = self.regs[rb + src as usize].clone();
                    let alloc = self.host.alloc_init(1, v);
                    self.regs[rb + dst as usize] = Value::Ptr { alloc, offset: 0 };
                }
                Instr::IndexRead { dst, base, idx } => {
                    let index = self.regs[rb + idx as usize].as_i64();
                    let Value::Ptr { alloc, offset } = self.regs[rb + base as usize] else {
                        return Err(Stop::Fault(RuntimeFault::Segfault));
                    };
                    let v = rt::read_mem(
                        &self.host,
                        &self.device,
                        self.offload_depth > 0,
                        alloc,
                        offset + index,
                    )?;
                    self.regs[rb + dst as usize] = v;
                }
                Instr::IndexWrite { base, idx, src } => {
                    let index = self.regs[rb + idx as usize].as_i64();
                    let Value::Ptr { alloc, offset } = self.regs[rb + base as usize] else {
                        return Err(Stop::Fault(RuntimeFault::Segfault));
                    };
                    let v = self.regs[rb + src as usize].clone();
                    rt::write_mem(
                        &mut self.host,
                        &mut self.device,
                        self.offload_depth > 0,
                        alloc,
                        offset + index,
                        v,
                    )?;
                }
                Instr::IndexReadVV { dst, base, idx } => {
                    // Mirrors the oracle's `resolve_place`: base evaluated
                    // first, index coerced to i64, then the pointer check.
                    let base_v = self.load_var(prog, f, sb, base)?;
                    let index = self.load_var(prog, f, sb, idx)?.as_i64();
                    let Value::Ptr { alloc, offset } = base_v else {
                        return Err(Stop::Fault(RuntimeFault::Segfault));
                    };
                    let v = rt::read_mem(
                        &self.host,
                        &self.device,
                        self.offload_depth > 0,
                        alloc,
                        offset + index,
                    )?;
                    self.regs[rb + dst as usize] = v;
                }
                Instr::IndexWriteVV { base, idx, src } => {
                    let base_v = self.load_var(prog, f, sb, base)?;
                    let index = self.load_var(prog, f, sb, idx)?.as_i64();
                    let Value::Ptr { alloc, offset } = base_v else {
                        return Err(Stop::Fault(RuntimeFault::Segfault));
                    };
                    let v = self.regs[rb + src as usize].clone();
                    rt::write_mem(
                        &mut self.host,
                        &mut self.device,
                        self.offload_depth > 0,
                        alloc,
                        offset + index,
                        v,
                    )?;
                }
                Instr::DerefRead { dst, ptr } => {
                    let Value::Ptr { alloc, offset } = self.regs[rb + ptr as usize] else {
                        return Err(Stop::Fault(RuntimeFault::Segfault));
                    };
                    let v = rt::read_mem(
                        &self.host,
                        &self.device,
                        self.offload_depth > 0,
                        alloc,
                        offset,
                    )?;
                    self.regs[rb + dst as usize] = v;
                }
                Instr::DerefWrite { ptr, src } => {
                    let Value::Ptr { alloc, offset } = self.regs[rb + ptr as usize] else {
                        return Err(Stop::Fault(RuntimeFault::Segfault));
                    };
                    let v = self.regs[rb + src as usize].clone();
                    rt::write_mem(
                        &mut self.host,
                        &mut self.device,
                        self.offload_depth > 0,
                        alloc,
                        offset,
                        v,
                    )?;
                }
                Instr::ArrayAlloc { dst, dims, ndims } => {
                    let mut total: i64 = 1;
                    for k in 0..ndims as usize {
                        let v = self.regs[rb + dims as usize + k].as_i64();
                        total = total.saturating_mul(v.max(0));
                    }
                    let total = total.clamp(0, 4_000_000) as usize;
                    let alloc = self.host.alloc(total);
                    self.regs[rb + dst as usize] = Value::Ptr { alloc, offset: 0 };
                }
                Instr::Jump { target } => pc = target as usize,
                Instr::JumpIfFalse { cond, target } => {
                    if !self.regs[rb + cond as usize].truthy() {
                        pc = target as usize;
                    }
                }
                Instr::JumpIfTrue { cond, target } => {
                    if self.regs[rb + cond as usize].truthy() {
                        pc = target as usize;
                    }
                }
                Instr::Call {
                    dst,
                    func,
                    args,
                    argc,
                } => {
                    let v = self.call(prog, func as usize, rb, args as usize, argc as usize)?;
                    self.regs[rb + dst as usize] = v;
                }
                Instr::Builtin {
                    dst,
                    op,
                    args,
                    argc,
                } => {
                    let v = self.builtin(rb, op, args as usize, argc as usize)?;
                    self.regs[rb + dst as usize] = v;
                }
                Instr::EnterData { dir } => self.apply_enter_clauses(prog, sb, dir)?,
                Instr::ExitData { dir } => self.apply_exit_clauses(prog, sb, dir)?,
                Instr::UpdateData { dir } => self.apply_update_clauses(prog, sb, dir)?,
                Instr::EnterCompute { dir } => {
                    // Enter-clause faults propagate without the region ever
                    // opening (no offload raise, no exit on unwind) — the
                    // oracle's `apply_data_clauses(Enter)?`.
                    self.apply_enter_clauses(prog, sb, dir)?;
                    self.offload_depth += 1;
                    self.compute_regions.push(dir);
                }
                Instr::ExitCompute { dir } => {
                    let opened = self.compute_regions.pop();
                    debug_assert_eq!(opened, Some(dir), "balanced compute regions");
                    self.offload_depth -= 1;
                    self.apply_exit_clauses(prog, sb, dir)?;
                }
                Instr::Ret { src } => return Ok(self.regs[rb + src as usize].clone()),
                Instr::Trap { fault } => return Err(Stop::Fault(fault)),
            }
        }
    }

    #[inline]
    fn load_global(&self, prog: &CompiledProgram, g: u16) -> EResult<Value> {
        match &self.globals[g as usize] {
            None => Err(Stop::Fault(RuntimeFault::Segfault)),
            Some(Value::Uninit) => Ok(rt::garbage(prog.global_meta[g as usize].eval_salt)),
            Some(v) => Ok(v.clone()),
        }
    }

    #[inline]
    fn load_var(
        &self,
        prog: &CompiledProgram,
        f: &FuncCode,
        sb: usize,
        var: VarRef,
    ) -> EResult<Value> {
        match var {
            VarRef::Local(s) => match &self.slots[sb + s as usize] {
                Slot::Unbound => Err(Stop::Fault(RuntimeFault::Segfault)),
                Slot::Alias(g) => self.load_global(prog, *g),
                Slot::Bound(Value::Uninit) => Ok(rt::garbage(f.slot_meta[s as usize].eval_salt)),
                Slot::Bound(v) => Ok(v.clone()),
            },
            VarRef::Global(g) => self.load_global(prog, g),
        }
    }

    #[inline]
    fn read_global_place(&self, prog: &CompiledProgram, g: u16) -> Value {
        match &self.globals[g as usize] {
            None | Some(Value::Uninit) => rt::garbage(prog.global_meta[g as usize].place_salt),
            Some(v) => v.clone(),
        }
    }

    #[inline]
    fn read_var_place(
        &self,
        prog: &CompiledProgram,
        f: &FuncCode,
        sb: usize,
        var: VarRef,
    ) -> Value {
        match var {
            VarRef::Local(s) => match &self.slots[sb + s as usize] {
                Slot::Unbound => rt::garbage(f.slot_meta[s as usize].place_salt),
                Slot::Alias(g) => self.read_global_place(prog, *g),
                Slot::Bound(Value::Uninit) => rt::garbage(f.slot_meta[s as usize].place_salt),
                Slot::Bound(v) => v.clone(),
            },
            VarRef::Global(g) => self.read_global_place(prog, g),
        }
    }

    #[inline]
    fn store_var(&mut self, sb: usize, var: VarRef, value: Value) {
        match var {
            VarRef::Local(s) => {
                let slot = &mut self.slots[sb + s as usize];
                if let Slot::Alias(g) = slot {
                    // Assigning through an unbound parameter writes the
                    // same-named global, as the oracle's scope walk does.
                    self.globals[*g as usize] = Some(value);
                } else {
                    *slot = Slot::Bound(value);
                }
            }
            VarRef::Global(g) => self.globals[g as usize] = Some(value),
        }
    }

    /// A directive clause variable's current allocation, if its value is a
    /// pointer (anything else is firstprivate: nothing to map).
    #[inline]
    fn var_alloc(&self, sb: usize, var: VarRef) -> Option<usize> {
        let global = |g: u16| match &self.globals[g as usize] {
            Some(Value::Ptr { alloc, .. }) => Some(*alloc),
            _ => None,
        };
        match var {
            VarRef::Local(s) => match &self.slots[sb + s as usize] {
                Slot::Bound(Value::Ptr { alloc, .. }) => Some(*alloc),
                Slot::Alias(g) => global(*g),
                _ => None,
            },
            VarRef::Global(g) => global(g),
        }
    }

    fn apply_enter_clauses(&mut self, prog: &CompiledProgram, sb: usize, dir: u32) -> EResult<()> {
        let ops = &prog.directives[dir as usize];
        for (var, kind) in &ops.enter {
            if let Some(alloc) = self.var_alloc(sb, *var) {
                self.device
                    .enter(&self.host, alloc, *kind)
                    .map_err(rt::fault_from)?;
            }
        }
        Ok(())
    }

    fn apply_exit_clauses(&mut self, prog: &CompiledProgram, sb: usize, dir: u32) -> EResult<()> {
        let ops = &prog.directives[dir as usize];
        for var in &ops.exit {
            if let Some(alloc) = self.var_alloc(sb, *var) {
                self.device
                    .exit(&mut self.host, alloc)
                    .map_err(rt::fault_from)?;
            }
        }
        Ok(())
    }

    fn apply_update_clauses(&mut self, prog: &CompiledProgram, sb: usize, dir: u32) -> EResult<()> {
        let ops = &prog.directives[dir as usize];
        for (var, to_host) in &ops.update {
            if let Some(alloc) = self.var_alloc(sb, *var) {
                if *to_host {
                    self.device
                        .update_host(&mut self.host, alloc)
                        .map_err(rt::fault_from)?;
                } else {
                    self.device
                        .update_device(&self.host, alloc)
                        .map_err(rt::fault_from)?;
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn builtin(&mut self, rb: usize, op: BuiltinOp, args: usize, argc: usize) -> EResult<Value> {
        let a0 = rb + args;
        match op {
            BuiltinOp::AllocCount => {
                let count = if argc > 0 {
                    self.regs[a0].as_i64().clamp(0, 4_000_000) as usize
                } else {
                    0
                };
                let alloc = self.host.alloc(count);
                Ok(Value::Ptr { alloc, offset: 0 })
            }
            BuiltinOp::AllocBytes => {
                let bytes = if argc > 0 {
                    self.regs[a0].as_i64().clamp(0, 32_000_000)
                } else {
                    0
                };
                let alloc = self.host.alloc(((bytes + 7) / 8) as usize);
                Ok(Value::Ptr { alloc, offset: 0 })
            }
            BuiltinOp::CallocCount => {
                let count = if argc > 0 {
                    self.regs[a0].as_i64().clamp(0, 4_000_000) as usize
                } else {
                    0
                };
                let alloc = self.host.alloc_init(count, Value::Int(0));
                Ok(Value::Ptr { alloc, offset: 0 })
            }
            BuiltinOp::Free => {
                if argc > 0 {
                    if let Value::Ptr { alloc, .. } = self.regs[a0] {
                        self.host.free(alloc).map_err(rt::fault_from)?;
                    }
                }
                Ok(Value::Int(0))
            }
            BuiltinOp::Printf => {
                let values = &self.regs[a0..a0 + argc];
                let total =
                    rt::write_formatted(&mut self.stdout, self.config.capture_limit, values);
                Ok(Value::Int(total as i64))
            }
            BuiltinOp::Fprintf => {
                let values = &self.regs[a0..a0 + argc];
                let total =
                    rt::write_formatted(&mut self.stderr, self.config.capture_limit, values);
                Ok(Value::Int(total as i64))
            }
            BuiltinOp::Puts => {
                let mut w = LimitedWriter::new(&mut self.stdout, self.config.capture_limit);
                if argc > 0 {
                    let _ = rt::write_value_text(&mut w, &self.regs[a0]);
                }
                let _ = w.write_char('\n');
                let total = w.total();
                Ok(Value::Int(total as i64))
            }
            BuiltinOp::Putchar => {
                let c = if argc > 0 { self.regs[a0].as_i64() } else { 0 };
                let ch = char::from_u32(c as u32).unwrap_or('?');
                let mut w = LimitedWriter::new(&mut self.stdout, self.config.capture_limit);
                let _ = w.write_char(ch);
                let total = w.total();
                Ok(Value::Int(total as i64))
            }
            BuiltinOp::Exit => {
                let code = if argc > 0 {
                    self.regs[a0].as_i64() as i32
                } else {
                    0
                };
                Err(Stop::Exit(code))
            }
            BuiltinOp::Abort => Err(Stop::Exit(134)),
            BuiltinOp::Math(m) => {
                let v = if argc > 0 {
                    self.regs[a0].as_f64()
                } else {
                    0.0
                };
                Ok(Value::Float(m.apply(v)))
            }
            BuiltinOp::Pow => {
                let a = if argc > 0 {
                    self.regs[a0].as_f64()
                } else {
                    0.0
                };
                let b = if argc > 1 {
                    self.regs[a0 + 1].as_f64()
                } else {
                    0.0
                };
                Ok(Value::Float(a.powf(b)))
            }
            BuiltinOp::Abs => {
                let v = if argc > 0 { self.regs[a0].as_i64() } else { 0 };
                Ok(Value::Int(rt::int_abs(v)))
            }
            BuiltinOp::Rand => {
                self.rng_state ^= self.rng_state << 13;
                self.rng_state ^= self.rng_state >> 7;
                self.rng_state ^= self.rng_state << 17;
                Ok(Value::Int((self.rng_state % 2147483647) as i64))
            }
            BuiltinOp::Srand => {
                if argc > 0 {
                    let seed = self.regs[a0].as_i64() as u64;
                    self.rng_state = seed | 1;
                }
                Ok(Value::Int(0))
            }
            BuiltinOp::Memset => {
                let ptr = self.regs[a0].clone();
                let fill = self.regs[a0 + 1].clone();
                if let Value::Ptr { alloc, offset } = ptr {
                    let len = self.host.len(alloc).map_err(rt::fault_from)?;
                    for i in (offset.max(0) as usize)..len {
                        self.host
                            .write(alloc, i as i64, fill.clone())
                            .map_err(rt::fault_from)?;
                    }
                    Ok(Value::Ptr { alloc, offset })
                } else {
                    Ok(Value::Int(0))
                }
            }
            BuiltinOp::Memcpy => {
                let dst = self.regs[a0].clone();
                let src = self.regs[a0 + 1].clone();
                if let (Value::Ptr { alloc: da, .. }, Value::Ptr { alloc: sa, .. }) =
                    (dst.clone(), src)
                {
                    let data = self.host.snapshot(sa).map_err(rt::fault_from)?;
                    self.host.restore(da, data).map_err(rt::fault_from)?;
                }
                Ok(dst)
            }
            BuiltinOp::Strlen => {
                if argc == 0 {
                    return Ok(Value::Int(0));
                }
                Ok(Value::Int(match &self.regs[a0] {
                    Value::Str(s) => s.len() as i64,
                    _ => 0,
                }))
            }
            BuiltinOp::Strcmp => {
                let a = if argc > 0 {
                    rt::value_text(&self.regs[a0])
                } else {
                    String::new()
                };
                let b = if argc > 1 {
                    rt::value_text(&self.regs[a0 + 1])
                } else {
                    String::new()
                };
                Ok(Value::Int(match a.cmp(&b) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                }))
            }
            BuiltinOp::RtOne => Ok(Value::Int(1)),
            BuiltinOp::RtZero => Ok(Value::Int(0)),
            BuiltinOp::NumThreads => Ok(Value::Int(if self.offload_depth > 0 { 8 } else { 1 })),
            BuiltinOp::NumTeams => Ok(Value::Int(if self.offload_depth > 0 { 4 } else { 1 })),
            BuiltinOp::IsInitialDevice => {
                Ok(Value::Int(if self.offload_depth > 0 { 0 } else { 1 }))
            }
            BuiltinOp::Wtime => Ok(Value::Float(self.steps as f64 * 1.0e-9)),
        }
    }
}
