//! Register bytecode: the lowered form of a [`Program`] and the VM that
//! executes it.
//!
//! The tree-walking interpreter resolved every variable through a chain of
//! `HashMap<String, Value>` scopes, cloned every called [`Function`] AST and
//! re-walked expression trees on every loop iteration. This module lowers a
//! checked [`Program`] **once** into a flat, pre-resolved instruction stream
//! — the same move wasmtime makes from Wasm to its internal IR and revm
//! makes with its jump-table dispatch — and then executes it with a tight
//! dispatch loop over a reusable register file.
//!
//! # Lowering invariants
//!
//! The lowered artifact must be observationally *byte-identical* to the
//! tree-walk oracle (`--features treewalk-reference`), which pins down the
//! following invariants:
//!
//! * **Slot resolution.** Every identifier is resolved at lowering time to a
//!   dense frame-slot index (locals) or a global-slot index, following the
//!   same innermost-scope-first, then-globals rule the scope chain
//!   implemented dynamically. Each declaration gets a fresh slot, so C
//!   shadowing falls out of lexical resolution; a name that resolves nowhere
//!   (impossible in semantically checked programs) gets a per-function
//!   *ghost slot* that starts unbound and therefore reproduces the oracle's
//!   behaviour (segfault on rvalue read, deterministic garbage on
//!   place-read, late bind on store). Slots are `Option<Value>` at runtime:
//!   `None` (never bound) and `Some(Uninit)` (declared without initializer)
//!   are distinct states with distinct semantics, exactly as in the oracle.
//! * **Interning.** String literals, identifiers and function names are
//!   interned to `u32` [`Symbol`]s through the [`vv_dclang::Interner`]; the
//!   constant pool is deduplicated through the same table, and per-name
//!   garbage salts are precomputed per slot, so the execution loop never
//!   hashes or compares a string.
//! * **Step parity.** The oracle charges one step per statement executed,
//!   per expression node evaluated, and per loop iteration. Lowering emits
//!   the same charges as explicit `Step` instructions placed at the
//!   oracle's charge points, coalescing *adjacent* charges (with no
//!   intervening instruction) into one `Step(n)`. Because nothing observable
//!   can happen between coalesced charges, the step counter agrees with the
//!   oracle at every observable event — so step-limit faults, and builtins
//!   that read the counter (`omp_get_wtime`), behave identically.
//! * **Region unwinding.** `break`/`continue`/`return` that cross a
//!   structured data or compute region emit that region's exit actions
//!   (offload-depth decrement, data-clause exit transfers) before the jump,
//!   mirroring how `Flow` propagation in the oracle runs exit clauses on the
//!   way out.
//! * **Cache reuse.** [`lower_cached`] stashes the artifact in the
//!   [`Program`]'s type-erased cache slot: compile once, execute many.
//!   Clones of the `Program` share the slot, so the probing layer, the
//!   pipeline and the benches all reuse one lowering per base program.
//!
//! Per-operation semantics (operator application, coercion, deterministic
//! garbage, memory and capture rules) are shared with the oracle through
//! `crate::rt`, so the differential surface is exactly: lowering, control
//! flow, and step accounting.
//!
//! [`Function`]: vv_dclang::Function

mod lower;
mod vm;

pub use lower::lower;
pub(crate) use vm::run_lowered;

use crate::memory::MapKind;
use crate::rt::CoerceKind;
use crate::value::Value;
use vv_dclang::{BinOp, Interner, Symbol};
use vv_simcompiler::Program;

/// A resolved variable reference: local frame slot or global slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum VarRef {
    /// Index into the executing function's frame.
    Local(u16),
    /// Index into the global slot array.
    Global(u16),
}

/// Precomputed garbage salts for one slot's name (the oracle derives these
/// from the identifier text on every uninitialized read; we do it once).
#[derive(Clone, Copy, Debug)]
pub(crate) struct SlotMeta {
    /// Salt used when an uninitialized variable is read as an rvalue.
    pub eval_salt: u64,
    /// Salt used when it is read through a place (compound assign, `++`).
    pub place_salt: u64,
}

/// A single-arg math builtin (`sqrt`, `fabs`, ...).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Math1 {
    Fabs,
    Sqrt,
    Exp,
    Log,
    Sin,
    Cos,
    Tan,
    Floor,
    Ceil,
}

impl Math1 {
    pub(crate) fn apply(self, v: f64) -> f64 {
        match self {
            Math1::Fabs => v.abs(),
            Math1::Sqrt => v.sqrt(),
            Math1::Exp => v.exp(),
            Math1::Log => v.ln(),
            Math1::Sin => v.sin(),
            Math1::Cos => v.cos(),
            Math1::Tan => v.tan(),
            Math1::Floor => v.floor(),
            Math1::Ceil => v.ceil(),
        }
    }
}

/// A builtin call, resolved (including its argument-evaluation shape) at
/// lowering time. Argument values sit in consecutive registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BuiltinOp {
    /// `malloc`-family with an element *count* argument (from the
    /// `count * sizeof(T)` idiom); uninitialized cells.
    AllocCount,
    /// `malloc`-family with a raw *byte* argument; count = ceil(bytes/8).
    AllocBytes,
    /// `calloc`: count argument, zero-initialized cells.
    CallocCount,
    /// `free`/`acc_free`/`omp_target_free`.
    Free,
    /// `printf` (format value + arguments) to stdout.
    Printf,
    /// `puts` (optional single value) to stdout.
    Puts,
    /// `putchar` (optional single value) to stdout.
    Putchar,
    /// `fprintf` with the stream argument dropped at lowering; to stderr.
    Fprintf,
    /// `exit(code)`.
    Exit,
    /// `abort()`.
    Abort,
    /// Single-argument math function.
    Math(Math1),
    /// `pow(a, b)`.
    Pow,
    /// `abs`/`labs`.
    Abs,
    /// `rand()` (xorshift over the run's RNG state).
    Rand,
    /// `srand(seed)`.
    Srand,
    /// `memset(ptr, fill, ...)` — fills whole allocation past `ptr`.
    Memset,
    /// `memcpy(dst, src, ...)` — whole-allocation copy.
    Memcpy,
    /// `strlen(s)`.
    Strlen,
    /// `strcmp(a, b)`.
    Strcmp,
    /// Runtime introspection returning `Int(1)`.
    RtOne,
    /// Runtime introspection returning `Int(0)`.
    RtZero,
    /// `omp_get_num_threads()` — 8 inside an offload region, else 1.
    NumThreads,
    /// `omp_get_num_teams()` — 4 inside an offload region, else 1.
    NumTeams,
    /// `omp_is_initial_device()` — 0 inside an offload region, else 1.
    IsInitialDevice,
    /// `omp_get_wtime()` — reads the step counter.
    Wtime,
}

/// One lowered instruction. Registers (`u16`) index the executing frame's
/// register window; constants, functions, directives and jump targets are
/// `u32` indices into the [`CompiledProgram`] tables.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Instr {
    /// Charge `n` interpreter steps (coalesced oracle charges) and check
    /// the step limit.
    Step(u32),
    /// `reg[dst] = consts[idx].clone()`.
    Const { dst: u16, idx: u32 },
    /// Rvalue variable read: unbound → segfault, uninit → garbage.
    LoadVar { dst: u16, var: VarRef },
    /// Place-read of a variable: unbound/uninit → garbage.
    ReadVarPlace { dst: u16, var: VarRef },
    /// Bind/assign a variable slot.
    StoreVar { var: VarRef, src: u16 },
    /// Fused `var++`/`var--` in statement (result-discarded) position:
    /// place-read, add `delta`, store — one dispatch instead of four.
    IncVar { var: VarRef, delta: i64 },
    /// Fused compound assignment `var op= reg[src]` in statement position.
    AccumVar { op: BinOp, var: VarRef, src: u16 },
    /// Declare a variable without initializer (`Some(Uninit)`).
    BindUninit { var: VarRef },
    /// Coerce a register in place per the declared type.
    Coerce { reg: u16, kind: CoerceKind },
    /// Arithmetic negation.
    Neg { dst: u16, src: u16 },
    /// Logical not.
    Not { dst: u16, src: u16 },
    /// Bitwise not.
    BitNot { dst: u16, src: u16 },
    /// Normalize to `Int(0|1)` by truthiness (short-circuit results).
    Truthy { dst: u16, src: u16 },
    /// Binary operator application (may fault: divide by zero).
    Bin {
        op: BinOp,
        dst: u16,
        lhs: u16,
        rhs: u16,
    },
    /// Fused `var ⊕ const` (the loop-condition shape `i < N` after macro
    /// expansion): variable load + operator in one dispatch.
    BinVC {
        op: BinOp,
        dst: u16,
        var: VarRef,
        idx: u32,
    },
    /// Fused `var ⊕ var`.
    BinVV {
        op: BinOp,
        dst: u16,
        lhs: VarRef,
        rhs: VarRef,
    },
    /// Fused `reg ⊕ const` (literal right-hand sides).
    BinRC {
        op: BinOp,
        dst: u16,
        lhs: u16,
        idx: u32,
    },
    /// Fused `base[idx]` read where both base and index are variables.
    IndexReadVV { dst: u16, base: VarRef, idx: VarRef },
    /// Fused `base[idx] = src` write where both base and index are
    /// variables (reloaded per access — variable loads are pure).
    IndexWriteVV { base: VarRef, idx: VarRef, src: u16 },
    /// `&expr`: one-cell allocation holding a copy of the value.
    AddrOf { dst: u16, src: u16 },
    /// `base[idx]` read (base must be a pointer; offload-aware).
    IndexRead { dst: u16, base: u16, idx: u16 },
    /// `base[idx] = src` write.
    IndexWrite { base: u16, idx: u16, src: u16 },
    /// `*ptr` read.
    DerefRead { dst: u16, ptr: u16 },
    /// `*ptr = src` write.
    DerefWrite { ptr: u16, src: u16 },
    /// Stack-array allocation from `ndims` dimension values.
    ArrayAlloc { dst: u16, dims: u16, ndims: u16 },
    /// Unconditional jump.
    Jump { target: u32 },
    /// Jump when the register is falsy.
    JumpIfFalse { cond: u16, target: u32 },
    /// Jump when the register is truthy.
    JumpIfTrue { cond: u16, target: u32 },
    /// Call a lowered user function with `argc` consecutive argument regs.
    Call {
        dst: u16,
        func: u32,
        args: u16,
        argc: u16,
    },
    /// Invoke a builtin with `argc` consecutive argument regs.
    Builtin {
        dst: u16,
        op: BuiltinOp,
        args: u16,
        argc: u16,
    },
    /// Apply a data region's enter-phase clauses.
    EnterData { dir: u32 },
    /// Apply a data region's exit-phase clauses.
    ExitData { dir: u32 },
    /// Apply an `update` directive's transfers.
    UpdateData { dir: u32 },
    /// Enter a compute/offload region: apply enter clauses, raise the
    /// offload depth, and push the region onto the runtime unwind stack
    /// (the oracle runs a compute region's exit clauses even when its body
    /// faults or exits — the VM reproduces that by unwinding this stack).
    EnterCompute { dir: u32 },
    /// Leave a compute/offload region: pop the unwind stack, lower the
    /// offload depth, apply exit clauses.
    ExitCompute { dir: u32 },
    /// Return from the current function.
    Ret { src: u16 },
    /// Raise a fault (unrepresentable lvalues and similar dead ends).
    Trap { fault: crate::RuntimeFault },
}

/// One parameter's binding plan.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ParamSpec {
    /// The local slot the parameter occupies.
    pub slot: u16,
    /// The declared type's coercion.
    pub coerce: Option<CoerceKind>,
    /// The global slot a *missing* argument falls back to: the oracle never
    /// binds an unsupplied parameter, so its dynamic lookup reaches a
    /// same-named global. The VM reproduces that with a slot alias.
    pub global_fallback: Option<u16>,
}

/// The pre-resolved data-clause actions of one directive.
#[derive(Clone, Debug, Default)]
pub(crate) struct DirectiveOps {
    /// Enter-phase mappings, in clause order (delete clauses excluded).
    pub enter: Vec<(VarRef, MapKind)>,
    /// Exit-phase unmappings, in clause order (delete clauses included).
    pub exit: Vec<VarRef>,
    /// `update` transfers; the flag is true for device→host.
    pub update: Vec<(VarRef, bool)>,
}

/// One lowered function body.
#[derive(Clone, Debug)]
pub(crate) struct FuncCode {
    /// The instruction stream (always terminated by `Ret`).
    pub code: Vec<Instr>,
    /// Size of the register window.
    pub regs: u16,
    /// Number of local slots (params first, then declarations/ghosts).
    pub slots: u16,
    /// Per-slot garbage salts.
    pub slot_meta: Vec<SlotMeta>,
    /// Parameter binding plans, in declaration order.
    pub params: Vec<ParamSpec>,
    /// The function's interned name (diagnostics only).
    pub name: Symbol,
}

/// A [`Program`] lowered to register bytecode — the compile-once /
/// execute-many artifact cached on the program itself.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    pub(crate) consts: Vec<Value>,
    pub(crate) funcs: Vec<FuncCode>,
    pub(crate) main: Option<u32>,
    pub(crate) global_init: FuncCode,
    pub(crate) global_meta: Vec<SlotMeta>,
    pub(crate) directives: Vec<DirectiveOps>,
    pub(crate) names: Interner,
}

impl CompiledProgram {
    /// Total number of lowered instructions across all functions (including
    /// global initialization) — a size proxy for benches and tests.
    pub fn instruction_count(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum::<usize>() + self.global_init.code.len()
    }

    /// Number of entries in the deduplicated constant pool.
    pub fn const_count(&self) -> usize {
        self.consts.len()
    }

    /// Number of distinct interned names and string literals.
    pub fn symbol_count(&self) -> usize {
        self.names.len()
    }

    /// The lowered functions' names, in definition order (for diagnostics
    /// and tests).
    pub fn function_names(&self) -> Vec<&str> {
        self.funcs
            .iter()
            .map(|f| self.names.resolve(f.name))
            .collect()
    }
}

/// Lower through the [`Program`]'s cache slot: the first call builds the
/// bytecode, every later call (on this program or any clone) is a pointer
/// clone.
pub fn lower_cached(program: &Program) -> std::sync::Arc<CompiledProgram> {
    program.lowered_artifact(|| lower(program))
}
