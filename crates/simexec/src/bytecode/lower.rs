//! AST → register bytecode lowering.
//!
//! See the module docs in [`super`] for the invariants this pass maintains
//! (slot resolution, interning, step parity, region unwinding). The
//! structure mirrors the tree-walk oracle statement by statement: every
//! oracle charge point becomes a pending step that is coalesced with
//! adjacent charges and flushed as a `Step` before the next real
//! instruction or jump label.

use std::collections::HashMap;

use super::{
    BuiltinOp, CompiledProgram, DirectiveOps, FuncCode, Instr, Math1, ParamSpec, SlotMeta, VarRef,
};
use crate::memory::MapKind;
use crate::outcome::RuntimeFault;
use crate::rt;
use crate::value::Value;
use vv_dclang::{
    AssignOp, BinOp, Directive, Expr, Function, Interner, Stmt, Symbol, UnOp, VarDecl,
};
use vv_simcompiler::semantic::clause_variables;
use vv_simcompiler::Program;

/// Lower a checked program to register bytecode (uncached; see
/// [`super::lower_cached`] for the compile-once entry point).
pub fn lower(program: &Program) -> CompiledProgram {
    Lowerer::new(program).lower_program()
}

/// A loop's patch lists. For-initializers push a pseudo-context whose
/// break/continue both fall through into the loop (the oracle ignores
/// non-`Return` flow out of a `for` initializer).
struct LoopCtx {
    break_patches: Vec<usize>,
    continue_patches: Vec<usize>,
    /// Depth of `regions` when the loop was entered; `break`/`continue`
    /// unwind every region opened above this depth.
    region_depth: usize,
}

/// An open structured data / compute region during lowering.
#[derive(Clone, Copy)]
struct Region {
    dir: u32,
    compute: bool,
}

/// The lowering-time view of an lvalue.
enum LPlace {
    Var(VarRef),
    Index {
        base: u16,
        idx: u16,
    },
    /// `base[idx]` with both sides plain variables: accesses reload the
    /// variables (pure loads), no registers held.
    IndexVar {
        base: VarRef,
        idx: VarRef,
    },
    Deref {
        ptr: u16,
    },
    /// An unrepresentable lvalue; a `Trap` has already been emitted, so any
    /// follow-up instructions are unreachable.
    Invalid,
}

struct Lowerer<'p> {
    program: &'p Program,
    names: Interner,
    consts: Vec<Value>,
    int_consts: HashMap<i64, u32>,
    float_consts: HashMap<u64, u32>,
    str_consts: HashMap<Symbol, u32>,
    func_index: HashMap<Symbol, u32>,
    global_slots: HashMap<Symbol, u16>,
    global_meta: Vec<SlotMeta>,
    directives: Vec<DirectiveOps>,
    // Per-body state, reset by `begin_body`.
    code: Vec<Instr>,
    pending_steps: u32,
    scopes: Vec<Vec<(Symbol, u16)>>,
    slot_meta: Vec<SlotMeta>,
    ghosts: HashMap<Symbol, VarRef>,
    next_reg: u16,
    max_reg: u16,
    loops: Vec<LoopCtx>,
    regions: Vec<Region>,
    lowering_globals: bool,
    /// Number of parameter slots in the body being lowered (slots below
    /// this index may be unbound at runtime — missing call arguments).
    param_count: u16,
}

impl<'p> Lowerer<'p> {
    fn new(program: &'p Program) -> Self {
        Self {
            program,
            names: Interner::new(),
            consts: Vec::new(),
            int_consts: HashMap::new(),
            float_consts: HashMap::new(),
            str_consts: HashMap::new(),
            func_index: HashMap::new(),
            global_slots: HashMap::new(),
            global_meta: Vec::new(),
            directives: Vec::new(),
            code: Vec::new(),
            pending_steps: 0,
            scopes: Vec::new(),
            slot_meta: Vec::new(),
            ghosts: HashMap::new(),
            next_reg: 0,
            max_reg: 0,
            loops: Vec::new(),
            regions: Vec::new(),
            lowering_globals: false,
            param_count: 0,
        }
    }

    fn lower_program(mut self) -> CompiledProgram {
        let unit = &self.program.unit;
        // Pre-declare global slots (duplicate names share one slot, exactly
        // like the oracle's single `globals` map entry) so forward
        // references resolve to a slot that is still unbound — and
        // therefore segfault — at the time the earlier initializer runs.
        for decl in &unit.globals {
            let sym = self.names.intern(&decl.name);
            if let std::collections::hash_map::Entry::Vacant(e) = self.global_slots.entry(sym) {
                let slot = u16::try_from(self.global_meta.len()).expect("too many globals");
                self.global_meta.push(SlotMeta {
                    eval_salt: rt::eval_salt(&decl.name),
                    place_salt: rt::place_salt(&decl.name),
                });
                e.insert(slot);
            }
        }
        // First function definition wins a name, like `unit.function()`.
        for (i, func) in unit.functions.iter().enumerate() {
            let sym = self.names.intern(&func.name);
            self.func_index.entry(sym).or_insert(i as u32);
        }

        // Global initializers run before `main`, in declaration order.
        self.begin_body(true);
        let globals: Vec<VarDecl> = unit.globals.clone();
        for decl in &globals {
            self.lower_global_decl(decl);
        }
        self.emit_epilogue();
        let global_sym = self.names.intern("<globals>");
        let global_init = self.take_func(global_sym, Vec::new());

        let mut funcs = Vec::with_capacity(unit.functions.len());
        for func in &unit.functions {
            let lowered = self.lower_function(func);
            funcs.push(lowered);
        }
        let main = self
            .names
            .get("main")
            .and_then(|s| self.func_index.get(&s))
            .copied();

        CompiledProgram {
            consts: self.consts,
            funcs,
            main,
            global_init,
            global_meta: self.global_meta,
            directives: self.directives,
            names: self.names,
        }
    }

    fn lower_function(&mut self, func: &Function) -> FuncCode {
        self.begin_body(false);
        self.push_scope();
        let mut params = Vec::with_capacity(func.params.len());
        for param in &func.params {
            let VarRef::Local(slot) = self.declare(&param.name) else {
                unreachable!("params declare local slots");
            };
            let sym = self.names.intern(&param.name);
            params.push(ParamSpec {
                slot,
                coerce: rt::coerce_kind(&param.ty),
                global_fallback: self.global_slots.get(&sym).copied(),
            });
        }
        self.param_count = params.len() as u16;
        for stmt in &func.body.stmts {
            self.lower_stmt(stmt);
        }
        self.emit_epilogue();
        self.pop_scope();
        let sym = self.names.intern(&func.name);
        self.take_func(sym, params)
    }

    /// A function body ends with an implicit `return 0`.
    fn emit_epilogue(&mut self) {
        self.touch_reg(1);
        let idx = self.const_int(0);
        self.emit(Instr::Const { dst: 0, idx });
        self.emit(Instr::Ret { src: 0 });
    }

    fn begin_body(&mut self, lowering_globals: bool) {
        self.code = Vec::new();
        self.pending_steps = 0;
        self.scopes = Vec::new();
        self.slot_meta = Vec::new();
        self.ghosts = HashMap::new();
        self.next_reg = 0;
        self.max_reg = 0;
        self.loops = Vec::new();
        self.regions = Vec::new();
        self.lowering_globals = lowering_globals;
        self.param_count = 0;
    }

    fn take_func(&mut self, name: Symbol, params: Vec<ParamSpec>) -> FuncCode {
        debug_assert_eq!(self.pending_steps, 0, "epilogue flushes pending steps");
        FuncCode {
            code: std::mem::take(&mut self.code),
            regs: self.max_reg,
            slots: u16::try_from(self.slot_meta.len()).expect("too many locals"),
            slot_meta: std::mem::take(&mut self.slot_meta),
            params,
            name,
        }
    }

    // ------------------------------------------------------------------
    // emitter
    // ------------------------------------------------------------------

    /// Record oracle step charges; adjacent charges coalesce into one
    /// `Step(n)` flushed before the next instruction or label.
    fn charge(&mut self, n: u32) {
        self.pending_steps += n;
    }

    fn flush_steps(&mut self) {
        if self.pending_steps > 0 {
            let n = self.pending_steps;
            self.pending_steps = 0;
            self.code.push(Instr::Step(n));
        }
    }

    fn emit(&mut self, instr: Instr) {
        self.flush_steps();
        self.code.push(instr);
    }

    /// A jump-target position; flushing first keeps pending charges on the
    /// fall-through side of the label (they belong to code *before* it).
    fn label(&mut self) -> u32 {
        self.flush_steps();
        self.code.len() as u32
    }

    fn emit_jump(&mut self) -> usize {
        self.emit(Instr::Jump { target: u32::MAX });
        self.code.len() - 1
    }

    fn emit_jump_if_false(&mut self, cond: u16) -> usize {
        self.emit(Instr::JumpIfFalse {
            cond,
            target: u32::MAX,
        });
        self.code.len() - 1
    }

    fn emit_jump_if_true(&mut self, cond: u16) -> usize {
        self.emit(Instr::JumpIfTrue {
            cond,
            target: u32::MAX,
        });
        self.code.len() - 1
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Instr::Jump { target: t }
            | Instr::JumpIfFalse { target: t, .. }
            | Instr::JumpIfTrue { target: t, .. } => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn patch_all(&mut self, patches: Vec<usize>, target: u32) {
        for at in patches {
            self.patch(at, target);
        }
    }

    // ------------------------------------------------------------------
    // registers, constants, names
    // ------------------------------------------------------------------

    fn push_reg(&mut self) -> u16 {
        let r = self.next_reg;
        self.next_reg = r.checked_add(1).expect("register window overflow");
        self.max_reg = self.max_reg.max(self.next_reg);
        r
    }

    fn touch_reg(&mut self, upto: u16) {
        self.max_reg = self.max_reg.max(upto);
    }

    fn const_value(&mut self, value: Value) -> u32 {
        match &value {
            Value::Int(i) => {
                if let Some(&idx) = self.int_consts.get(i) {
                    return idx;
                }
                let idx = self.consts.len() as u32;
                self.int_consts.insert(*i, idx);
                self.consts.push(value);
                idx
            }
            Value::Float(f) => {
                let bits = f.to_bits();
                if let Some(&idx) = self.float_consts.get(&bits) {
                    return idx;
                }
                let idx = self.consts.len() as u32;
                self.float_consts.insert(bits, idx);
                self.consts.push(value);
                idx
            }
            Value::Str(s) => {
                let sym = self.names.intern(s);
                if let Some(&idx) = self.str_consts.get(&sym) {
                    return idx;
                }
                let idx = self.consts.len() as u32;
                self.str_consts.insert(sym, idx);
                self.consts.push(value);
                idx
            }
            _ => {
                let idx = self.consts.len() as u32;
                self.consts.push(value);
                idx
            }
        }
    }

    fn const_int(&mut self, i: i64) -> u32 {
        self.const_value(Value::Int(i))
    }

    fn push_scope(&mut self) {
        self.scopes.push(Vec::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    /// Declare a fresh slot for a name in the current scope.
    fn declare(&mut self, name: &str) -> VarRef {
        let sym = self.names.intern(name);
        let meta = SlotMeta {
            eval_salt: rt::eval_salt(name),
            place_salt: rt::place_salt(name),
        };
        if self.lowering_globals {
            VarRef::Global(self.global_slots[&sym])
        } else {
            let slot = u16::try_from(self.slot_meta.len()).expect("too many locals");
            self.slot_meta.push(meta);
            self.scopes
                .last_mut()
                .expect("a scope is open")
                .push((sym, slot));
            VarRef::Local(slot)
        }
    }

    /// Innermost-scope-first, then globals — the lexical mirror of the
    /// oracle's dynamic scope-chain walk.
    fn resolve(&mut self, name: &str) -> Option<VarRef> {
        let sym = self.names.intern(name);
        for scope in self.scopes.iter().rev() {
            for (s, slot) in scope.iter().rev() {
                if *s == sym {
                    return Some(VarRef::Local(*slot));
                }
            }
        }
        self.global_slots.get(&sym).copied().map(VarRef::Global)
    }

    /// Resolve a name, falling back to a per-body ghost slot that is never
    /// bound — reproducing the oracle's behaviour for names semantic
    /// analysis would have rejected (segfault on rvalue read, garbage on
    /// place read, late bind on store).
    fn resolve_or_ghost(&mut self, name: &str) -> VarRef {
        if let Some(var) = self.resolve(name) {
            return var;
        }
        let sym = self.names.intern(name);
        if let Some(&var) = self.ghosts.get(&sym) {
            return var;
        }
        let meta = SlotMeta {
            eval_salt: rt::eval_salt(name),
            place_salt: rt::place_salt(name),
        };
        let var = if self.lowering_globals {
            let slot = u16::try_from(self.global_meta.len()).expect("too many globals");
            self.global_meta.push(meta);
            VarRef::Global(slot)
        } else {
            let slot = u16::try_from(self.slot_meta.len()).expect("too many locals");
            self.slot_meta.push(meta);
            VarRef::Local(slot)
        };
        self.ghosts.insert(sym, var);
        var
    }

    /// A variable whose rvalue load can never fault at runtime, making it
    /// safe to fold into a fused instruction whose step charges are
    /// coalesced ahead of the load: a declared non-parameter local
    /// (declaration dominates every use under structured control flow) or,
    /// outside global-initializer code, any global (all global slots are
    /// bound once initialization completes). Parameter slots can be left
    /// unbound by missing call arguments and forward global references are
    /// unbound during initialization, so those take the unfused lowering,
    /// whose charges sit exactly at the oracle's charge points.
    fn fusible_var(&mut self, name: &str) -> Option<VarRef> {
        match self.resolve(name)? {
            VarRef::Local(slot) if slot < self.param_count => None,
            var @ VarRef::Local(_) => Some(var),
            var @ VarRef::Global(_) => (!self.lowering_globals).then_some(var),
        }
    }

    // ------------------------------------------------------------------
    // statements
    // ------------------------------------------------------------------

    fn lower_stmt(&mut self, stmt: &Stmt) {
        let mark = self.next_reg;
        self.charge(1); // the oracle charges one step per statement entry
        match stmt {
            Stmt::Decl(decls) => {
                for decl in decls {
                    self.lower_local_decl(decl);
                }
            }
            Stmt::Expr(expr) => {
                self.lower_expr_discard(expr);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let c = self.lower_expr(cond);
                let jf = self.emit_jump_if_false(c);
                self.next_reg = mark;
                self.push_scope();
                self.lower_stmt(then_branch);
                self.pop_scope();
                if let Some(else_branch) = else_branch {
                    let je = self.emit_jump();
                    let else_label = self.label();
                    self.patch(jf, else_label);
                    self.push_scope();
                    self.lower_stmt(else_branch);
                    self.pop_scope();
                    let end = self.label();
                    self.patch(je, end);
                } else {
                    let end = self.label();
                    self.patch(jf, end);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.push_scope();
                let init_patches = init.as_ref().map(|init| {
                    // The oracle ignores Break/Continue out of a `for`
                    // initializer: execution falls through into the loop.
                    self.loops.push(LoopCtx {
                        break_patches: Vec::new(),
                        continue_patches: Vec::new(),
                        region_depth: self.regions.len(),
                    });
                    self.lower_stmt(init);
                    self.loops.pop().expect("init ctx")
                });
                let head = self.label();
                if let Some(ctx) = init_patches {
                    self.patch_all(ctx.break_patches, head);
                    self.patch_all(ctx.continue_patches, head);
                }
                self.charge(1); // per-iteration step
                let jf = cond.as_ref().map(|cond| {
                    let c = self.lower_expr(cond);
                    let at = self.emit_jump_if_false(c);
                    self.next_reg = mark;
                    at
                });
                self.loops.push(LoopCtx {
                    break_patches: Vec::new(),
                    continue_patches: Vec::new(),
                    region_depth: self.regions.len(),
                });
                self.lower_stmt(body);
                let ctx = self.loops.pop().expect("loop ctx");
                let cont = self.label();
                self.patch_all(ctx.continue_patches, cont);
                if let Some(step) = step {
                    self.lower_expr_discard(step);
                    self.next_reg = mark;
                }
                self.emit(Instr::Jump { target: head });
                let end = self.label();
                if let Some(jf) = jf {
                    self.patch(jf, end);
                }
                self.patch_all(ctx.break_patches, end);
                self.pop_scope();
            }
            Stmt::While { cond, body, .. } => {
                let head = self.label();
                self.charge(1); // per-iteration step
                let c = self.lower_expr(cond);
                let jf = self.emit_jump_if_false(c);
                self.next_reg = mark;
                self.loops.push(LoopCtx {
                    break_patches: Vec::new(),
                    continue_patches: Vec::new(),
                    region_depth: self.regions.len(),
                });
                self.lower_stmt(body);
                let ctx = self.loops.pop().expect("loop ctx");
                self.emit(Instr::Jump { target: head });
                let end = self.label();
                self.patch(jf, end);
                self.patch_all(ctx.break_patches, end);
                self.patch_all(ctx.continue_patches, head);
            }
            Stmt::DoWhile { body, cond, .. } => {
                let head = self.label();
                self.charge(1); // per-iteration step
                self.loops.push(LoopCtx {
                    break_patches: Vec::new(),
                    continue_patches: Vec::new(),
                    region_depth: self.regions.len(),
                });
                self.lower_stmt(body);
                let ctx = self.loops.pop().expect("loop ctx");
                let cont = self.label();
                self.patch_all(ctx.continue_patches, cont);
                let c = self.lower_expr(cond);
                self.emit(Instr::JumpIfTrue {
                    cond: c,
                    target: head,
                });
                self.next_reg = mark;
                let end = self.label();
                self.patch_all(ctx.break_patches, end);
            }
            Stmt::Return(value, _) => {
                let r = match value {
                    Some(expr) => self.lower_expr(expr),
                    None => {
                        let d = self.push_reg();
                        let idx = self.const_int(0);
                        self.emit(Instr::Const { dst: d, idx });
                        d
                    }
                };
                self.emit_region_unwind(0);
                self.emit(Instr::Ret { src: r });
            }
            Stmt::Break(_) => {
                if let Some(depth) = self.loops.last().map(|l| l.region_depth) {
                    self.emit_region_unwind(depth);
                    let j = self.emit_jump();
                    self.loops
                        .last_mut()
                        .expect("loop ctx")
                        .break_patches
                        .push(j);
                } else {
                    // Break outside any loop ends the function with the
                    // default result, after unwinding open regions.
                    self.emit_region_unwind(0);
                    let d = self.push_reg();
                    let idx = self.const_int(0);
                    self.emit(Instr::Const { dst: d, idx });
                    self.emit(Instr::Ret { src: d });
                }
            }
            Stmt::Continue(_) => {
                if let Some(depth) = self.loops.last().map(|l| l.region_depth) {
                    self.emit_region_unwind(depth);
                    let j = self.emit_jump();
                    self.loops
                        .last_mut()
                        .expect("loop ctx")
                        .continue_patches
                        .push(j);
                } else {
                    self.emit_region_unwind(0);
                    let d = self.push_reg();
                    let idx = self.const_int(0);
                    self.emit(Instr::Const { dst: d, idx });
                    self.emit(Instr::Ret { src: d });
                }
            }
            Stmt::Block(block) => {
                self.push_scope();
                for stmt in &block.stmts {
                    self.lower_stmt(stmt);
                }
                self.pop_scope();
            }
            Stmt::Directive { directive, body } => {
                self.lower_directive_stmt(directive, body.as_deref());
            }
            Stmt::Empty(_) => {}
        }
        self.next_reg = mark;
    }

    /// Emit exit actions for every region above `to_depth`, innermost
    /// first — what the oracle's `Flow` propagation does on the way out.
    fn emit_region_unwind(&mut self, to_depth: usize) {
        let to_unwind: Vec<Region> = self.regions[to_depth..].iter().rev().copied().collect();
        for region in to_unwind {
            if region.compute {
                self.emit(Instr::ExitCompute { dir: region.dir });
            } else {
                self.emit(Instr::ExitData { dir: region.dir });
            }
        }
    }

    fn lower_local_decl(&mut self, decl: &VarDecl) {
        if !decl.array_dims.is_empty() {
            let base = self.next_reg;
            for dim in &decl.array_dims {
                self.lower_expr(dim);
            }
            let ndims = u16::try_from(decl.array_dims.len()).expect("too many dims");
            self.emit(Instr::ArrayAlloc {
                dst: base,
                dims: base,
                ndims,
            });
            let var = self.declare(&decl.name);
            self.emit(Instr::StoreVar { var, src: base });
            self.next_reg = base;
        } else if let Some(init) = &decl.init {
            let r = self.lower_expr(init);
            if let Some(kind) = rt::coerce_kind(&decl.ty) {
                self.emit(Instr::Coerce { reg: r, kind });
            }
            let var = self.declare(&decl.name);
            self.emit(Instr::StoreVar { var, src: r });
            self.next_reg = r;
        } else {
            let var = self.declare(&decl.name);
            self.emit(Instr::BindUninit { var });
        }
    }

    fn lower_global_decl(&mut self, decl: &VarDecl) {
        // Same shapes as a local declaration (and the same oracle charges:
        // initializer evaluation only, no statement charge), but the target
        // slot was pre-declared.
        let sym = self.names.intern(&decl.name);
        let var = VarRef::Global(self.global_slots[&sym]);
        if !decl.array_dims.is_empty() {
            let base = self.next_reg;
            for dim in &decl.array_dims {
                self.lower_expr(dim);
            }
            let ndims = u16::try_from(decl.array_dims.len()).expect("too many dims");
            self.emit(Instr::ArrayAlloc {
                dst: base,
                dims: base,
                ndims,
            });
            self.emit(Instr::StoreVar { var, src: base });
            self.next_reg = base;
        } else if let Some(init) = &decl.init {
            let r = self.lower_expr(init);
            if let Some(kind) = rt::coerce_kind(&decl.ty) {
                self.emit(Instr::Coerce { reg: r, kind });
            }
            self.emit(Instr::StoreVar { var, src: r });
            self.next_reg = r;
        } else {
            self.emit(Instr::BindUninit { var });
        }
    }

    // ------------------------------------------------------------------
    // directives
    // ------------------------------------------------------------------

    fn lower_directive_stmt(&mut self, directive: &Directive, body: Option<&Stmt>) {
        if directive.model != Some(self.program.model) {
            // Foreign or unknown pragma: ignored by this compiler/runtime.
            if let Some(body) = body {
                self.lower_stmt(body);
            }
            return;
        }
        let name = directive.display_name();
        let first = directive.name.first().map(String::as_str).unwrap_or("");
        match name.as_str() {
            "enter data" | "target enter data" => {
                let dir = self.directive_ops(directive);
                self.emit(Instr::EnterData { dir });
            }
            "exit data" | "target exit data" => {
                let dir = self.directive_ops(directive);
                self.emit(Instr::ExitData { dir });
            }
            "update" | "target update" => {
                let dir = self.directive_ops(directive);
                self.emit(Instr::UpdateData { dir });
            }
            "data" | "target data" | "host_data" => {
                let dir = self.directive_ops(directive);
                self.emit(Instr::EnterData { dir });
                self.regions.push(Region {
                    dir,
                    compute: false,
                });
                if let Some(body) = body {
                    self.lower_stmt(body);
                }
                self.regions.pop();
                self.emit(Instr::ExitData { dir });
            }
            _ => {
                let is_offload_compute = matches!(
                    first,
                    "parallel" | "kernels" | "serial" | "target" | "teams" | "task" | "taskloop"
                );
                if is_offload_compute {
                    let dir = self.directive_ops(directive);
                    self.emit(Instr::EnterCompute { dir });
                    self.regions.push(Region { dir, compute: true });
                    if let Some(body) = body {
                        self.lower_stmt(body);
                    }
                    self.regions.pop();
                    self.emit(Instr::ExitCompute { dir });
                } else if let Some(body) = body {
                    // Worksharing/synchronization constructs just execute
                    // their body.
                    self.lower_stmt(body);
                }
            }
        }
    }

    /// Pre-resolve a directive's clause variables to slots; the runtime
    /// skips entries whose current value is not a pointer, exactly like the
    /// oracle's dynamic lookup-and-filter.
    fn directive_ops(&mut self, directive: &Directive) -> u32 {
        let mut ops = DirectiveOps::default();
        for clause in &directive.clauses {
            let Some(args) = &clause.args else { continue };
            let kind = match clause.name.as_str() {
                "copyin" => Some(MapKind::ToDevice),
                "copyout" => Some(MapKind::FromDevice),
                "copy" => Some(MapKind::Both),
                "create" | "no_create" | "present" => Some(MapKind::AllocOnly),
                "map" => Some(rt::map_kind_for(args)),
                _ => None,
            };
            let is_delete = clause.name == "delete"
                || (clause.name == "map"
                    && args.trim_start().starts_with("release")
                    && args.contains(':'))
                || (clause.name == "map"
                    && args.trim_start().starts_with("delete")
                    && args.contains(':'));
            if kind.is_some() || is_delete {
                for var in clause_variables(&clause.name, args) {
                    let Some(vr) = self.resolve(&var) else {
                        continue;
                    };
                    if !is_delete {
                        ops.enter
                            .push((vr, kind.expect("kind is Some when not delete")));
                    }
                    ops.exit.push(vr);
                }
            }
            let to_host = matches!(clause.name.as_str(), "self" | "host" | "from");
            let to_device = matches!(clause.name.as_str(), "device" | "to");
            if to_host || to_device {
                for var in clause_variables(&clause.name, args) {
                    let Some(vr) = self.resolve(&var) else {
                        continue;
                    };
                    ops.update.push((vr, to_host));
                }
            }
        }
        let idx = self.directives.len() as u32;
        self.directives.push(ops);
        idx
    }

    // ------------------------------------------------------------------
    // expressions
    // ------------------------------------------------------------------

    /// Lower an expression. Invariant: entered with `next_reg == N`, the
    /// result lands in register `N` and `next_reg` leaves as `N + 1`.
    fn lower_expr(&mut self, expr: &Expr) -> u16 {
        match expr {
            Expr::IntLit(v, _) => {
                self.charge(1);
                let idx = self.const_int(*v);
                let d = self.push_reg();
                self.emit(Instr::Const { dst: d, idx });
                d
            }
            Expr::FloatLit(v, _) => {
                self.charge(1);
                let idx = self.const_value(Value::Float(*v));
                let d = self.push_reg();
                self.emit(Instr::Const { dst: d, idx });
                d
            }
            Expr::StrLit(s, _) => {
                self.charge(1);
                let idx = self.const_value(Value::Str(s.clone()));
                let d = self.push_reg();
                self.emit(Instr::Const { dst: d, idx });
                d
            }
            Expr::CharLit(c, _) => {
                self.charge(1);
                let idx = self.const_int(*c as i64);
                let d = self.push_reg();
                self.emit(Instr::Const { dst: d, idx });
                d
            }
            Expr::Ident(name, _) => {
                self.charge(1);
                let var = self.resolve_or_ghost(name);
                let d = self.push_reg();
                self.emit(Instr::LoadVar { dst: d, var });
                d
            }
            Expr::Unary { op, expr, .. } => match op {
                UnOp::Neg => {
                    self.charge(1);
                    let s = self.lower_expr(expr);
                    self.emit(Instr::Neg { dst: s, src: s });
                    s
                }
                UnOp::Not => {
                    self.charge(1);
                    let s = self.lower_expr(expr);
                    self.emit(Instr::Not { dst: s, src: s });
                    s
                }
                UnOp::BitNot => {
                    self.charge(1);
                    let s = self.lower_expr(expr);
                    self.emit(Instr::BitNot { dst: s, src: s });
                    s
                }
                UnOp::Deref => {
                    self.charge(1);
                    let p = self.lower_expr(expr);
                    self.emit(Instr::DerefRead { dst: p, ptr: p });
                    p
                }
                UnOp::AddrOf => {
                    self.charge(1);
                    let s = self.lower_expr(expr);
                    self.emit(Instr::AddrOf { dst: s, src: s });
                    s
                }
                UnOp::PreIncr | UnOp::PreDecr => {
                    self.charge(1);
                    let delta = if *op == UnOp::PreDecr { -1 } else { 1 };
                    self.lower_prefix_incdec(expr, delta)
                }
            },
            Expr::Binary { op, lhs, rhs, .. } if *op == BinOp::And => {
                self.charge(1);
                let l = self.lower_expr(lhs);
                let jf = self.emit_jump_if_false(l);
                self.next_reg = l;
                self.lower_expr(rhs);
                self.emit(Instr::Truthy { dst: l, src: l });
                let je = self.emit_jump();
                let false_label = self.label();
                self.patch(jf, false_label);
                let idx = self.const_int(0);
                self.emit(Instr::Const { dst: l, idx });
                let end = self.label();
                self.patch(je, end);
                self.next_reg = l + 1;
                l
            }
            Expr::Binary { op, lhs, rhs, .. } if *op == BinOp::Or => {
                self.charge(1);
                let l = self.lower_expr(lhs);
                let jt = self.emit_jump_if_true(l);
                self.next_reg = l;
                self.lower_expr(rhs);
                self.emit(Instr::Truthy { dst: l, src: l });
                let je = self.emit_jump();
                let true_label = self.label();
                self.patch(jt, true_label);
                let idx = self.const_int(1);
                self.emit(Instr::Const { dst: l, idx });
                let end = self.label();
                self.patch(je, end);
                self.next_reg = l + 1;
                l
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                self.charge(1);
                // Fused shapes, only for variables whose loads provably
                // cannot fault (see `fusible_var`): folding pure loads into
                // the operator instruction preserves the oracle's behaviour
                // and charges the same three steps at the same points.
                if let Expr::Ident(name, _) = lhs.as_ref() {
                    if let Some(var) = self.fusible_var(name) {
                        if let Some(idx) = self.literal_const(rhs) {
                            self.charge(2);
                            let d = self.push_reg();
                            self.emit(Instr::BinVC {
                                op: *op,
                                dst: d,
                                var,
                                idx,
                            });
                            return d;
                        }
                        if let Expr::Ident(rname, _) = rhs.as_ref() {
                            if let Some(rvar) = self.fusible_var(rname) {
                                self.charge(2);
                                let d = self.push_reg();
                                self.emit(Instr::BinVV {
                                    op: *op,
                                    dst: d,
                                    lhs: var,
                                    rhs: rvar,
                                });
                                return d;
                            }
                        }
                    }
                }
                let l = self.lower_expr(lhs);
                if let Some(idx) = self.literal_const(rhs) {
                    self.charge(1);
                    self.emit(Instr::BinRC {
                        op: *op,
                        dst: l,
                        lhs: l,
                        idx,
                    });
                    self.next_reg = l + 1;
                    return l;
                }
                let r = self.lower_expr(rhs);
                self.emit(Instr::Bin {
                    op: *op,
                    dst: l,
                    lhs: l,
                    rhs: r,
                });
                self.next_reg = l + 1;
                l
            }
            Expr::Assign {
                op, target, value, ..
            } => {
                self.charge(1);
                // The oracle evaluates the value first, then the place.
                let rv = self.lower_expr(value);
                let place = self.lower_place(target);
                if *op == AssignOp::Assign {
                    self.emit_place_write(&place, rv);
                } else {
                    let bin = match op {
                        AssignOp::AddAssign => BinOp::Add,
                        AssignOp::SubAssign => BinOp::Sub,
                        AssignOp::MulAssign => BinOp::Mul,
                        AssignOp::DivAssign => BinOp::Div,
                        AssignOp::Assign => unreachable!(),
                    };
                    let old = self.push_reg();
                    self.emit_place_read(&place, old);
                    self.emit(Instr::Bin {
                        op: bin,
                        dst: rv,
                        lhs: old,
                        rhs: rv,
                    });
                    self.emit_place_write(&place, rv);
                }
                self.next_reg = rv + 1;
                rv
            }
            Expr::Call { name, args, .. } => {
                self.charge(1);
                let sym = self.names.intern(name);
                if let Some(&fidx) = self.func_index.get(&sym) {
                    // User-defined functions take precedence over builtins.
                    let base = self.next_reg;
                    for arg in args {
                        self.lower_expr(arg);
                    }
                    let argc = u16::try_from(args.len()).expect("too many args");
                    self.next_reg = base;
                    let d = self.push_reg();
                    self.emit(Instr::Call {
                        dst: d,
                        func: fidx,
                        args: base,
                        argc,
                    });
                    d
                } else {
                    self.lower_builtin(name, args)
                }
            }
            Expr::Index { base, index, .. } => {
                self.charge(1);
                if let (Expr::Ident(bname, _), Expr::Ident(iname, _)) =
                    (base.as_ref(), index.as_ref())
                {
                    if let (Some(bvar), Some(ivar)) =
                        (self.fusible_var(bname), self.fusible_var(iname))
                    {
                        self.charge(2);
                        let d = self.push_reg();
                        self.emit(Instr::IndexReadVV {
                            dst: d,
                            base: bvar,
                            idx: ivar,
                        });
                        return d;
                    }
                }
                let b = self.lower_expr(base);
                let i = self.lower_expr(index);
                self.emit(Instr::IndexRead {
                    dst: b,
                    base: b,
                    idx: i,
                });
                self.next_reg = b + 1;
                b
            }
            Expr::Postfix {
                target, decrement, ..
            } => {
                self.charge(1);
                let delta = if *decrement { -1 } else { 1 };
                let d = self.push_reg();
                let place = self.lower_place(target);
                self.emit_place_read(&place, d); // the old value is the result
                let tmp = self.push_reg();
                let idx = self.const_int(delta);
                self.emit(Instr::Const { dst: tmp, idx });
                self.emit(Instr::Bin {
                    op: BinOp::Add,
                    dst: tmp,
                    lhs: d,
                    rhs: tmp,
                });
                self.emit_place_write(&place, tmp);
                self.next_reg = d + 1;
                d
            }
            Expr::Cast { ty, expr, .. } => {
                self.charge(1);
                let s = self.lower_expr(expr);
                if let Some(kind) = rt::coerce_kind(ty) {
                    self.emit(Instr::Coerce { reg: s, kind });
                }
                s
            }
            Expr::SizeofType { ty, .. } => {
                self.charge(1);
                let size = if ty.is_pointer() {
                    8
                } else {
                    ty.base.size_bytes()
                };
                let idx = self.const_int(size as i64);
                let d = self.push_reg();
                self.emit(Instr::Const { dst: d, idx });
                d
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                self.charge(1);
                let d = self.push_reg();
                self.next_reg = d;
                let c = self.lower_expr(cond);
                let jf = self.emit_jump_if_false(c);
                self.next_reg = d;
                self.lower_expr(then_expr);
                let je = self.emit_jump();
                let else_label = self.label();
                self.patch(jf, else_label);
                self.next_reg = d;
                self.lower_expr(else_expr);
                let end = self.label();
                self.patch(je, end);
                self.next_reg = d + 1;
                d
            }
        }
    }

    /// Lower an expression whose value is discarded (expression statements
    /// and `for`-loop steps): the common increment/accumulate shapes fuse
    /// into single instructions. Charges are identical to [`Self::lower_expr`]
    /// — only the instruction count shrinks.
    fn lower_expr_discard(&mut self, expr: &Expr) {
        let entry = self.next_reg;
        match expr {
            Expr::Postfix {
                target, decrement, ..
            } => {
                if let Expr::Ident(name, _) = target.as_ref() {
                    self.charge(1); // the Postfix node's eval charge
                    let var = self.resolve_or_ghost(name);
                    let delta = if *decrement { -1 } else { 1 };
                    self.emit(Instr::IncVar { var, delta });
                    return;
                }
            }
            Expr::Unary {
                op, expr: inner, ..
            } if matches!(op, UnOp::PreIncr | UnOp::PreDecr) => {
                if let Expr::Ident(name, _) = inner.as_ref() {
                    self.charge(1);
                    let var = self.resolve_or_ghost(name);
                    let delta = if *op == UnOp::PreDecr { -1 } else { 1 };
                    self.emit(Instr::IncVar { var, delta });
                    return;
                }
            }
            Expr::Assign {
                op, target, value, ..
            } if *op != AssignOp::Assign => {
                if let Expr::Ident(name, _) = target.as_ref() {
                    self.charge(1); // the Assign node's eval charge
                    let rv = self.lower_expr(value);
                    let var = self.resolve_or_ghost(name);
                    let bin = match op {
                        AssignOp::AddAssign => BinOp::Add,
                        AssignOp::SubAssign => BinOp::Sub,
                        AssignOp::MulAssign => BinOp::Mul,
                        AssignOp::DivAssign => BinOp::Div,
                        AssignOp::Assign => unreachable!(),
                    };
                    self.emit(Instr::AccumVar {
                        op: bin,
                        var,
                        src: rv,
                    });
                    self.next_reg = entry;
                    return;
                }
            }
            _ => {}
        }
        self.lower_expr(expr);
    }

    fn lower_prefix_incdec(&mut self, target: &Expr, delta: i64) -> u16 {
        let d = self.push_reg();
        let place = self.lower_place(target);
        self.emit_place_read(&place, d);
        let tmp = self.push_reg();
        let idx = self.const_int(delta);
        self.emit(Instr::Const { dst: tmp, idx });
        self.emit(Instr::Bin {
            op: BinOp::Add,
            dst: d,
            lhs: d,
            rhs: tmp,
        });
        self.emit_place_write(&place, d);
        self.next_reg = d + 1;
        d
    }

    /// Lower an lvalue's sub-expressions (leaving them live in registers),
    /// without charging for the place node itself — the oracle's
    /// `resolve_place` does not re-enter `eval` for the target node.
    fn lower_place(&mut self, expr: &Expr) -> LPlace {
        match expr {
            Expr::Ident(name, _) => LPlace::Var(self.resolve_or_ghost(name)),
            Expr::Index { base, index, .. } => {
                if let (Expr::Ident(bname, _), Expr::Ident(iname, _)) =
                    (base.as_ref(), index.as_ref())
                {
                    if let (Some(bvar), Some(ivar)) =
                        (self.fusible_var(bname), self.fusible_var(iname))
                    {
                        self.charge(2); // the two variable-load charges
                        return LPlace::IndexVar {
                            base: bvar,
                            idx: ivar,
                        };
                    }
                }
                let b = self.lower_expr(base);
                let i = self.lower_expr(index);
                LPlace::Index { base: b, idx: i }
            }
            Expr::Unary {
                op: UnOp::Deref,
                expr,
                ..
            } => {
                let p = self.lower_expr(expr);
                LPlace::Deref { ptr: p }
            }
            Expr::Cast { expr, .. } => self.lower_place(expr),
            _ => {
                self.emit(Instr::Trap {
                    fault: RuntimeFault::Segfault,
                });
                LPlace::Invalid
            }
        }
    }

    fn emit_place_read(&mut self, place: &LPlace, dst: u16) {
        match place {
            LPlace::Var(var) => self.emit(Instr::ReadVarPlace { dst, var: *var }),
            LPlace::Index { base, idx } => self.emit(Instr::IndexRead {
                dst,
                base: *base,
                idx: *idx,
            }),
            LPlace::IndexVar { base, idx } => self.emit(Instr::IndexReadVV {
                dst,
                base: *base,
                idx: *idx,
            }),
            LPlace::Deref { ptr } => self.emit(Instr::DerefRead { dst, ptr: *ptr }),
            LPlace::Invalid => {}
        }
    }

    fn emit_place_write(&mut self, place: &LPlace, src: u16) {
        match place {
            LPlace::Var(var) => self.emit(Instr::StoreVar { var: *var, src }),
            LPlace::Index { base, idx } => self.emit(Instr::IndexWrite {
                base: *base,
                idx: *idx,
                src,
            }),
            LPlace::IndexVar { base, idx } => self.emit(Instr::IndexWriteVV {
                base: *base,
                idx: *idx,
                src,
            }),
            LPlace::Deref { ptr } => self.emit(Instr::DerefWrite { ptr: *ptr, src }),
            LPlace::Invalid => {}
        }
    }

    /// The constant-pool index of a numeric literal expression, if it is
    /// one (the fused-operand shapes).
    fn literal_const(&mut self, expr: &Expr) -> Option<u32> {
        match expr {
            Expr::IntLit(v, _) => Some(self.const_int(*v)),
            Expr::FloatLit(v, _) => Some(self.const_value(Value::Float(*v))),
            Expr::CharLit(c, _) => Some(self.const_int(*c as i64)),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // builtins
    // ------------------------------------------------------------------

    /// Lower a builtin call, reproducing the oracle's per-builtin argument
    /// evaluation shape (which arguments are evaluated, in which order).
    fn lower_builtin(&mut self, name: &str, args: &[Expr]) -> u16 {
        let base = self.next_reg;
        match name {
            "malloc" | "acc_malloc" | "omp_target_alloc" => {
                self.lower_alloc_arg(args.first(), base)
            }
            "realloc" => self.lower_alloc_arg(args.get(1), base),
            "calloc" => {
                let argc = self.lower_leading_args(args, 1);
                self.finish_builtin(BuiltinOp::CallocCount, base, argc)
            }
            "free" | "acc_free" | "omp_target_free" => {
                let argc = self.lower_leading_args(args, 1);
                self.finish_builtin(BuiltinOp::Free, base, argc)
            }
            "printf" => {
                let argc = self.lower_leading_args(args, args.len());
                self.finish_builtin(BuiltinOp::Printf, base, argc)
            }
            "puts" => {
                let argc = self.lower_leading_args(args, 1);
                self.finish_builtin(BuiltinOp::Puts, base, argc)
            }
            "putchar" => {
                let argc = self.lower_leading_args(args, 1);
                self.finish_builtin(BuiltinOp::Putchar, base, argc)
            }
            "fprintf" => {
                // The stream argument is not evaluated by the oracle.
                let rest = args.get(1..).unwrap_or(&[]);
                let argc = self.lower_leading_args(rest, rest.len());
                self.finish_builtin(BuiltinOp::Fprintf, base, argc)
            }
            "exit" => {
                let argc = self.lower_leading_args(args, 1);
                self.finish_builtin(BuiltinOp::Exit, base, argc)
            }
            "abort" => self.finish_builtin(BuiltinOp::Abort, base, 0),
            "fabs" | "fabsf" => self.lower_math1(args, base, Math1::Fabs),
            "sqrt" | "sqrtf" => self.lower_math1(args, base, Math1::Sqrt),
            "exp" => self.lower_math1(args, base, Math1::Exp),
            "log" => self.lower_math1(args, base, Math1::Log),
            "sin" => self.lower_math1(args, base, Math1::Sin),
            "cos" => self.lower_math1(args, base, Math1::Cos),
            "tan" => self.lower_math1(args, base, Math1::Tan),
            "floor" => self.lower_math1(args, base, Math1::Floor),
            "ceil" => self.lower_math1(args, base, Math1::Ceil),
            "pow" => {
                let argc = self.lower_leading_args(args, 2);
                self.finish_builtin(BuiltinOp::Pow, base, argc)
            }
            "abs" | "labs" => {
                let argc = self.lower_leading_args(args, 1);
                self.finish_builtin(BuiltinOp::Abs, base, argc)
            }
            "rand" => self.finish_builtin(BuiltinOp::Rand, base, 0),
            "srand" => {
                let argc = self.lower_leading_args(args, 1);
                self.finish_builtin(BuiltinOp::Srand, base, argc)
            }
            "memset" | "memcpy" => {
                if args.len() >= 2 {
                    let argc = self.lower_leading_args(args, 2);
                    let op = if name == "memset" {
                        BuiltinOp::Memset
                    } else {
                        BuiltinOp::Memcpy
                    };
                    self.finish_builtin(op, base, argc)
                } else {
                    // The oracle evaluates nothing unless both are present.
                    self.emit_const_zero(base)
                }
            }
            "strlen" => {
                let argc = self.lower_leading_args(args, 1);
                self.finish_builtin(BuiltinOp::Strlen, base, argc)
            }
            "strcmp" => {
                let argc = self.lower_leading_args(args, 2);
                self.finish_builtin(BuiltinOp::Strcmp, base, argc)
            }
            // Runtime library introspection: no arguments are evaluated.
            "acc_get_num_devices" | "omp_get_num_devices" => {
                self.finish_builtin(BuiltinOp::RtOne, base, 0)
            }
            "acc_get_device_num"
            | "omp_get_team_num"
            | "omp_get_thread_num"
            | "acc_set_device_num"
            | "omp_set_num_threads" => self.finish_builtin(BuiltinOp::RtZero, base, 0),
            "omp_get_num_threads" => self.finish_builtin(BuiltinOp::NumThreads, base, 0),
            "omp_get_num_teams" => self.finish_builtin(BuiltinOp::NumTeams, base, 0),
            "omp_is_initial_device" => self.finish_builtin(BuiltinOp::IsInitialDevice, base, 0),
            "omp_get_wtime" => self.finish_builtin(BuiltinOp::Wtime, base, 0),
            _ => {
                // Implicitly declared function: arguments are evaluated for
                // their effects, the call returns 0.
                for arg in args {
                    self.lower_expr(arg);
                }
                self.emit_const_zero(base)
            }
        }
    }

    /// Evaluate the first `max` arguments (all that exist), in order.
    fn lower_leading_args(&mut self, args: &[Expr], max: usize) -> u16 {
        let n = args.len().min(max);
        for arg in &args[..n] {
            self.lower_expr(arg);
        }
        u16::try_from(n).expect("too many args")
    }

    fn finish_builtin(&mut self, op: BuiltinOp, base: u16, argc: u16) -> u16 {
        self.next_reg = base;
        let d = self.push_reg();
        self.emit(Instr::Builtin {
            dst: d,
            op,
            args: base,
            argc,
        });
        d
    }

    fn emit_const_zero(&mut self, base: u16) -> u16 {
        self.next_reg = base;
        let idx = self.const_int(0);
        let d = self.push_reg();
        self.emit(Instr::Const { dst: d, idx });
        d
    }

    fn lower_math1(&mut self, args: &[Expr], base: u16, op: Math1) -> u16 {
        let argc = self.lower_leading_args(args, 1);
        self.finish_builtin(BuiltinOp::Math(op), base, argc)
    }

    /// `malloc`-family size argument: the oracle recognizes the
    /// `count * sizeof(T)` idiom and evaluates only the count side.
    fn lower_alloc_arg(&mut self, arg: Option<&Expr>, base: u16) -> u16 {
        match arg {
            None => self.finish_builtin(BuiltinOp::AllocCount, base, 0),
            Some(Expr::Binary {
                op: BinOp::Mul,
                lhs,
                rhs,
                ..
            }) if matches!(rhs.as_ref(), Expr::SizeofType { .. }) => {
                self.lower_expr(lhs);
                self.finish_builtin(BuiltinOp::AllocCount, base, 1)
            }
            Some(Expr::Binary {
                op: BinOp::Mul,
                lhs,
                rhs,
                ..
            }) if matches!(lhs.as_ref(), Expr::SizeofType { .. }) => {
                self.lower_expr(rhs);
                self.finish_builtin(BuiltinOp::AllocCount, base, 1)
            }
            Some(expr) => {
                self.lower_expr(expr);
                self.finish_builtin(BuiltinOp::AllocBytes, base, 1)
            }
        }
    }
}
