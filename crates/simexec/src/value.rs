//! Runtime values.

use std::fmt;

/// A runtime value in the interpreter.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// An integer (all integral C types are widened to `i64`).
    Int(i64),
    /// A floating-point number (all floating C types are widened to `f64`).
    Float(f64),
    /// A pointer into a host allocation: `(allocation id, element offset)`.
    Ptr { alloc: usize, offset: i64 },
    /// A string literal value (only used as a `printf` argument).
    Str(String),
    /// An uninitialized cell. Reading one through arithmetic produces
    /// deterministic garbage; dereferencing an uninitialized *pointer*
    /// raises a simulated segmentation fault.
    Uninit,
}

impl Value {
    /// Interpret the value as a boolean per C semantics.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Ptr { .. } => true,
            Value::Str(s) => !s.is_empty(),
            Value::Uninit => true,
        }
    }

    /// Coerce to f64 (garbage for uninitialized cells is handled upstream).
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Int(v) => *v as f64,
            Value::Float(v) => *v,
            Value::Ptr { alloc, offset } => (*alloc as f64) * 4096.0 + *offset as f64,
            Value::Str(_) => 0.0,
            Value::Uninit => f64::NAN,
        }
    }

    /// Coerce to i64.
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            Value::Float(v) => *v as i64,
            Value::Ptr { alloc, offset } => (*alloc as i64) * 4096 + offset,
            Value::Str(_) => 0,
            Value::Uninit => i64::MIN,
        }
    }

    /// True if either operand is a float (binary ops promote to float).
    pub fn is_float(&self) -> bool {
        matches!(self, Value::Float(_))
    }

    /// True for the uninitialized marker.
    pub fn is_uninit(&self) -> bool {
        matches!(self, Value::Uninit)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Ptr { alloc, offset } => write!(f, "0x{:x}", alloc * 4096 + *offset as usize),
            Value::Str(s) => write!(f, "{s}"),
            Value::Uninit => write!(f, "<uninit>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_follows_c() {
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(3).truthy());
        assert!(!Value::Float(0.0).truthy());
        assert!(Value::Float(0.5).truthy());
        assert!(Value::Ptr {
            alloc: 1,
            offset: 0
        }
        .truthy());
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(7).as_f64(), 7.0);
        assert_eq!(Value::Float(2.9).as_i64(), 2);
        assert!(Value::Uninit.as_f64().is_nan());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
    }
}
