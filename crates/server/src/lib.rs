//! `vv-server` — a resident, multi-tenant validation daemon.
//!
//! The paper's validation workflow is a service: many compiler-validation
//! campaigns sharing one expensive compile/execute/judge substrate. This
//! crate keeps a [`vv_pipeline::ValidationService`] substrate *resident* —
//! session-interned compile frontends, one content-addressed compile cache
//! and (optionally) one durable [`vv_store::ArtifactStore`] — and exposes
//! it over a hand-rolled binary protocol, so campaigns from many clients
//! reuse warm state instead of paying cold-start per run.
//!
//! * [`server`] — the daemon: per-tenant bounded queues (admission
//!   control + backpressure), fair round-robin scheduling onto a worker
//!   pool, cancellation on client disconnect, graceful drain + store seal
//!   on shutdown.
//! * [`client`] — the library client: blocking streaming-results
//!   iterator, campaign submission, stats and shutdown requests.
//! * [`transport`] — the byte-stream abstraction: TCP, or an in-process
//!   loopback pipe so every protocol path is testable without sockets.
//! * [`protocol`] — message codecs over [`vv_store::wire`].
//! * [`stats`] — the live server statistics snapshot.
//!
//! The `vv-server` binary wraps all of this in `serve` / `submit` /
//! `stats` / `shutdown` subcommands.
//!
//! # Protocol specification
//!
//! Everything on the wire is **little-endian**; strings are a `u32`
//! length followed by UTF-8 bytes; checksums are the 64-bit word-folded
//! FNV-1a of [`vv_store::wire::fnv1a`] (spec and pinned vectors there).
//! There is no serde anywhere — the same hand-rolled [`vv_store::wire`]
//! primitives that define the store's on-disk format define this
//! protocol.
//!
//! ## Framing
//!
//! Both directions carry a sequence of frames, each shaped exactly like a
//! store journal frame:
//!
//! ```text
//! frame:
//!   len      u32    byte length of `payload` (0 < len ≤ 8 MiB)
//!   checksum u64    fnv1a(payload)
//!   payload  bytes  one message, first byte = message type
//! ```
//!
//! A frame that fails the length bound or the checksum is unrecoverable
//! for the connection (the stream can no longer be trusted): the server
//! best-effort sends [`protocol::ErrorCode::Protocol`] and closes.
//!
//! ## Requests (client → server)
//!
//! ```text
//! 0x01 HELLO       protocol u32, tenant str
//! 0x02 OPEN_JOB    job u32, mode u8, style u8, profile u8, judge_seed u64
//! 0x03 CASE        job u32, seq u64, id str, source str, lang u8, model u8
//! 0x04 FINISH_JOB  job u32
//! 0x05 STATS       (empty)
//! 0x06 SHUTDOWN    (empty)
//! ```
//!
//! `HELLO` must be the first message on a connection; `protocol` is
//! [`protocol::PROTOCOL_VERSION`]. The tenant name keys the server-side
//! queue: every connection claiming the same name shares one queue, one
//! admission budget and one fairness slot.
//!
//! `OPEN_JOB` declares a campaign. `job` is a client-chosen id, unique
//! per connection. The enum bytes are defined in [`protocol`]: `mode`
//! (early-exit 0 / record-all 1), `style` (direct 0 / agent-direct 1 /
//! agent-indirect 2) and `profile` (an id from the built-in judge
//! calibration registry, [`protocol::ProfileId`]). A scheduling strategy
//! is deliberately **not** part of the spec: scheduling belongs to the
//! server (tenant-fair worker pool), and the pipeline's strategy-parity
//! law makes records independent of it.
//!
//! `CASE` submits one work item under an open job; `seq` is the client's
//! submission ordinal, echoed in the matching `RECORD` so the client can
//! restore submission order. `FINISH_JOB` marks the job's end; the server
//! answers `JOB_DONE` once every accepted case has been answered.
//!
//! ## Responses (server → client)
//!
//! ```text
//! 0x81 HELLO_OK     protocol u32, server str
//! 0x82 RECORD       job u32, seq u64, record bytes
//! 0x83 JOB_DONE     job u32, stats bytes
//! 0x84 STATS_OK     snapshot (see vv_server::stats)
//! 0x85 SHUTDOWN_OK  (empty)
//! 0x8F ERROR        code u8, message str
//! ```
//!
//! `RECORD.record` is the [`vv_pipeline::encode_record`] encoding of the
//! completed [`vv_pipeline::CaseRecord`] — the same bytes the store
//! persists, so server-side campaigns are replayable and byte-comparable
//! against direct in-process runs. `JOB_DONE.stats` is the
//! [`vv_pipeline::PipelineStats`] wire encoding with this job's counters.
//! Records of one job arrive in completion order (not submission order),
//! interleaved with nothing else for that client connection.
//!
//! ## Tenancy, backpressure, cancellation
//!
//! Each tenant owns one bounded queue (admission control) and one
//! in-flight budget. A `CASE` for a full queue **blocks the connection's
//! reader** — the client's sends stop being drained, its transport
//! buffers fill, and the backpressure propagates into the client's
//! feeder thread: the bounded-channel discipline of the pipeline,
//! stretched over the wire. Workers pick cases round-robin across
//! tenants, so a tenant flooding its queue delays itself, not others.
//!
//! A client that disconnects mid-campaign cancels its own jobs: queued
//! cases are purged, in-flight cases finish but are discarded, and no
//! other tenant is affected.
//!
//! `SHUTDOWN` (or [`server::ServerHandle::shutdown`], the in-process
//! SIGTERM-equivalent) moves the server to *draining*: new `OPEN_JOB`s
//! are refused with [`protocol::ErrorCode::Draining`], queued and
//! in-flight work completes, open journals group-commit, the store seals
//! (flush + manifest commit) and releases its lockfile, and only then is
//! `SHUTDOWN_OK` sent — after which the directory passes `vv-store fsck`
//! clean.

pub mod client;
pub mod protocol;
pub mod server;
pub mod stats;
pub mod tenant;
pub mod transport;

pub use client::{Client, ClientError, Job};
pub use protocol::{JobSpec, ProfileId, ProtocolError, PROTOCOL_VERSION};
pub use server::{Server, ServerConfig, ServerHandle};
pub use stats::ServerStats;
pub use transport::{duplex, Conn, PipeEnd};
