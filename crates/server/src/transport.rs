//! Byte-stream transports: TCP and an in-process loopback pipe.
//!
//! The protocol runs over any [`Conn`] — a cloneable, shutdown-capable
//! `Read + Write` byte stream. [`std::net::TcpStream`] implements it
//! directly; [`duplex`] provides a bounded in-memory pipe with the same
//! observable semantics (EOF on peer close, `BrokenPipe` on writes to a
//! closed peer, blocking writes when the peer stops draining), so every
//! protocol and backpressure path is unit-testable without sockets.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};

/// A connection byte stream: blocking reads/writes plus the two
/// capabilities the server and client need beyond `Read + Write` — an
/// independently usable second handle (reader and writer live on
/// different threads) and an explicit full shutdown.
pub trait Conn: Read + Write + Send {
    /// A second handle to the same stream (like `TcpStream::try_clone`).
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>>;

    /// Close both directions: pending and future reads see EOF, writes
    /// fail with `BrokenPipe`, on this handle and every clone.
    fn shutdown_conn(&self);
}

impl Conn for TcpStream {
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn shutdown_conn(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

/// One direction of the loopback pipe: a bounded byte queue.
struct PipeBuf {
    state: Mutex<PipeState>,
    /// Signalled when bytes (or EOF) become available to the reader.
    readable: Condvar,
    /// Signalled when space (or closure) becomes visible to the writer.
    writable: Condvar,
    capacity: usize,
}

struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

impl PipeBuf {
    fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(PipeState {
                buf: VecDeque::new(),
                closed: false,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity: capacity.max(1),
        })
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.closed = true;
        self.readable.notify_all();
        self.writable.notify_all();
    }

    fn read(&self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if !state.buf.is_empty() {
                let n = out.len().min(state.buf.len());
                for slot in out.iter_mut().take(n) {
                    *slot = state.buf.pop_front().expect("n bounded by len");
                }
                self.writable.notify_all();
                return Ok(n);
            }
            if state.closed {
                return Ok(0); // EOF: closed and drained
            }
            state = self.readable.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn write(&self, mut bytes: &[u8]) -> io::Result<()> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        while !bytes.is_empty() {
            if state.closed {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "loopback pipe closed",
                ));
            }
            let space = self.capacity.saturating_sub(state.buf.len());
            if space == 0 {
                state = self.writable.wait(state).unwrap_or_else(|p| p.into_inner());
                continue;
            }
            let n = space.min(bytes.len());
            state.buf.extend(&bytes[..n]);
            bytes = &bytes[n..];
            self.readable.notify_all();
        }
        Ok(())
    }
}

/// Closes both pipe directions when the last clone of one end drops —
/// the loopback equivalent of a socket close.
struct EndToken {
    incoming: Arc<PipeBuf>,
    outgoing: Arc<PipeBuf>,
}

impl Drop for EndToken {
    fn drop(&mut self) {
        self.incoming.close();
        self.outgoing.close();
    }
}

/// One end of an in-process bounded duplex pipe (see [`duplex`]).
///
/// Clones share the end's identity: dropping the *last* clone closes the
/// connection, exactly like dropping the last `TcpStream` handle.
pub struct PipeEnd {
    incoming: Arc<PipeBuf>,
    outgoing: Arc<PipeBuf>,
    _token: Arc<EndToken>,
}

impl Clone for PipeEnd {
    fn clone(&self) -> Self {
        Self {
            incoming: Arc::clone(&self.incoming),
            outgoing: Arc::clone(&self.outgoing),
            _token: Arc::clone(&self._token),
        }
    }
}

impl std::fmt::Debug for PipeEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipeEnd").finish_non_exhaustive()
    }
}

impl Read for PipeEnd {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        self.incoming.read(out)
    }
}

impl Write for PipeEnd {
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        self.outgoing.write(bytes)?;
        Ok(bytes.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Conn for PipeEnd {
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.clone()))
    }

    fn shutdown_conn(&self) {
        self.incoming.close();
        self.outgoing.close();
    }
}

/// A bounded in-memory duplex byte pipe: two connected [`PipeEnd`]s, each
/// direction holding at most `capacity` bytes. A writer whose peer stops
/// reading blocks once the buffer fills — the transport-level
/// backpressure the protocol's flow control is built on.
pub fn duplex(capacity: usize) -> (PipeEnd, PipeEnd) {
    let ab = PipeBuf::new(capacity);
    let ba = PipeBuf::new(capacity);
    let a = PipeEnd {
        incoming: Arc::clone(&ba),
        outgoing: Arc::clone(&ab),
        _token: Arc::new(EndToken {
            incoming: Arc::clone(&ba),
            outgoing: Arc::clone(&ab),
        }),
    };
    let b = PipeEnd {
        incoming: Arc::clone(&ab),
        outgoing: Arc::clone(&ba),
        _token: Arc::new(EndToken {
            incoming: ab,
            outgoing: ba,
        }),
    };
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bytes_cross_the_pipe_in_order() {
        let (mut a, mut b) = duplex(8);
        let writer = std::thread::spawn(move || {
            a.write_all(b"hello across a tiny buffer").unwrap();
            a // keep the end alive until the reader is done
        });
        let mut got = vec![0u8; 26];
        b.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello across a tiny buffer");
        writer.join().unwrap();
    }

    #[test]
    fn dropping_the_last_clone_is_eof_for_the_peer() {
        let (a, mut b) = duplex(64);
        let a2 = a.clone();
        drop(a);
        // A live clone keeps the connection open.
        let mut probe = [0u8; 1];
        let reader = std::thread::spawn(move || {
            let n = b.read(&mut probe).unwrap();
            assert_eq!(n, 0, "EOF after last clone dropped");
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(a2);
        reader.join().unwrap();
    }

    #[test]
    fn writes_to_a_closed_peer_fail_with_broken_pipe() {
        let (mut a, b) = duplex(4);
        drop(b);
        let err = a.write_all(b"doomed payload").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn full_buffer_blocks_the_writer_until_drained() {
        let (mut a, mut b) = duplex(4);
        let writer = std::thread::spawn(move || {
            a.write_all(b"0123456789").unwrap(); // > capacity: must block
            a
        });
        std::thread::sleep(Duration::from_millis(20));
        let mut got = vec![0u8; 10];
        b.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"0123456789");
        writer.join().unwrap();
    }

    #[test]
    fn shutdown_unblocks_a_blocked_writer() {
        let (mut a, b) = duplex(2);
        let b_handle = b.clone();
        let writer = std::thread::spawn(move || a.write_all(&[0u8; 100]).unwrap_err());
        std::thread::sleep(Duration::from_millis(20));
        b_handle.shutdown_conn();
        assert_eq!(writer.join().unwrap().kind(), io::ErrorKind::BrokenPipe);
        drop(b);
    }
}
