//! The library client: campaign submission with streamed results.
//!
//! A [`Client`] speaks the protocol over any [`Conn`] — a `TcpStream`
//! from [`Client::connect`], or a loopback [`crate::transport::PipeEnd`]
//! through [`Client::over`]. [`Client::submit`] opens a job and feeds
//! its cases from a background thread (so server backpressure never
//! deadlocks against result reading), returning a [`Job`]: a blocking
//! iterator over `(seq, CaseRecord)` pairs that ends when the server's
//! `JOB_DONE` arrives. [`Job::into_run`] collects the stream back into a
//! [`PipelineRun`] in submission order — byte-comparable, record by
//! record, with a direct in-process [`vv_pipeline::ValidationService`]
//! run of the same items.
//!
//! Dropping a [`Job`] mid-stream deliberately kills the connection:
//! results already in flight cannot be re-synced, and the closed socket
//! is exactly the signal the server turns into job cancellation.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use vv_pipeline::{decode_record, CaseRecord, PipelineRun, PipelineStats, WorkItem};

use crate::protocol::{
    read_frame, write_frame, ErrorCode, JobSpec, ProtocolError, Request, Response, PROTOCOL_VERSION,
};
use crate::stats::ServerStats;
use crate::transport::Conn;

/// Anything that can go wrong on the client side of the protocol.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(io::Error),
    /// The server sent something undecodable or out of protocol.
    Protocol(ProtocolError),
    /// The server refused or aborted the request.
    Server {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The connection was poisoned by an earlier failure (or an
    /// abandoned [`Job`]) and cannot be reused.
    Broken,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "client i/o error: {err}"),
            ClientError::Protocol(err) => write!(f, "client protocol error: {err}"),
            ClientError::Server { code, message } => {
                write!(f, "server refused ({code:?}): {message}")
            }
            ClientError::Broken => write!(f, "connection is broken"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(err) => Some(err),
            ClientError::Protocol(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        ClientError::Io(err)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(err: ProtocolError) -> Self {
        ClientError::Protocol(err)
    }
}

/// A connected, handshaken protocol client. See the [module docs](self).
pub struct Client {
    writer: Arc<Mutex<Box<dyn Conn>>>,
    reader: Box<dyn Conn>,
    buf: Vec<u8>,
    next_job: u32,
    server: String,
    broken: bool,
}

impl Client {
    /// Connect over TCP and perform the `HELLO` handshake as `tenant`.
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Self::over(Box::new(stream), tenant)
    }

    /// Handshake as `tenant` over an already-established connection
    /// (e.g. a loopback [`crate::transport::PipeEnd`]).
    pub fn over(conn: Box<dyn Conn>, tenant: &str) -> Result<Self, ClientError> {
        let writer = Arc::new(Mutex::new(conn.try_clone_conn()?));
        let mut client = Self {
            writer,
            reader: conn,
            buf: Vec::new(),
            next_job: 1,
            server: String::new(),
            broken: false,
        };
        client.send(&Request::Hello {
            protocol: PROTOCOL_VERSION,
            tenant: tenant.to_string(),
        })?;
        match client.read_response()? {
            Response::HelloOk { protocol, server } if protocol == PROTOCOL_VERSION => {
                client.server = server;
                Ok(client)
            }
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Protocol(ProtocolError::Malformed(
                "expected HELLO_OK",
            ))),
        }
    }

    /// The server identity from the handshake.
    pub fn server_name(&self) -> &str {
        &self.server
    }

    /// Open a job for `items` under `spec`. The cases are fed from a
    /// background thread; read the returned [`Job`] to stream results.
    pub fn submit(&mut self, spec: JobSpec, items: Vec<WorkItem>) -> Result<Job<'_>, ClientError> {
        if self.broken {
            return Err(ClientError::Broken);
        }
        let id = self.next_job;
        self.next_job += 1;
        self.send(&Request::OpenJob { job: id, spec })?;
        let expected = items.len();
        let writer = Arc::clone(&self.writer);
        let feeder = std::thread::spawn(move || {
            for (seq, item) in items.into_iter().enumerate() {
                let case = Request::Case {
                    job: id,
                    seq: seq as u64,
                    item,
                };
                if write_frame(&mut **writer.lock(), &case.encode()).is_err() {
                    return; // dead connection: the reader side reports it
                }
            }
            let _ = write_frame(
                &mut **writer.lock(),
                &Request::FinishJob { job: id }.encode(),
            );
        });
        Ok(Job {
            client: self,
            id,
            expected,
            feeder: Some(feeder),
            stats: None,
            finished: false,
            clean: false,
        })
    }

    /// Request a live [`ServerStats`] snapshot.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        if self.broken {
            return Err(ClientError::Broken);
        }
        self.send(&Request::Stats)?;
        match self.read_response()? {
            Response::StatsOk(snapshot) => Ok(snapshot),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => {
                self.broken = true;
                Err(ClientError::Protocol(ProtocolError::Malformed(
                    "expected STATS_OK",
                )))
            }
        }
    }

    /// Ask the server to drain, seal its store and stop. Blocks until the
    /// drain completes (`SHUTDOWN_OK`), consuming the connection.
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        if self.broken {
            return Err(ClientError::Broken);
        }
        self.send(&Request::Shutdown)?;
        match self.read_response()? {
            Response::ShutdownOk => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Protocol(ProtocolError::Malformed(
                "expected SHUTDOWN_OK",
            ))),
        }
    }

    fn send(&self, request: &Request) -> Result<(), ClientError> {
        write_frame(&mut **self.writer.lock(), &request.encode())?;
        Ok(())
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        match read_frame(&mut self.reader, &mut self.buf) {
            Ok(true) => Response::decode(&self.buf).map_err(ClientError::Protocol),
            Ok(false) => {
                self.broken = true;
                Err(ClientError::Broken)
            }
            Err(err) => {
                self.broken = true;
                Err(ClientError::Protocol(err))
            }
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        // Make the disconnect prompt (loopback EOF / socket close) so the
        // server's reader thread never lingers.
        self.reader.shutdown_conn();
    }
}

/// An in-flight campaign: a blocking iterator over completed cases.
///
/// Yields `(seq, record)` pairs in **completion order** — `seq` is the
/// submission ordinal echoed by the server. Iteration ends (`None`) when
/// `JOB_DONE` arrives; [`Job::into_run`] is the usual way to consume it.
///
/// Dropping the job before `JOB_DONE` poisons the client and closes the
/// connection — the server cancels the remaining work.
pub struct Job<'a> {
    client: &'a mut Client,
    id: u32,
    expected: usize,
    feeder: Option<JoinHandle<()>>,
    stats: Option<PipelineStats>,
    finished: bool,
    clean: bool,
}

impl Job<'_> {
    /// How many cases were submitted for this job.
    pub fn expected(&self) -> usize {
        self.expected
    }

    /// This job's aggregate [`PipelineStats`] (available once iteration
    /// saw `JOB_DONE`).
    pub fn stats(&self) -> Option<&PipelineStats> {
        self.stats.as_ref()
    }

    /// Drain the stream and rebuild the campaign as a [`PipelineRun`],
    /// records restored to submission order.
    pub fn into_run(mut self) -> Result<PipelineRun, ClientError> {
        let mut indexed = Vec::with_capacity(self.expected);
        for result in self.by_ref() {
            indexed.push(result?);
        }
        let stats = self.stats.take().ok_or(ClientError::Broken)?;
        self.clean = true; // stats moved out, but the stream ended cleanly
        indexed.sort_by_key(|(seq, _)| *seq);
        let records = indexed.into_iter().map(|(_, record)| record).collect();
        Ok(PipelineRun::new(records, stats))
    }
}

impl Iterator for Job<'_> {
    type Item = Result<(u64, CaseRecord), ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        let response = match self.client.read_response() {
            Ok(response) => response,
            Err(err) => {
                self.finished = true;
                return Some(Err(err));
            }
        };
        match response {
            Response::Record { job, seq, record } if job == self.id => {
                match decode_record(&record) {
                    Some(record) => Some(Ok((seq, record))),
                    None => {
                        self.finished = true;
                        Some(Err(ClientError::Protocol(ProtocolError::Malformed(
                            "undecodable case record",
                        ))))
                    }
                }
            }
            Response::JobDone { job, stats } if job == self.id => {
                self.stats = Some(stats);
                self.finished = true;
                self.clean = true;
                if let Some(feeder) = self.feeder.take() {
                    let _ = feeder.join();
                }
                None
            }
            Response::Error { code, message } => {
                self.finished = true;
                Some(Err(ClientError::Server { code, message }))
            }
            _ => {
                self.finished = true;
                Some(Err(ClientError::Protocol(ProtocolError::Malformed(
                    "unexpected mid-job response",
                ))))
            }
        }
    }
}

impl Drop for Job<'_> {
    fn drop(&mut self) {
        if !self.clean {
            // Abandoned or failed mid-stream: in-flight results cannot be
            // re-synced. Kill the connection — the server turns the
            // disconnect into cancellation of this job.
            self.client.broken = true;
            self.client.reader.shutdown_conn();
        }
        if let Some(feeder) = self.feeder.take() {
            let _ = feeder.join();
        }
    }
}
