//! The live server statistics snapshot served by the `STATS` request.
//!
//! Everything a `STATS_OK` frame carries: uptime, connection count, the
//! merged [`PipelineStats`] of every case ever served (latency histogram
//! included), the resident compile cache and artifact store counters,
//! and one row per tenant. The wire encoding composes the
//! [`PipelineStats`] codec with plain counters; rows are sorted by
//! tenant name so a snapshot encodes canonically.

use std::fmt;

use vv_pipeline::PipelineStats;
use vv_store::wire::{Reader, WireError, Writer};

/// Resident compile-cache counters (a copy of
/// [`vv_simcompiler::CacheStats`], in wire-friendly widths).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Cache hits (memory or disk tier).
    pub hits: u64,
    /// Cache misses (fresh compiles).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: u64,
}

impl CacheSnapshot {
    /// Hit fraction in `[0, 1]` (0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Shared artifact-store counters (a copy of [`vv_store::StoreStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Records in the index (durable + pending).
    pub records: u64,
    /// Records accepted but not yet sealed into a segment.
    pub pending: u64,
    /// Sealed segments on disk.
    pub segments: u64,
    /// Lookups that found a record.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
}

impl StoreSnapshot {
    /// Hit fraction in `[0, 1]` (0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One tenant's live queue state and cumulative counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// The tenant name from the `HELLO` handshake.
    pub name: String,
    /// Cases queued right now.
    pub queued: u64,
    /// Cases being processed right now.
    pub in_flight: u64,
    /// Cases ever accepted.
    pub submitted: u64,
    /// Cases ever completed (including discarded results of cancelled
    /// jobs).
    pub completed: u64,
    /// Queued cases purged by cancellation.
    pub cancelled: u64,
    /// Jobs ever opened.
    pub jobs_opened: u64,
    /// Jobs that ran to `JOB_DONE`.
    pub jobs_finished: u64,
}

/// The full snapshot answered to a `STATS` request.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServerStats {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Connections open right now.
    pub connections: u64,
    /// True once a shutdown drain has begun.
    pub draining: bool,
    /// Validation worker threads in the daemon's pool.
    pub workers: u64,
    /// The [`vv_pipeline::ExecutionStrategy`] label of the pooled
    /// services (per-case records are identical under every strategy by
    /// the parity laws; this reports the configured scheduling).
    pub strategy: String,
    /// Merged statistics of every case ever served, across all tenants
    /// and jobs (cache/store provenance is tracked by the resident pools
    /// below, not per case).
    pub served: PipelineStats,
    /// The resident compile cache shared by every job.
    pub compile_cache: CacheSnapshot,
    /// The shared artifact store, when the server runs with one.
    pub store: Option<StoreSnapshot>,
    /// Per-tenant rows, sorted by name.
    pub tenants: Vec<TenantSnapshot>,
}

impl ServerStats {
    /// Append the wire encoding (see the [crate docs](crate) for the
    /// protocol context).
    pub fn encode_into(&self, w: &mut Writer) {
        w.put_u64(self.uptime_ms);
        w.put_u64(self.connections);
        w.put_u8(self.draining as u8);
        w.put_u64(self.workers);
        w.put_str(&self.strategy);
        self.served.encode_into(w);
        w.put_u64(self.compile_cache.hits);
        w.put_u64(self.compile_cache.misses);
        w.put_u64(self.compile_cache.entries);
        match &self.store {
            None => w.put_u8(0),
            Some(store) => {
                w.put_u8(1);
                w.put_u64(store.records);
                w.put_u64(store.pending);
                w.put_u64(store.segments);
                w.put_u64(store.hits);
                w.put_u64(store.misses);
            }
        }
        w.put_u32(self.tenants.len() as u32);
        for tenant in &self.tenants {
            w.put_str(&tenant.name);
            w.put_u64(tenant.queued);
            w.put_u64(tenant.in_flight);
            w.put_u64(tenant.submitted);
            w.put_u64(tenant.completed);
            w.put_u64(tenant.cancelled);
            w.put_u64(tenant.jobs_opened);
            w.put_u64(tenant.jobs_finished);
        }
    }

    /// Decode a snapshot encoded by [`ServerStats::encode_into`].
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let uptime_ms = r.get_u64("stats uptime")?;
        let connections = r.get_u64("stats connections")?;
        let draining = match r.get_u8("stats draining")? {
            0 => false,
            1 => true,
            _ => {
                return Err(WireError {
                    context: "stats draining",
                })
            }
        };
        let workers = r.get_u64("stats workers")?;
        let strategy = r.get_str("stats strategy")?.to_string();
        let served = PipelineStats::decode_from(r)?;
        let compile_cache = CacheSnapshot {
            hits: r.get_u64("stats cache hits")?,
            misses: r.get_u64("stats cache misses")?,
            entries: r.get_u64("stats cache entries")?,
        };
        let store = match r.get_u8("stats store presence")? {
            0 => None,
            1 => Some(StoreSnapshot {
                records: r.get_u64("stats store records")?,
                pending: r.get_u64("stats store pending")?,
                segments: r.get_u64("stats store segments")?,
                hits: r.get_u64("stats store hits")?,
                misses: r.get_u64("stats store misses")?,
            }),
            _ => {
                return Err(WireError {
                    context: "stats store presence",
                })
            }
        };
        let rows = r.get_u32("stats tenant count")?;
        let mut tenants = Vec::with_capacity(rows.min(4096) as usize);
        for _ in 0..rows {
            tenants.push(TenantSnapshot {
                name: r.get_str("stats tenant name")?.to_string(),
                queued: r.get_u64("stats tenant queued")?,
                in_flight: r.get_u64("stats tenant in-flight")?,
                submitted: r.get_u64("stats tenant submitted")?,
                completed: r.get_u64("stats tenant completed")?,
                cancelled: r.get_u64("stats tenant cancelled")?,
                jobs_opened: r.get_u64("stats tenant jobs opened")?,
                jobs_finished: r.get_u64("stats tenant jobs finished")?,
            });
        }
        Ok(Self {
            uptime_ms,
            connections,
            draining,
            workers,
            strategy,
            served,
            compile_cache,
            store,
            tenants,
        })
    }
}

impl fmt::Display for ServerStats {
    /// The human snapshot the `vv-server stats` subcommand prints.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "uptime {:.1}s | {} connection(s) | {} worker(s), {} | {}",
            self.uptime_ms as f64 / 1000.0,
            self.connections,
            self.workers,
            self.strategy,
            if self.draining { "draining" } else { "serving" }
        )?;
        writeln!(f, "served: {}", self.served)?;
        writeln!(
            f,
            "compile cache: {} hits / {} misses ({:.1}% hit), {} entries",
            self.compile_cache.hits,
            self.compile_cache.misses,
            100.0 * self.compile_cache.hit_rate(),
            self.compile_cache.entries,
        )?;
        match &self.store {
            None => writeln!(f, "store: none")?,
            Some(store) => writeln!(
                f,
                "store: {} records ({} pending) in {} segments, {} hits / {} misses ({:.1}% hit)",
                store.records,
                store.pending,
                store.segments,
                store.hits,
                store.misses,
                100.0 * store.hit_rate(),
            )?,
        }
        write!(f, "tenants: {}", self.tenants.len())?;
        for tenant in &self.tenants {
            write!(
                f,
                "\n  {}: {} queued, {} in-flight, {} submitted, {} completed, {} cancelled, jobs {}/{}",
                tenant.name,
                tenant.queued,
                tenant.in_flight,
                tenant.submitted,
                tenant.completed,
                tenant.cancelled,
                tenant.jobs_finished,
                tenant.jobs_opened,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_snapshot() -> ServerStats {
        let mut served = PipelineStats {
            submitted: 500,
            compiled: 500,
            compile_failures: 21,
            executed: 479,
            exec_failures: 18,
            judged: 461,
            judge_rejections: 77,
            ..Default::default()
        };
        for i in 0..461 {
            served.observe_judge_latency_ms(900.0 + 13.0 * (i % 53) as f64);
        }
        ServerStats {
            uptime_ms: 123_456,
            connections: 3,
            draining: true,
            workers: 4,
            strategy: "pipelined".into(),
            served,
            compile_cache: CacheSnapshot {
                hits: 410,
                misses: 90,
                entries: 88,
            },
            store: Some(StoreSnapshot {
                records: 500,
                pending: 12,
                segments: 3,
                hits: 40,
                misses: 460,
            }),
            tenants: vec![
                TenantSnapshot {
                    name: "acme".into(),
                    queued: 4,
                    in_flight: 2,
                    submitted: 300,
                    completed: 294,
                    cancelled: 0,
                    jobs_opened: 3,
                    jobs_finished: 2,
                },
                TenantSnapshot {
                    name: "zeta".into(),
                    submitted: 200,
                    completed: 200,
                    cancelled: 17,
                    jobs_opened: 2,
                    jobs_finished: 1,
                    ..Default::default()
                },
            ],
        }
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        for snapshot in [ServerStats::default(), busy_snapshot()] {
            let mut w = Writer::new();
            snapshot.encode_into(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let decoded = ServerStats::decode_from(&mut r).unwrap();
            assert!(r.is_exhausted());
            assert_eq!(decoded, snapshot);
        }
    }

    #[test]
    fn snapshot_truncation_fails_cleanly() {
        let mut w = Writer::new();
        busy_snapshot().encode_into(&mut w);
        let bytes = w.into_bytes();
        for cut in (0..bytes.len()).step_by(7) {
            assert!(
                ServerStats::decode_from(&mut Reader::new(&bytes[..cut])).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn display_mentions_the_headlines() {
        let shown = busy_snapshot().to_string();
        assert!(shown.contains("draining"), "{shown}");
        assert!(shown.contains("4 worker(s), pipelined"), "{shown}");
        assert!(shown.contains("compile cache"), "{shown}");
        assert!(shown.contains("acme"), "{shown}");
        assert!(shown.contains("zeta"), "{shown}");
    }
}
