//! Per-tenant admission control: a bounded queue plus an in-flight budget.
//!
//! Every tenant (keyed by the `HELLO` name) owns exactly one [`Tenant`].
//! Its queue is the *admission* bound: an [`enqueue`](Tenant::enqueue)
//! into a full queue blocks the calling connection-reader thread, which
//! stops draining that client's socket — backpressure propagates over
//! the transport instead of growing server memory. The in-flight budget
//! is the *fairness* bound: a scheduler honouring [`Tenant::next`] can
//! never hand one tenant more than `max_in_flight` workers at once, no
//! matter how deep its queue is.
//!
//! The element type is generic so the discipline is testable on plain
//! integers; the server instantiates it with its queued-case type.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

use crate::stats::TenantSnapshot;

/// One tenant's bounded queue, in-flight budget and lifetime counters.
pub struct Tenant<T> {
    name: String,
    capacity: usize,
    max_in_flight: usize,
    queue: Mutex<VecDeque<T>>,
    /// Signalled whenever queue space frees (pop or purge).
    space: Condvar,
    in_flight: AtomicUsize,
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    jobs_opened: AtomicU64,
    jobs_finished: AtomicU64,
}

impl<T> Tenant<T> {
    /// A new tenant with an empty queue. Bounds are clamped to ≥ 1.
    pub fn new(name: impl Into<String>, capacity: usize, max_in_flight: usize) -> Self {
        Self {
            name: name.into(),
            capacity: capacity.max(1),
            max_in_flight: max_in_flight.max(1),
            queue: Mutex::new(VecDeque::new()),
            space: Condvar::new(),
            in_flight: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            jobs_opened: AtomicU64::new(0),
            jobs_finished: AtomicU64::new(0),
        }
    }

    /// The tenant's `HELLO` name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Lock the queue, recovering from poisoning (a panicked holder
    /// cannot corrupt a `VecDeque` invariant we rely on).
    fn lock(&self) -> MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admit one case, blocking while the queue is full. This runs on the
    /// connection's reader thread — blocking here is the backpressure.
    pub fn enqueue(&self, case: T) {
        let mut queue = self.lock();
        while queue.len() >= self.capacity {
            queue = self.space.wait(queue).unwrap_or_else(|p| p.into_inner());
        }
        queue.push_back(case);
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Pop the next case if the in-flight budget allows, claiming one
    /// in-flight slot. The caller must balance every `Some` with a
    /// [`Tenant::case_done`].
    pub fn next(&self) -> Option<T> {
        let mut queue = self.lock();
        if self.in_flight.load(Ordering::Relaxed) >= self.max_in_flight {
            return None;
        }
        let case = queue.pop_front()?;
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        self.space.notify_all();
        Some(case)
    }

    /// Release an in-flight slot claimed by [`Tenant::next`].
    pub fn case_done(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop every queued case failing `keep`, count them as cancelled and
    /// wake blocked enqueuers. Returns how many were removed.
    pub fn purge(&self, mut keep: impl FnMut(&T) -> bool) -> usize {
        let mut queue = self.lock();
        let before = queue.len();
        queue.retain(|case| keep(case));
        let removed = before - queue.len();
        if removed > 0 {
            self.cancelled.fetch_add(removed as u64, Ordering::Relaxed);
            self.space.notify_all();
        }
        removed
    }

    /// Cases queued right now.
    pub fn queued(&self) -> usize {
        self.lock().len()
    }

    /// Count a job opened under this tenant.
    pub fn note_job_opened(&self) {
        self.jobs_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a job that ran to `JOB_DONE`.
    pub fn note_job_finished(&self) {
        self.jobs_finished.fetch_add(1, Ordering::Relaxed);
    }

    /// The stats row this tenant contributes to a [`crate::ServerStats`].
    pub fn snapshot(&self) -> TenantSnapshot {
        TenantSnapshot {
            name: self.name.clone(),
            queued: self.queued() as u64,
            in_flight: self.in_flight.load(Ordering::Relaxed) as u64,
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            jobs_opened: self.jobs_opened.load(Ordering::Relaxed),
            jobs_finished: self.jobs_finished.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_within_the_budget() {
        let tenant = Tenant::new("t", 8, 2);
        for n in 0..4u32 {
            tenant.enqueue(n);
        }
        assert_eq!(tenant.next(), Some(0));
        assert_eq!(tenant.next(), Some(1));
        // Budget of 2 exhausted: nothing more until a case completes.
        assert_eq!(tenant.next(), None);
        tenant.case_done();
        assert_eq!(tenant.next(), Some(2));
        assert_eq!(tenant.snapshot().submitted, 4);
    }

    #[test]
    fn a_full_queue_blocks_the_enqueuer_until_space_frees() {
        let tenant = Arc::new(Tenant::new("t", 2, 8));
        tenant.enqueue(0u32);
        tenant.enqueue(1);
        let blocked = {
            let tenant = Arc::clone(&tenant);
            std::thread::spawn(move || tenant.enqueue(2))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(tenant.queued(), 2, "third enqueue must be blocked");
        assert_eq!(tenant.next(), Some(0));
        blocked.join().unwrap();
        assert_eq!(tenant.queued(), 2);
    }

    #[test]
    fn purge_counts_cancellations_and_frees_space() {
        let tenant = Tenant::new("t", 8, 8);
        for n in 0..6u32 {
            tenant.enqueue(n);
        }
        let removed = tenant.purge(|n| n % 2 == 0);
        assert_eq!(removed, 3);
        assert_eq!(tenant.queued(), 3);
        assert_eq!(tenant.snapshot().cancelled, 3);
    }
}
