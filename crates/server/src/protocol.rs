//! Message codecs and frame I/O for the validation protocol.
//!
//! The byte-level layout is specified in the [crate docs](crate); this
//! module implements it with [`vv_store::wire`] primitives. Every decode
//! is bounds-checked end to end: torn frames, bad checksums, unknown
//! message types and trailing garbage all surface as [`ProtocolError`],
//! never a panic — mirroring the store's torn-write discipline.

use std::fmt;
use std::io::{self, Read, Write};

use vv_judge::{JudgeProfile, PromptStyle};
use vv_pipeline::{PipelineMode, PipelineStats, WorkItem};
use vv_simcompiler::Lang;
use vv_store::wire::{fnv1a, Reader, WireError, Writer};

use crate::stats::ServerStats;

/// Protocol revision; bumped on any wire-visible change.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on one frame's payload. Large enough for any realistic
/// source file or stats snapshot, small enough that a corrupt length
/// prefix cannot trigger a giant allocation.
pub const MAX_FRAME_BYTES: usize = 8 << 20;

/// Anything that can go wrong reading or decoding protocol traffic.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying transport failed (includes mid-frame EOF).
    Io(io::Error),
    /// A frame arrived with an impossible length or a checksum mismatch.
    /// The stream can no longer be trusted.
    Frame(&'static str),
    /// A frame's payload did not decode as a message.
    Malformed(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(err) => write!(f, "protocol i/o error: {err}"),
            ProtocolError::Frame(what) => write!(f, "bad frame: {what}"),
            ProtocolError::Malformed(what) => write!(f, "malformed message: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(err: io::Error) -> Self {
        ProtocolError::Io(err)
    }
}

impl From<WireError> for ProtocolError {
    fn from(err: WireError) -> Self {
        ProtocolError::Malformed(err.context)
    }
}

/// Write one frame (`len | fnv1a | payload`) and flush.
pub fn write_frame(w: &mut (impl Write + ?Sized), payload: &[u8]) -> io::Result<()> {
    debug_assert!(!payload.is_empty() && payload.len() <= MAX_FRAME_BYTES);
    let mut header = [0u8; 12];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&fnv1a(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload into `buf` (replacing its contents).
///
/// Returns `Ok(false)` on a clean EOF *between* frames — the peer closed.
/// EOF inside a frame, an out-of-range length and a checksum mismatch are
/// all errors: a byte stream that tears mid-frame cannot be re-synced.
pub fn read_frame(r: &mut (impl Read + ?Sized), buf: &mut Vec<u8>) -> Result<bool, ProtocolError> {
    let mut header = [0u8; 12];
    // Distinguish clean EOF (zero header bytes) from a torn header.
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..])? {
            0 if got == 0 => return Ok(false),
            0 => return Err(ProtocolError::Frame("eof inside frame header")),
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    let sum = u64::from_le_bytes(header[4..].try_into().expect("8 bytes"));
    if len == 0 || len > MAX_FRAME_BYTES {
        return Err(ProtocolError::Frame("frame length out of range"));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf).map_err(|err| {
        if err.kind() == io::ErrorKind::UnexpectedEof {
            ProtocolError::Frame("eof inside frame payload")
        } else {
            ProtocolError::Io(err)
        }
    })?;
    if fnv1a(buf) != sum {
        return Err(ProtocolError::Frame("frame checksum mismatch"));
    }
    Ok(true)
}

/// Identifier of one of the built-in judge calibration profiles.
///
/// [`JudgeProfile`]s carry free-form reliability tables and a static
/// name, so arbitrary profiles cannot round-trip a one-byte wire field;
/// the protocol instead pins the five calibrations shipped in
/// [`vv_judge`] under stable ids. New built-ins append new ids; existing
/// ids are frozen.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProfileId {
    /// `JudgeProfile::deepseek_plain()` — id 0.
    DeepseekPlain,
    /// `JudgeProfile::deepseek_agent_direct()` — id 1.
    DeepseekAgentDirect,
    /// `JudgeProfile::deepseek_agent_indirect()` — id 2.
    DeepseekAgentIndirect,
    /// `JudgeProfile::oracle()` — id 3.
    Oracle,
    /// `JudgeProfile::permissive()` — id 4.
    Permissive,
}

impl ProfileId {
    /// All ids, in wire-code order.
    pub const ALL: [ProfileId; 5] = [
        ProfileId::DeepseekPlain,
        ProfileId::DeepseekAgentDirect,
        ProfileId::DeepseekAgentIndirect,
        ProfileId::Oracle,
        ProfileId::Permissive,
    ];

    /// The frozen wire byte.
    pub fn code(self) -> u8 {
        match self {
            ProfileId::DeepseekPlain => 0,
            ProfileId::DeepseekAgentDirect => 1,
            ProfileId::DeepseekAgentIndirect => 2,
            ProfileId::Oracle => 3,
            ProfileId::Permissive => 4,
        }
    }

    /// Inverse of [`ProfileId::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        Self::ALL.get(code as usize).copied()
    }

    /// Materialize the calibration profile this id names.
    pub fn profile(self) -> JudgeProfile {
        match self {
            ProfileId::DeepseekPlain => JudgeProfile::deepseek_plain(),
            ProfileId::DeepseekAgentDirect => JudgeProfile::deepseek_agent_direct(),
            ProfileId::DeepseekAgentIndirect => JudgeProfile::deepseek_agent_indirect(),
            ProfileId::Oracle => JudgeProfile::oracle(),
            ProfileId::Permissive => JudgeProfile::permissive(),
        }
    }

    /// Recognize a built-in profile by its (static, unique) name — how a
    /// local `Scenario` is mapped onto the wire. `None` for custom
    /// profiles, which cannot be submitted remotely.
    pub fn of_profile(profile: &JudgeProfile) -> Option<Self> {
        Self::ALL
            .into_iter()
            .find(|id| id.profile().name == profile.name)
    }
}

/// The server-side configuration of one campaign job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobSpec {
    /// Early-exit or record-all staging.
    pub mode: PipelineMode,
    /// Judge prompt style.
    pub style: PromptStyle,
    /// Judge calibration profile (wire-registry id).
    pub profile: ProfileId,
    /// Seed of the judge's decision layer.
    pub judge_seed: u64,
}

impl Default for JobSpec {
    /// Record-all staging under the paper's LLMJ 1 configuration
    /// (agent-style direct prompt) and the pipeline's default judge seed.
    fn default() -> Self {
        Self {
            mode: PipelineMode::RecordAll,
            style: PromptStyle::AgentDirect,
            profile: ProfileId::DeepseekAgentDirect,
            judge_seed: vv_pipeline::PipelineConfig::default().judge_seed,
        }
    }
}

impl JobSpec {
    /// The tuple the server keys its resident service pool by.
    pub(crate) fn key(&self) -> (u8, u8, u8, u64) {
        (
            mode_code(self.mode),
            style_code(self.style),
            self.profile.code(),
            self.judge_seed,
        )
    }
}

pub(crate) fn mode_code(mode: PipelineMode) -> u8 {
    match mode {
        PipelineMode::EarlyExit => 0,
        PipelineMode::RecordAll => 1,
    }
}

pub(crate) fn mode_from_code(code: u8) -> Option<PipelineMode> {
    match code {
        0 => Some(PipelineMode::EarlyExit),
        1 => Some(PipelineMode::RecordAll),
        _ => None,
    }
}

pub(crate) fn style_code(style: PromptStyle) -> u8 {
    match style {
        PromptStyle::Direct => 0,
        PromptStyle::AgentDirect => 1,
        PromptStyle::AgentIndirect => 2,
    }
}

pub(crate) fn style_from_code(code: u8) -> Option<PromptStyle> {
    match code {
        0 => Some(PromptStyle::Direct),
        1 => Some(PromptStyle::AgentDirect),
        2 => Some(PromptStyle::AgentIndirect),
        _ => None,
    }
}

fn lang_code(lang: Lang) -> u8 {
    match lang {
        Lang::C => 0,
        Lang::Cpp => 1,
    }
}

fn lang_from_code(code: u8) -> Option<Lang> {
    match code {
        0 => Some(Lang::C),
        1 => Some(Lang::Cpp),
        _ => None,
    }
}

fn model_code(model: vv_dclang::DirectiveModel) -> u8 {
    match model {
        vv_dclang::DirectiveModel::OpenAcc => 0,
        vv_dclang::DirectiveModel::OpenMp => 1,
    }
}

fn model_from_code(code: u8) -> Option<vv_dclang::DirectiveModel> {
    match code {
        0 => Some(vv_dclang::DirectiveModel::OpenAcc),
        1 => Some(vv_dclang::DirectiveModel::OpenMp),
        _ => None,
    }
}

/// Why the server refused (or aborted) something.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The client violated the protocol (bad handshake, unknown enum
    /// byte, torn frame); the connection closes after this.
    Protocol,
    /// The server is draining for shutdown and refuses new jobs.
    Draining,
    /// A `CASE`/`FINISH_JOB` referenced a job id that was never opened.
    UnknownJob,
}

impl ErrorCode {
    fn code(self) -> u8 {
        match self {
            ErrorCode::Protocol => 1,
            ErrorCode::Draining => 2,
            ErrorCode::UnknownJob => 3,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(ErrorCode::Protocol),
            2 => Some(ErrorCode::Draining),
            3 => Some(ErrorCode::UnknownJob),
            _ => None,
        }
    }
}

const REQ_HELLO: u8 = 0x01;
const REQ_OPEN_JOB: u8 = 0x02;
const REQ_CASE: u8 = 0x03;
const REQ_FINISH_JOB: u8 = 0x04;
const REQ_STATS: u8 = 0x05;
const REQ_SHUTDOWN: u8 = 0x06;

const RESP_HELLO_OK: u8 = 0x81;
const RESP_RECORD: u8 = 0x82;
const RESP_JOB_DONE: u8 = 0x83;
const RESP_STATS_OK: u8 = 0x84;
const RESP_SHUTDOWN_OK: u8 = 0x85;
const RESP_ERROR: u8 = 0x8F;

/// Client → server messages.
///
/// (No `PartialEq`: [`WorkItem`] deliberately does not compare — the
/// round-trip tests compare re-encoded bytes instead.)
#[derive(Clone, Debug)]
pub enum Request {
    /// Handshake; must be the first message on a connection.
    Hello {
        /// [`PROTOCOL_VERSION`] spoken by the client.
        protocol: u32,
        /// Queue/fairness identity on the server.
        tenant: String,
    },
    /// Declare a campaign job.
    OpenJob {
        /// Client-chosen id, unique per connection.
        job: u32,
        /// The pipeline configuration to validate under.
        spec: JobSpec,
    },
    /// Submit one case under an open job.
    Case {
        /// The job this case belongs to.
        job: u32,
        /// Client submission ordinal, echoed in the `RECORD`.
        seq: u64,
        /// The work item itself.
        item: WorkItem,
    },
    /// No more cases will be submitted for `job`.
    FinishJob {
        /// The job being finished.
        job: u32,
    },
    /// Request a live [`ServerStats`] snapshot.
    Stats,
    /// Drain, seal the store and stop the server.
    Shutdown,
}

impl Request {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64);
        match self {
            Request::Hello { protocol, tenant } => {
                w.put_u8(REQ_HELLO);
                w.put_u32(*protocol);
                w.put_str(tenant);
            }
            Request::OpenJob { job, spec } => {
                w.put_u8(REQ_OPEN_JOB);
                w.put_u32(*job);
                w.put_u8(mode_code(spec.mode));
                w.put_u8(style_code(spec.style));
                w.put_u8(spec.profile.code());
                w.put_u64(spec.judge_seed);
            }
            Request::Case { job, seq, item } => {
                w.put_u8(REQ_CASE);
                w.put_u32(*job);
                w.put_u64(*seq);
                w.put_str(&item.id);
                w.put_str(&item.source);
                w.put_u8(lang_code(item.lang));
                w.put_u8(model_code(item.model));
            }
            Request::FinishJob { job } => {
                w.put_u8(REQ_FINISH_JOB);
                w.put_u32(*job);
            }
            Request::Stats => w.put_u8(REQ_STATS),
            Request::Shutdown => w.put_u8(REQ_SHUTDOWN),
        }
        w.into_bytes()
    }

    /// Decode a frame payload. Unknown types, unknown enum bytes and
    /// trailing bytes are all [`ProtocolError::Malformed`].
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = Reader::new(payload);
        let request = match r.get_u8("request type")? {
            REQ_HELLO => Request::Hello {
                protocol: r.get_u32("hello protocol")?,
                tenant: r.get_str("hello tenant")?.to_string(),
            },
            REQ_OPEN_JOB => Request::OpenJob {
                job: r.get_u32("open_job id")?,
                spec: JobSpec {
                    mode: mode_from_code(r.get_u8("open_job mode")?)
                        .ok_or(ProtocolError::Malformed("open_job mode"))?,
                    style: style_from_code(r.get_u8("open_job style")?)
                        .ok_or(ProtocolError::Malformed("open_job style"))?,
                    profile: ProfileId::from_code(r.get_u8("open_job profile")?)
                        .ok_or(ProtocolError::Malformed("open_job profile"))?,
                    judge_seed: r.get_u64("open_job judge seed")?,
                },
            },
            REQ_CASE => Request::Case {
                job: r.get_u32("case job")?,
                seq: r.get_u64("case seq")?,
                item: WorkItem {
                    id: r.get_str("case id")?.to_string(),
                    source: r.get_str("case source")?.to_string(),
                    lang: lang_from_code(r.get_u8("case lang")?)
                        .ok_or(ProtocolError::Malformed("case lang"))?,
                    model: model_from_code(r.get_u8("case model")?)
                        .ok_or(ProtocolError::Malformed("case model"))?,
                },
            },
            REQ_FINISH_JOB => Request::FinishJob {
                job: r.get_u32("finish_job id")?,
            },
            REQ_STATS => Request::Stats,
            REQ_SHUTDOWN => Request::Shutdown,
            _ => return Err(ProtocolError::Malformed("request type")),
        };
        if !r.is_exhausted() {
            return Err(ProtocolError::Malformed("request trailing bytes"));
        }
        Ok(request)
    }
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    HelloOk {
        /// [`PROTOCOL_VERSION`] spoken by the server.
        protocol: u32,
        /// Human-readable server identity.
        server: String,
    },
    /// One completed case. `record` is the [`vv_pipeline::encode_record`]
    /// bytes of the [`vv_pipeline::CaseRecord`].
    Record {
        /// The job the case belonged to.
        job: u32,
        /// The client's submission ordinal, echoed back.
        seq: u64,
        /// Encoded case record.
        record: Vec<u8>,
    },
    /// Every accepted case of `job` has been answered.
    JobDone {
        /// The finished job.
        job: u32,
        /// This job's aggregate statistics.
        stats: PipelineStats,
    },
    /// A live statistics snapshot.
    StatsOk(ServerStats),
    /// The drain completed and the store is sealed.
    ShutdownOk,
    /// Refusal or abort.
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64);
        match self {
            Response::HelloOk { protocol, server } => {
                w.put_u8(RESP_HELLO_OK);
                w.put_u32(*protocol);
                w.put_str(server);
            }
            Response::Record { job, seq, record } => {
                w.put_u8(RESP_RECORD);
                w.put_u32(*job);
                w.put_u64(*seq);
                w.put_bytes(record);
            }
            Response::JobDone { job, stats } => {
                w.put_u8(RESP_JOB_DONE);
                w.put_u32(*job);
                stats.encode_into(&mut w);
            }
            Response::StatsOk(snapshot) => {
                w.put_u8(RESP_STATS_OK);
                snapshot.encode_into(&mut w);
            }
            Response::ShutdownOk => w.put_u8(RESP_SHUTDOWN_OK),
            Response::Error { code, message } => {
                w.put_u8(RESP_ERROR);
                w.put_u8(code.code());
                w.put_str(message);
            }
        }
        w.into_bytes()
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = Reader::new(payload);
        let response = match r.get_u8("response type")? {
            RESP_HELLO_OK => Response::HelloOk {
                protocol: r.get_u32("hello_ok protocol")?,
                server: r.get_str("hello_ok server")?.to_string(),
            },
            RESP_RECORD => Response::Record {
                job: r.get_u32("record job")?,
                seq: r.get_u64("record seq")?,
                record: r.get_bytes("record payload")?.to_vec(),
            },
            RESP_JOB_DONE => Response::JobDone {
                job: r.get_u32("job_done job")?,
                stats: PipelineStats::decode_from(&mut r)?,
            },
            RESP_STATS_OK => Response::StatsOk(ServerStats::decode_from(&mut r)?),
            RESP_SHUTDOWN_OK => Response::ShutdownOk,
            RESP_ERROR => Response::Error {
                code: ErrorCode::from_code(r.get_u8("error code")?)
                    .ok_or(ProtocolError::Malformed("error code"))?,
                message: r.get_str("error message")?.to_string(),
            },
            _ => return Err(ProtocolError::Malformed("response type")),
        };
        if !r.is_exhausted() {
            return Err(ProtocolError::Malformed("response trailing bytes"));
        }
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vv_dclang::DirectiveModel;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Hello {
                protocol: PROTOCOL_VERSION,
                tenant: "acme".into(),
            },
            Request::OpenJob {
                job: 7,
                spec: JobSpec::default(),
            },
            Request::Case {
                job: 7,
                seq: 42,
                item: WorkItem {
                    id: "case_0042".into(),
                    source: "int main() { return 0; }".into(),
                    lang: Lang::Cpp,
                    model: DirectiveModel::OpenMp,
                },
            },
            Request::FinishJob { job: 7 },
            Request::Stats,
            Request::Shutdown,
        ]
    }

    #[test]
    fn requests_round_trip() {
        for request in sample_requests() {
            let payload = request.encode();
            let decoded = Request::decode(&payload).unwrap();
            // WorkItem has no PartialEq; a bit-exact re-encode is the
            // stronger check anyway (canonical encoding).
            assert_eq!(decoded.encode(), payload);
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            Response::HelloOk {
                protocol: PROTOCOL_VERSION,
                server: "vv-server/1".into(),
            },
            Response::Record {
                job: 1,
                seq: 9,
                record: vec![1, 2, 3, 4],
            },
            Response::JobDone {
                job: 1,
                stats: PipelineStats {
                    submitted: 10,
                    judged: 9,
                    ..Default::default()
                },
            },
            Response::StatsOk(ServerStats::default()),
            Response::ShutdownOk,
            Response::Error {
                code: ErrorCode::Draining,
                message: "draining".into(),
            },
        ];
        for response in responses {
            let payload = response.encode();
            assert_eq!(Response::decode(&payload).unwrap(), response);
        }
    }

    #[test]
    fn truncated_payloads_fail_cleanly() {
        for request in sample_requests() {
            let payload = request.encode();
            for cut in 0..payload.len() {
                assert!(Request::decode(&payload[..cut]).is_err(), "cut {cut}");
            }
            let mut padded = payload.clone();
            padded.push(0);
            assert!(Request::decode(&padded).is_err());
        }
    }

    #[test]
    fn unknown_enum_bytes_are_malformed() {
        let mut payload = Request::OpenJob {
            job: 1,
            spec: JobSpec::default(),
        }
        .encode();
        // Byte layout: type, job u32, mode — corrupt the mode byte.
        payload[5] = 0x7F;
        assert!(Request::decode(&payload).is_err());
        assert!(Request::decode(&[0x55]).is_err());
        assert!(Response::decode(&[0x55]).is_err());
    }

    #[test]
    fn frames_round_trip_and_reject_torn_input() {
        let payload = Request::Stats.encode();
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &payload).unwrap();
        write_frame(&mut bytes, &payload).unwrap();

        let mut cursor = io::Cursor::new(&bytes);
        let mut buf = Vec::new();
        assert!(read_frame(&mut cursor, &mut buf).unwrap());
        assert_eq!(buf, payload);
        assert!(read_frame(&mut cursor, &mut buf).unwrap());
        assert!(!read_frame(&mut cursor, &mut buf).unwrap(), "clean EOF");

        // Every possible tear inside a frame is an error, not a hang or a
        // partial success (mirrors the PR 6 torn-write sweeps).
        for cut in 1..bytes.len() {
            let mut cursor = io::Cursor::new(&bytes[..cut]);
            let mut buf = Vec::new();
            match read_frame(&mut cursor, &mut buf) {
                Ok(true) if cut >= 12 + payload.len() => {} // first frame intact
                Ok(true) => panic!("cut {cut} decoded a torn frame"),
                Ok(false) => panic!("cut {cut} looked like clean EOF"),
                Err(_) => assert!(cut < 12 + payload.len(), "cut {cut}"),
            }
        }

        // A flipped payload bit is a checksum failure (the first frame's
        // payload is the single byte at offset 12).
        let mut corrupt = bytes.clone();
        corrupt[12] ^= 0x01;
        let mut cursor = io::Cursor::new(&corrupt);
        assert!(read_frame(&mut cursor, &mut Vec::new()).is_err());

        // An absurd length prefix is rejected before any allocation.
        let mut giant = vec![0u8; 12];
        giant[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = io::Cursor::new(&giant);
        assert!(read_frame(&mut cursor, &mut Vec::new()).is_err());
    }

    #[test]
    fn profile_registry_is_frozen_and_complete() {
        for id in ProfileId::ALL {
            assert_eq!(ProfileId::from_code(id.code()), Some(id));
            assert_eq!(ProfileId::of_profile(&id.profile()), Some(id));
        }
        assert_eq!(ProfileId::from_code(5), None);
        // A custom profile has no wire id.
        let mut custom = JudgeProfile::oracle();
        custom.name = "bespoke";
        assert_eq!(ProfileId::of_profile(&custom), None);
    }
}
