//! The resident validation daemon.
//!
//! One [`Server`] holds the warm substrate — a shared
//! [`CompileCache`], optionally a durable [`ArtifactStore`], and a pool
//! of [`ValidationService`]s keyed by [`JobSpec`] — and serves any number
//! of client connections over TCP ([`Server::bind`]) or the in-process
//! loopback pipe ([`Server::connect`]).
//!
//! The moving parts:
//!
//! * each connection gets a detached **reader thread** that decodes
//!   frames and feeds its tenant's bounded queue (blocking there *is*
//!   the backpressure — see [`crate::tenant`]);
//! * a fixed **worker pool** pulls cases round-robin across tenants and
//!   runs [`ValidationService::process_case`], so per-case results are
//!   byte-identical to a direct in-process run (strategy parity and
//!   store-replay laws);
//! * results stream back through a per-connection writer; a dead
//!   connection cancels that client's jobs (queued cases purged,
//!   in-flight results discarded) without touching other tenants;
//! * `SHUTDOWN` (or [`ServerHandle::shutdown`]) drains every queue,
//!   flushes the store and only then acknowledges — the store directory
//!   passes `vv-store fsck` clean afterwards.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;

use vv_pipeline::{encode_record, ExecutionStrategy, PipelineStats, ValidationService, WorkItem};
use vv_simcompiler::{CompileCache, PersistentCache};
use vv_store::ArtifactStore;

use crate::protocol::{
    read_frame, write_frame, ErrorCode, JobSpec, Request, Response, PROTOCOL_VERSION,
};
use crate::stats::{CacheSnapshot, ServerStats, StoreSnapshot};
use crate::tenant::Tenant;
use crate::transport::{duplex, Conn, PipeEnd};

/// Tuning knobs for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Validation worker threads shared by all tenants.
    pub workers: usize,
    /// Scheduling strategy of the pooled [`ValidationService`]s. The
    /// daemon's own per-case dispatch (tenant-fair round robin over the
    /// worker pool) is strategy-independent — records are byte-identical
    /// under every strategy by the parity laws — so this selects the
    /// scheduling used for whole-stream submits through a pooled service
    /// and is surfaced in `STATS` as deployment provenance.
    pub strategy: ExecutionStrategy,
    /// Bounded queue depth per tenant (admission control).
    pub tenant_queue_capacity: usize,
    /// In-flight case budget per tenant (fairness bound).
    pub max_in_flight_per_tenant: usize,
    /// Back every job with a durable [`ArtifactStore`] at this directory.
    pub store_dir: Option<PathBuf>,
    /// Identity string sent in `HELLO_OK`.
    pub name: String,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            strategy: ExecutionStrategy::default(),
            tenant_queue_capacity: 256,
            max_in_flight_per_tenant: 64,
            store_dir: None,
            name: "vv-server/1".to_string(),
        }
    }
}

/// One case waiting in a tenant queue.
struct QueuedCase {
    job: Arc<JobState>,
    seq: u64,
    item: WorkItem,
}

type TenantQueue = Tenant<QueuedCase>;

/// The per-connection response writer: serializes frames from the
/// worker pool and the reader thread onto one stream, and remembers the
/// first failure so a dead client stops costing anything.
struct ConnWriter {
    conn: Mutex<Box<dyn Conn>>,
    failed: AtomicBool,
}

impl ConnWriter {
    fn new(conn: Box<dyn Conn>) -> Self {
        Self {
            conn: Mutex::new(conn),
            failed: AtomicBool::new(false),
        }
    }

    /// Send one response frame; `false` once the connection is dead.
    fn send(&self, response: &Response) -> bool {
        if self.failed.load(Ordering::Relaxed) {
            return false;
        }
        let payload = response.encode();
        let mut conn = self.conn.lock();
        match write_frame(&mut *conn, &payload) {
            Ok(()) => true,
            Err(_) => {
                self.failed.store(true, Ordering::Relaxed);
                false
            }
        }
    }
}

/// Server-side state of one open campaign job.
struct JobState {
    id: u32,
    tenant: Arc<TenantQueue>,
    service: Arc<ValidationService>,
    writer: Arc<ConnWriter>,
    stats: Mutex<PipelineStats>,
    started: Instant,
    /// Cases accepted (reader side).
    submitted: AtomicU64,
    /// Cases answered or discarded (worker side).
    completed: AtomicU64,
    /// `FINISH_JOB` seen; `submitted` is final.
    ended: AtomicBool,
    /// Client gone or stream dead: discard results, purge the queue.
    cancelled: AtomicBool,
    /// `JOB_DONE` sent (or forever suppressed by cancellation).
    done_sent: AtomicBool,
}

impl JobState {
    /// Send `JOB_DONE` exactly once, when the job has ended and every
    /// accepted case is accounted for.
    fn maybe_done(&self) {
        if !self.ended.load(Ordering::Acquire) {
            return;
        }
        if self.completed.load(Ordering::Acquire) < self.submitted.load(Ordering::Acquire) {
            return;
        }
        if self.done_sent.swap(true, Ordering::AcqRel) {
            return;
        }
        self.tenant.note_job_finished();
        let mut stats = self.stats.lock().clone();
        stats.wall_time = self.started.elapsed();
        self.writer.send(&Response::JobDone {
            job: self.id,
            stats,
        });
    }
}

/// Cancel a job: discard-in-flight, purge-queued, never send `JOB_DONE`.
fn cancel_job(inner: &ServerInner, job: &Arc<JobState>) {
    if job.cancelled.swap(true, Ordering::AcqRel) {
        return;
    }
    job.done_sent.store(true, Ordering::Release);
    let removed = job.tenant.purge(|case| !Arc::ptr_eq(&case.job, job));
    if removed > 0 {
        // Purged cases will never reach a worker: account them answered.
        job.completed.fetch_add(removed as u64, Ordering::AcqRel);
        inner.cases_answered(removed as u64);
    }
    inner.scheduler.notify();
}

/// Round-robin work distribution across every registered tenant.
struct Scheduler {
    state: StdMutex<SchedState>,
    work: StdCondvar,
}

struct SchedState {
    tenants: Vec<Arc<TenantQueue>>,
    cursor: usize,
    stopping: bool,
}

impl Scheduler {
    fn new() -> Self {
        Self {
            state: StdMutex::new(SchedState {
                tenants: Vec::new(),
                cursor: 0,
                stopping: false,
            }),
            work: StdCondvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn register(&self, tenant: Arc<TenantQueue>) {
        self.lock().tenants.push(tenant);
    }

    /// Wake workers: new case queued, or an in-flight slot freed.
    fn notify(&self) {
        self.work.notify_all();
    }

    fn stop(&self) {
        self.lock().stopping = true;
        self.work.notify_all();
    }

    /// Block until a case is schedulable (fairly, starting after the
    /// tenant served last) or the scheduler stops.
    fn next_case(&self) -> Option<QueuedCase> {
        let mut state = self.lock();
        loop {
            if state.stopping {
                return None;
            }
            let n = state.tenants.len();
            for i in 0..n {
                let idx = (state.cursor + i) % n;
                if let Some(case) = state.tenants[idx].next() {
                    state.cursor = (idx + 1) % n;
                    return Some(case);
                }
            }
            state = self.work.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// The pooled-service key: [`JobSpec::key`]'s wire-stable projection.
type SpecKey = (u8, u8, u8, u64);

/// Everything shared between connections, workers and handles.
struct ServerInner {
    config: ServerConfig,
    cache: Arc<CompileCache>,
    store: Option<Arc<ArtifactStore>>,
    /// Warm [`ValidationService`]s pooled by job spec: every job with the
    /// same spec shares interned compile sessions and judge state.
    services: Mutex<HashMap<SpecKey, Arc<ValidationService>>>,
    tenants: Mutex<HashMap<String, Arc<TenantQueue>>>,
    scheduler: Scheduler,
    /// Merged statistics of every case ever served.
    global: Mutex<PipelineStats>,
    started: Instant,
    draining: AtomicBool,
    stopped: AtomicBool,
    /// Cases accepted but not yet answered (or purged), across all jobs.
    pending: StdMutex<u64>,
    /// Signalled when `pending` hits zero.
    idle: StdCondvar,
    connections: AtomicU64,
    listen_addr: Mutex<Option<SocketAddr>>,
}

impl ServerInner {
    fn new(config: ServerConfig) -> Result<Self, vv_store::StoreError> {
        let store = match &config.store_dir {
            Some(dir) => Some(Arc::new(ArtifactStore::open(dir)?)),
            None => None,
        };
        Ok(Self {
            config,
            cache: CompileCache::shared(),
            store,
            services: Mutex::new(HashMap::new()),
            tenants: Mutex::new(HashMap::new()),
            scheduler: Scheduler::new(),
            global: Mutex::new(PipelineStats::default()),
            started: Instant::now(),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            pending: StdMutex::new(0),
            idle: StdCondvar::new(),
            connections: AtomicU64::new(0),
            listen_addr: Mutex::new(None),
        })
    }

    /// The pooled service for a job spec (built on first use).
    fn service_for(&self, spec: &JobSpec) -> Arc<ValidationService> {
        let mut services = self.services.lock();
        Arc::clone(services.entry(spec.key()).or_insert_with(|| {
            let builder = ValidationService::builder()
                .mode(spec.mode)
                .strategy(self.config.strategy)
                .judge_style(spec.style)
                .judge_profile(spec.profile.profile())
                .judge_seed(spec.judge_seed);
            let builder = match &self.store {
                Some(store) => builder
                    .persistent_compile(Arc::new(PersistentCache::new(
                        Arc::clone(&self.cache),
                        Arc::clone(store),
                    )))
                    .artifact_store(Arc::clone(store)),
                None => builder.compile_cache(Arc::clone(&self.cache)),
            };
            Arc::new(builder.build())
        }))
    }

    /// The tenant for a `HELLO` name (created and registered with the
    /// scheduler on first sight).
    fn tenant_for(&self, name: &str) -> Arc<TenantQueue> {
        let mut tenants = self.tenants.lock();
        match tenants.get(name) {
            Some(tenant) => Arc::clone(tenant),
            None => {
                let tenant = Arc::new(Tenant::new(
                    name,
                    self.config.tenant_queue_capacity,
                    self.config.max_in_flight_per_tenant,
                ));
                tenants.insert(name.to_string(), Arc::clone(&tenant));
                self.scheduler.register(Arc::clone(&tenant));
                tenant
            }
        }
    }

    fn case_accepted(&self) {
        *self.pending.lock().unwrap_or_else(|p| p.into_inner()) += 1;
    }

    fn cases_answered(&self, n: u64) {
        let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        *pending -= n;
        if *pending == 0 {
            self.idle.notify_all();
        }
    }

    /// Refuse new jobs from now on.
    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Block until every accepted case has been answered or purged.
    fn wait_drained(&self) {
        let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        while *pending > 0 {
            pending = self.idle.wait(pending).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Drain, seal the store, stop the workers and the accept loop.
    fn shutdown(&self) {
        self.drain_and_seal();
        self.stop();
    }

    /// Drain every accepted case and seal the store, leaving the
    /// listener and workers up.
    fn drain_and_seal(&self) {
        self.begin_drain();
        self.wait_drained();
        if let Some(store) = &self.store {
            let _ = store.flush();
        }
        // Drop the warm service pool: those services hold store handles,
        // and releasing them here (rather than at the last Arc drop) lets
        // the store seal — and its lockfile release — promptly.
        self.services.lock().clear();
    }

    fn stop(&self) {
        self.stopped.store(true, Ordering::SeqCst);
        self.scheduler.stop();
        // Wake the acceptor out of its blocking accept().
        if let Some(addr) = *self.listen_addr.lock() {
            let _ = TcpStream::connect(addr);
        }
    }

    fn snapshot(&self) -> ServerStats {
        let cache = self.cache.stats();
        let mut tenants: Vec<_> = self
            .tenants
            .lock()
            .values()
            .map(|tenant| tenant.snapshot())
            .collect();
        tenants.sort_by(|a, b| a.name.cmp(&b.name));
        ServerStats {
            uptime_ms: self.started.elapsed().as_millis().min(u64::MAX as u128) as u64,
            connections: self.connections.load(Ordering::Relaxed),
            draining: self.draining.load(Ordering::SeqCst),
            workers: self.config.workers.max(1) as u64,
            strategy: self.config.strategy.label().to_string(),
            served: self.global.lock().clone(),
            compile_cache: CacheSnapshot {
                hits: cache.hits,
                misses: cache.misses,
                entries: cache.entries as u64,
            },
            store: self.store.as_ref().map(|store| {
                let stats = store.stats();
                StoreSnapshot {
                    records: stats.records as u64,
                    pending: stats.pending as u64,
                    segments: stats.segments as u64,
                    hits: stats.hits,
                    misses: stats.misses,
                }
            }),
            tenants,
        }
    }
}

/// One validation worker: pull fairly, process, stream the result.
fn worker_loop(inner: Arc<ServerInner>) {
    while let Some(case) = inner.scheduler.next_case() {
        let job = case.job;
        if !job.cancelled.load(Ordering::Acquire) {
            let record = job.service.process_case(&case.item, &job.stats);
            {
                let mut global = inner.global.lock();
                global.submitted += 1;
                global.observe_record(&record);
            }
            if !job.cancelled.load(Ordering::Acquire) {
                let sent = job.writer.send(&Response::Record {
                    job: job.id,
                    seq: case.seq,
                    record: encode_record(&record),
                });
                if !sent {
                    cancel_job(&inner, &job);
                }
            }
        }
        job.tenant.case_done();
        // Order matters: the Record frame is on the wire before the case
        // counts as completed, so JOB_DONE is always the last frame.
        job.completed.fetch_add(1, Ordering::AcqRel);
        job.maybe_done();
        inner.cases_answered(1);
        // A freed in-flight slot can make this tenant schedulable again.
        inner.scheduler.notify();
    }
}

/// Why a connection's read loop ended.
enum ConnExit {
    /// Peer closed, or a protocol violation was answered and the stream
    /// abandoned.
    Closed,
    /// This connection completed a `SHUTDOWN` handshake.
    Shutdown,
}

fn handle_connection(inner: Arc<ServerInner>, conn: Box<dyn Conn>) {
    inner.connections.fetch_add(1, Ordering::Relaxed);
    let _ = serve_connection(&inner, conn);
    inner.connections.fetch_sub(1, Ordering::Relaxed);
}

fn serve_connection(inner: &Arc<ServerInner>, conn: Box<dyn Conn>) -> ConnExit {
    let writer = match conn.try_clone_conn() {
        Ok(clone) => Arc::new(ConnWriter::new(clone)),
        Err(_) => return ConnExit::Closed,
    };
    let mut reader = conn;
    let mut buf = Vec::new();

    let refuse = |code: ErrorCode, message: &str| {
        writer.send(&Response::Error {
            code,
            message: message.to_string(),
        });
    };

    // Handshake: the first frame must be a version-matching HELLO.
    let tenant = match read_request(&mut reader, &mut buf) {
        Some(Request::Hello { protocol, tenant }) if protocol == PROTOCOL_VERSION => {
            inner.tenant_for(&tenant)
        }
        Some(Request::Hello { .. }) => {
            refuse(ErrorCode::Protocol, "protocol version mismatch");
            return ConnExit::Closed;
        }
        Some(_) => {
            refuse(ErrorCode::Protocol, "expected HELLO");
            return ConnExit::Closed;
        }
        None => return ConnExit::Closed,
    };
    writer.send(&Response::HelloOk {
        protocol: PROTOCOL_VERSION,
        server: inner.config.name.clone(),
    });

    let mut jobs: HashMap<u32, Arc<JobState>> = HashMap::new();
    let mut exit = ConnExit::Closed;
    while let Some(request) = read_request(&mut reader, &mut buf) {
        match request {
            Request::Hello { .. } => {
                refuse(ErrorCode::Protocol, "duplicate HELLO");
                break;
            }
            Request::OpenJob { job, spec } => {
                if inner.draining.load(Ordering::SeqCst) {
                    refuse(ErrorCode::Draining, "server is draining");
                    continue;
                }
                if jobs.contains_key(&job) {
                    refuse(ErrorCode::Protocol, "job id reused");
                    break;
                }
                tenant.note_job_opened();
                jobs.insert(
                    job,
                    Arc::new(JobState {
                        id: job,
                        tenant: Arc::clone(&tenant),
                        service: inner.service_for(&spec),
                        writer: Arc::clone(&writer),
                        stats: Mutex::new(PipelineStats::default()),
                        started: Instant::now(),
                        submitted: AtomicU64::new(0),
                        completed: AtomicU64::new(0),
                        ended: AtomicBool::new(false),
                        cancelled: AtomicBool::new(false),
                        done_sent: AtomicBool::new(false),
                    }),
                );
            }
            Request::Case { job, seq, item } => {
                let Some(job) = jobs.get(&job) else {
                    refuse(ErrorCode::UnknownJob, "CASE for unopened job");
                    break;
                };
                if job.ended.load(Ordering::Acquire) {
                    refuse(ErrorCode::Protocol, "CASE after FINISH_JOB");
                    break;
                }
                job.submitted.fetch_add(1, Ordering::AcqRel);
                job.stats.lock().submitted += 1;
                inner.case_accepted();
                // This is the admission point: a full tenant queue blocks
                // here, which stops draining this client's socket.
                tenant.enqueue(QueuedCase {
                    job: Arc::clone(job),
                    seq,
                    item,
                });
                inner.scheduler.notify();
            }
            Request::FinishJob { job } => {
                let Some(job) = jobs.get(&job) else {
                    refuse(ErrorCode::UnknownJob, "FINISH_JOB for unopened job");
                    break;
                };
                job.ended.store(true, Ordering::Release);
                job.maybe_done();
            }
            Request::Stats => {
                writer.send(&Response::StatsOk(inner.snapshot()));
            }
            Request::Shutdown => {
                // Acknowledge after the drain but *before* stop(): once
                // the acceptor wakes, the hosting process may exit and
                // kill this detached thread — the acknowledgement must
                // already be on the wire by then.
                inner.drain_and_seal();
                writer.send(&Response::ShutdownOk);
                inner.stop();
                exit = ConnExit::Shutdown;
                break;
            }
        }
        if writer.failed.load(Ordering::Relaxed) {
            break;
        }
    }

    // Whatever ends the connection, unfinished jobs die with it.
    for job in jobs.values() {
        if !job.done_sent.load(Ordering::Acquire) {
            cancel_job(inner, job);
        }
    }
    exit
}

/// Read and decode one request; `None` ends the connection (clean EOF,
/// torn frame, garbage — the caller cannot distinguish and need not).
fn read_request<R: io::Read>(reader: &mut R, buf: &mut Vec<u8>) -> Option<Request> {
    match read_frame(reader, buf) {
        Ok(true) => Request::decode(buf).ok(),
        _ => None,
    }
}

/// A running validation daemon. See the [module docs](self).
pub struct Server {
    inner: Arc<ServerInner>,
    workers: Vec<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Start a loopback-only server (no TCP listener): clients attach
    /// through [`Server::connect`].
    pub fn start(config: ServerConfig) -> Result<Self, vv_store::StoreError> {
        let inner = Arc::new(ServerInner::new(config)?);
        let workers = (0..inner.config.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(inner))
            })
            .collect();
        Ok(Self {
            inner,
            workers,
            acceptor: None,
        })
    }

    /// Start and listen on `addr` (e.g. `127.0.0.1:0`). Each accepted
    /// connection gets a detached reader thread.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let mut server = Server::start(config).map_err(io::Error::other)?;
        *server.inner.listen_addr.lock() = Some(local);
        let inner = Arc::clone(&server.inner);
        server.acceptor = Some(std::thread::spawn(move || {
            for stream in listener.incoming() {
                if inner.stopped.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || handle_connection(inner, Box::new(stream)));
            }
        }));
        Ok(server)
    }

    /// The bound TCP address, if [`Server::bind`] was used.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        *self.inner.listen_addr.lock()
    }

    /// Open an in-process loopback connection (no sockets). The returned
    /// end speaks the exact same protocol as a `TcpStream`.
    pub fn connect(&self) -> PipeEnd {
        let (client_end, server_end) = duplex(64 * 1024);
        let inner = Arc::clone(&self.inner);
        std::thread::spawn(move || handle_connection(inner, Box::new(server_end)));
        client_end
    }

    /// A handle for triggering shutdown from another thread — the
    /// in-process equivalent of SIGTERM.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// A live statistics snapshot, same as the `STATS` request.
    pub fn stats(&self) -> ServerStats {
        self.inner.snapshot()
    }

    /// Block until the server has shut down (via a `SHUTDOWN` request or
    /// a [`ServerHandle`]), then join its threads.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Best-effort stop for servers dropped without a drain; a drained
        // server's threads are already exiting and join promptly.
        self.inner.stop();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Cloneable shutdown trigger for a [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<ServerInner>,
}

impl ServerHandle {
    /// Drain every queue, seal the store and stop the server — identical
    /// to a client `SHUTDOWN` request, minus the acknowledgement frame.
    pub fn shutdown(&self) {
        self.inner.shutdown();
    }
}
