//! `vv-server` — run and drive the resident validation daemon.
//!
//! ```text
//! vv-server serve --addr 127.0.0.1:7411 [--store DIR] [--workers N]
//!                 [--strategy staged|sequential|batch|pipelined[:N]]
//!                 [--queue N] [--inflight N]
//! vv-server submit --addr HOST:PORT --tenant NAME [--size N]
//!                  [--model acc|omp] [--seed N] [--mutated F]
//! vv-server stats --addr HOST:PORT
//! vv-server shutdown --addr HOST:PORT
//! ```
//!
//! `serve` blocks until a client sends `SHUTDOWN`. `submit` generates a
//! probed corpus locally (same generator as the in-process campaigns),
//! streams it through the daemon and prints the job's statistics. Exit
//! status: 0 on success, 1 on runtime failure, 2 on usage errors.

use std::process::ExitCode;
use std::time::Instant;

use vv_dclang::DirectiveModel;
use vv_pipeline::{ExecutionStrategy, WorkItem};
use vv_probing::{CorpusSpec, ProbeConfig};
use vv_server::{Client, JobSpec, Server, ServerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((command, rest)) => (command.as_str(), rest),
        None => return usage(),
    };
    match command {
        "serve" => serve(rest),
        "submit" => submit(rest),
        "stats" => stats(rest),
        "shutdown" => shutdown(rest),
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: vv-server serve --addr HOST:PORT [--store DIR] [--workers N] \
         [--strategy staged|sequential|batch|pipelined[:N]] [--queue N] [--inflight N]\n       \
         vv-server submit --addr HOST:PORT --tenant NAME [--size N] \
         [--model acc|omp] [--seed N] [--mutated F]\n       \
         vv-server stats --addr HOST:PORT\n       \
         vv-server shutdown --addr HOST:PORT"
    );
    ExitCode::from(2)
}

/// Split `args` into `--flag value` pairs.
fn flag_pairs(args: &[String]) -> Option<Vec<(&str, &str)>> {
    let mut pairs = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let flag = flag.strip_prefix("--")?;
        let value = it.next()?;
        pairs.push((flag, value.as_str()));
    }
    Some(pairs)
}

fn find<'a>(pairs: &[(&str, &'a str)], flag: &str) -> Option<&'a str> {
    pairs
        .iter()
        .find(|(name, _)| *name == flag)
        .map(|(_, value)| *value)
}

/// Parse a `--strategy` value: a bare name, or `pipelined:N` to pin the
/// worker count (`pipelined` alone auto-sizes to the core count).
fn parse_strategy(value: &str) -> Option<ExecutionStrategy> {
    match value {
        "staged" => Some(ExecutionStrategy::Staged),
        "sequential" => Some(ExecutionStrategy::Sequential),
        "batch" => Some(ExecutionStrategy::RayonBatch),
        "pipelined" => Some(ExecutionStrategy::Pipelined { workers: 0 }),
        _ => {
            let workers = value.strip_prefix("pipelined:")?.parse().ok()?;
            Some(ExecutionStrategy::Pipelined { workers })
        }
    }
}

fn serve(args: &[String]) -> ExitCode {
    let Some(pairs) = flag_pairs(args) else {
        return usage();
    };
    let Some(addr) = find(&pairs, "addr") else {
        return usage();
    };
    let mut config = ServerConfig::default();
    if let Some(dir) = find(&pairs, "store") {
        config.store_dir = Some(dir.into());
    }
    if let Some(value) = find(&pairs, "strategy") {
        match parse_strategy(value) {
            Some(strategy) => config.strategy = strategy,
            None => return usage(),
        }
    }
    for (flag, slot) in [
        ("workers", &mut config.workers as &mut usize),
        ("queue", &mut config.tenant_queue_capacity),
        ("inflight", &mut config.max_in_flight_per_tenant),
    ] {
        if let Some(value) = find(&pairs, flag) {
            match value.parse() {
                Ok(n) => *slot = n,
                Err(_) => return usage(),
            }
        }
    }
    let server = match Server::bind(addr, config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("vv-server: bind {addr} failed: {err}");
            return ExitCode::from(1);
        }
    };
    println!(
        "vv-server listening on {}",
        server.local_addr().expect("bound server has an address")
    );
    server.join();
    println!("vv-server: drained and stopped");
    ExitCode::SUCCESS
}

fn submit(args: &[String]) -> ExitCode {
    let Some(pairs) = flag_pairs(args) else {
        return usage();
    };
    let (Some(addr), Some(tenant)) = (find(&pairs, "addr"), find(&pairs, "tenant")) else {
        return usage();
    };
    let size = match find(&pairs, "size").map(str::parse).transpose() {
        Ok(size) => size.unwrap_or(64),
        Err(_) => return usage(),
    };
    let seed: u64 = match find(&pairs, "seed").map(str::parse).transpose() {
        Ok(seed) => seed.unwrap_or(0xC0FFEE),
        Err(_) => return usage(),
    };
    let model = match find(&pairs, "model") {
        None | Some("acc") => DirectiveModel::OpenAcc,
        Some("omp") => DirectiveModel::OpenMp,
        Some(_) => return usage(),
    };
    let mut probe = ProbeConfig::with_seed(seed ^ 0x9E37_79B9);
    if let Some(fraction) = find(&pairs, "mutated") {
        match fraction.parse() {
            Ok(fraction) => probe.mutated_fraction = fraction,
            Err(_) => return usage(),
        }
    }
    let mut source = CorpusSpec::new(model)
        .seed(seed)
        .probe(probe)
        .size(size)
        .source();
    let mut items = Vec::with_capacity(size);
    while let Some(case) = source.next_case() {
        items.push(WorkItem::from(case));
    }

    let submitted = items.len();
    let run = move || -> Result<(), vv_server::ClientError> {
        let mut client = Client::connect(addr, tenant)?;
        println!("connected to {} as tenant {tenant}", client.server_name());
        let started = Instant::now();
        let run = client.submit(JobSpec::default(), items)?.into_run()?;
        let elapsed = started.elapsed();
        println!("{}", run.stats);
        println!(
            "{} case(s) in {:.2}s over the wire ({:.0} cases/s)",
            submitted,
            elapsed.as_secs_f64(),
            submitted as f64 / elapsed.as_secs_f64().max(1e-9),
        );
        Ok(())
    };
    finish(run())
}

fn stats(args: &[String]) -> ExitCode {
    let Some(pairs) = flag_pairs(args) else {
        return usage();
    };
    let Some(addr) = find(&pairs, "addr") else {
        return usage();
    };
    let run = || -> Result<(), vv_server::ClientError> {
        let mut client = Client::connect(addr, "vv-server-cli")?;
        println!("{}", client.stats()?);
        Ok(())
    };
    finish(run())
}

fn shutdown(args: &[String]) -> ExitCode {
    let Some(pairs) = flag_pairs(args) else {
        return usage();
    };
    let Some(addr) = find(&pairs, "addr") else {
        return usage();
    };
    let run = || -> Result<(), vv_server::ClientError> {
        Client::connect(addr, "vv-server-cli")?.shutdown()?;
        println!("server drained and stopped");
        Ok(())
    };
    finish(run())
}

fn finish(result: Result<(), vv_server::ClientError>) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("vv-server: {err}");
            ExitCode::from(1)
        }
    }
}
