//! Approximate subword tokenizer.
//!
//! The surrogate judge does not need a real BPE vocabulary; it needs token
//! counts that scale the same way real ones do, so that the inference cost
//! model (and therefore the pipeline throughput benchmarks) behave
//! realistically. Code tokenizers average roughly 3–4 characters per token,
//! with punctuation and short identifiers tokenizing densely.

/// Split text into approximate subword tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            current.push(c);
            // Long identifiers/words split into ~4-char subwords.
            if current.len() == 4 {
                tokens.push(std::mem::take(&mut current));
            }
        } else {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
            if !c.is_whitespace() {
                tokens.push(c.to_string());
            } else if c == '\n' {
                tokens.push("\\n".to_string());
            }
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Estimate the token count of a text.
///
/// Counts exactly what [`tokenize`] would produce without materializing the
/// token strings — this runs on every prompt and response in the judge
/// stage, where the old `Vec<String>` materialization dominated the cost of
/// the token-budget accounting.
pub fn estimate_tokens(text: &str) -> usize {
    let mut count = 0usize;
    // Length (in bytes == chars, the run is ASCII-only) of the current
    // identifier/word run; runs split into 4-char subwords.
    let mut run = 0usize;
    for c in text.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            run += 1;
            if run == 4 {
                count += 1;
                run = 0;
            }
        } else {
            if run > 0 {
                count += 1;
                run = 0;
            }
            if !c.is_whitespace() || c == '\n' {
                count += 1;
            }
        }
    }
    if run > 0 {
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_text_has_no_tokens() {
        assert_eq!(estimate_tokens(""), 0);
    }

    #[test]
    fn counting_estimate_matches_materialized_tokenize() {
        let samples = [
            "",
            "int main() { return 0; }",
            "for (int i = 0; i < N; i++) { a[i] = i * 0.5; }\n\n",
            "#pragma acc parallel loop copyin(a[0:N]) copyout(b[0:N])",
            "a_very_long_identifier_name another_one x yz\tmixed   spacing\n",
            "unicode: π ≈ 3.14159 — done",
        ];
        for text in samples {
            assert_eq!(
                estimate_tokens(text),
                tokenize(text).len(),
                "estimate diverged for {text:?}"
            );
        }
    }

    #[test]
    fn code_tokenizes_densely() {
        let code = "for (int i = 0; i < N; i++) { a[i] = i * 0.5; }";
        let count = estimate_tokens(code);
        assert!(count >= 25, "got {count}");
    }

    #[test]
    fn token_count_scales_roughly_with_length() {
        let short = estimate_tokens("int main() { return 0; }");
        let long = estimate_tokens(&"int main() { return 0; }\n".repeat(50));
        assert!(long > short * 40);
    }

    #[test]
    fn long_identifiers_split_into_subwords() {
        let tokens = tokenize("extraordinarily_long_identifier");
        assert!(tokens.len() > 3);
        assert!(tokens.iter().all(|t| t.len() <= 4));
    }

    #[test]
    fn characters_per_token_is_realistic() {
        let text = "#pragma acc parallel loop reduction(+:sum) copyin(a[0:N])\nfor (int i = 0; i < N; i++) { sum += a[i]; }\n";
        let ratio = text.len() as f64 / estimate_tokens(text) as f64;
        assert!(ratio > 1.5 && ratio < 6.0, "chars/token = {ratio}");
    }
}
