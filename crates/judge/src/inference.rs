//! Inference cost model.
//!
//! The paper's judge stage runs a 33-billion-parameter model on an A100;
//! judging a file is orders of magnitude slower than compiling or running
//! it, which is precisely why the validation pipeline front-loads the cheap
//! stages. The pipeline's throughput benchmarks use this model to account
//! simulated judge latency without actually sleeping.

/// Latency model for one LLM inference call.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InferenceCostModel {
    /// Fixed overhead per request (scheduling, tokenization) in ms.
    pub base_ms: f64,
    /// Prompt-processing (prefill) cost per prompt token in ms.
    pub prompt_ms_per_token: f64,
    /// Generation (decode) cost per output token in ms.
    pub output_ms_per_token: f64,
}

impl InferenceCostModel {
    /// Rough figures for deepseek-coder-33B-instruct on a single A100-80GB
    /// (fp16, no tensor parallelism): prefill ~2000 tok/s, decode ~35 tok/s.
    pub fn deepseek_33b_a100() -> Self {
        Self {
            base_ms: 120.0,
            prompt_ms_per_token: 0.5,
            output_ms_per_token: 28.0,
        }
    }

    /// A much smaller/faster judge, used in ablation benchmarks.
    pub fn small_7b_gpu() -> Self {
        Self {
            base_ms: 40.0,
            prompt_ms_per_token: 0.12,
            output_ms_per_token: 7.0,
        }
    }

    /// Estimated latency in milliseconds for one call.
    pub fn latency_ms(&self, prompt_tokens: usize, output_tokens: usize) -> f64 {
        self.base_ms
            + self.prompt_ms_per_token * prompt_tokens as f64
            + self.output_ms_per_token * output_tokens as f64
    }
}

impl Default for InferenceCostModel {
    fn default() -> Self {
        Self::deepseek_33b_a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_tokens() {
        let model = InferenceCostModel::deepseek_33b_a100();
        let short = model.latency_ms(100, 50);
        let long = model.latency_ms(2000, 400);
        assert!(long > short);
        assert!(short > model.base_ms);
    }

    #[test]
    fn decode_dominates_prefill() {
        let model = InferenceCostModel::default();
        // 300 output tokens should cost far more than 3000 prompt tokens.
        assert!(model.output_ms_per_token * 300.0 > model.prompt_ms_per_token * 3000.0);
    }

    #[test]
    fn small_model_is_faster() {
        let big = InferenceCostModel::deepseek_33b_a100();
        let small = InferenceCostModel::small_7b_gpu();
        assert!(small.latency_ms(1000, 200) < big.latency_ms(1000, 200));
    }
}
