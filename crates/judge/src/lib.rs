//! `vv-judge` — the surrogate LLM-as-a-judge.
//!
//! The paper judges candidate compiler tests with DeepSeek's
//! `deepseek-coder-33B-instruct` model running on A100 GPUs. Those weights
//! (and the GPUs) are not available here, so this crate substitutes a
//! **surrogate judge** with the same external interface — *prompt text in,
//! response text out* — and a calibrated error profile:
//!
//! * [`prompt`] builds the exact prompt shapes of the paper's Listings 1–4:
//!   the criteria block, the *direct analysis* prompt (Part One), and the
//!   two agent-based prompts (*direct* → LLMJ 1, *indirect* → LLMJ 2) that
//!   embed compiler and runtime return codes / stdout / stderr;
//! * [`model`] extracts **code signals** from the prompt text alone
//!   (directive presence, bracket balance, suspect identifiers, corrupted
//!   directive keywords, missing allocations, missing verification logic,
//!   tool output parsing). Ground truth never reaches the judge;
//! * [`profile`] holds the per-signal reliabilities that reproduce the
//!   error profile the paper measured for deepseek-coder-33B-instruct
//!   (per-issue accuracy, overall accuracy and bias direction);
//! * [`parse`] recovers the `FINAL JUDGEMENT: ...` phrase from the response
//!   (both the `valid/invalid` and `correct/incorrect` variants);
//! * [`tokenizer`] and [`inference`] provide a token-count-based latency
//!   model so that pipeline throughput experiments remain meaningful.
//!
//! The decision layer is deterministic per (prompt, profile, seed), so every
//! experiment is reproducible.

pub mod inference;
pub mod model;
pub mod parse;
pub mod profile;
pub mod prompt;
pub mod tokenizer;

pub use inference::InferenceCostModel;
pub use model::{extract_signals, CodeSignals, SurrogateLlmJudge};
pub use parse::{extract_verdict, Verdict};
pub use profile::{JudgeProfile, SignalReliability};
pub use prompt::{
    build_prompt, build_prompt_into, criteria_block, PromptStyle, ToolContext, ToolRecord,
};
pub use tokenizer::estimate_tokens;

use vv_dclang::DirectiveModel;

/// Everything recorded about judging one file.
#[derive(Clone, Debug, PartialEq)]
pub struct JudgeOutcome {
    /// The prompt that was sent to the (surrogate) model.
    pub prompt: String,
    /// The raw response text.
    pub response: String,
    /// The verdict parsed from the response (`None` if the model failed to
    /// produce the required exact phrase).
    pub verdict: Option<Verdict>,
    /// Token count of the prompt.
    pub prompt_tokens: usize,
    /// Token count of the response.
    pub response_tokens: usize,
    /// Simulated inference latency in milliseconds.
    pub latency_ms: f64,
}

impl JudgeOutcome {
    /// The verdict, defaulting to `Invalid` when the model failed to emit the
    /// required phrase (the paper treats unparseable responses as failures of
    /// the evaluation, which in the pipeline means the file is not accepted).
    pub fn verdict_or_invalid(&self) -> Verdict {
        self.verdict.unwrap_or(Verdict::Invalid)
    }
}

/// A judging session: one prompt style bound to one surrogate model.
#[derive(Clone, Debug)]
pub struct JudgeSession {
    /// The underlying text-in/text-out model.
    pub judge: SurrogateLlmJudge,
    /// The prompt style used for every file.
    pub style: PromptStyle,
    /// Cost model used to estimate latency.
    pub cost: InferenceCostModel,
}

impl JudgeSession {
    /// Create a session.
    pub fn new(judge: SurrogateLlmJudge, style: PromptStyle) -> Self {
        Self {
            judge,
            style,
            cost: InferenceCostModel::deepseek_33b_a100(),
        }
    }

    /// Judge one source file. `tools` carries the compiler/runtime outputs
    /// for the agent-based prompt styles and must be `None` for
    /// [`PromptStyle::Direct`].
    pub fn evaluate(
        &self,
        source: &str,
        model: DirectiveModel,
        tools: Option<&ToolContext>,
    ) -> JudgeOutcome {
        self.evaluate_precomputed(source, model, tools, None)
    }

    /// Judge one source file, optionally reusing code signals precomputed
    /// from the source (see [`CodeSignals::of_source`]); the compile stage
    /// computes these once per distinct source, so the judge skips its
    /// line-by-line re-scan of the rendered prompt. Outcomes are identical
    /// to [`JudgeSession::evaluate`] either way.
    pub fn evaluate_precomputed(
        &self,
        source: &str,
        model: DirectiveModel,
        tools: Option<&ToolContext>,
        code_signals: Option<&CodeSignals>,
    ) -> JudgeOutcome {
        let prompt = build_prompt(self.style, model, source, tools);
        let response = match code_signals {
            Some(signals) => self
                .judge
                .complete_with_signals(&prompt, model, signals, self.style, tools),
            None => self.judge.complete(&prompt),
        };
        let verdict = extract_verdict(&response);
        let prompt_tokens = estimate_tokens(&prompt);
        let response_tokens = estimate_tokens(&response);
        let latency_ms = self.cost.latency_ms(prompt_tokens, response_tokens);
        JudgeOutcome {
            prompt,
            response,
            verdict,
            prompt_tokens,
            response_tokens,
            latency_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VALID_ACC: &str = r#"
#include <stdio.h>
#include <stdlib.h>
#define N 64
int main() {
    double *a = (double *)malloc(N * sizeof(double));
    double *b = (double *)malloc(N * sizeof(double));
    for (int i = 0; i < N; i++) { a[i] = i * 0.5; b[i] = 0.0; }
#pragma acc parallel loop copyin(a[0:N]) copyout(b[0:N])
    for (int i = 0; i < N; i++) { b[i] = a[i] * 2.0; }
    int err = 0;
    for (int i = 0; i < N; i++) { if (b[i] != a[i] * 2.0) { err = err + 1; } }
    if (err != 0) { printf("Test failed\n"); return 1; }
    printf("Test passed\n");
    return 0;
}
"#;

    #[test]
    fn session_produces_a_parseable_verdict() {
        let judge = SurrogateLlmJudge::new(JudgeProfile::deepseek_agent_direct(), 7);
        let session = JudgeSession::new(judge, PromptStyle::AgentDirect);
        let tools = ToolContext {
            compile: Some(ToolRecord {
                return_code: 0,
                stdout: "".into(),
                stderr: "".into(),
            }),
            run: Some(ToolRecord {
                return_code: 0,
                stdout: "Test passed\n".into(),
                stderr: "".into(),
            }),
        };
        let outcome = session.evaluate(VALID_ACC, DirectiveModel::OpenAcc, Some(&tools));
        assert!(outcome.verdict.is_some(), "response: {}", outcome.response);
        assert!(outcome.prompt.contains("FINAL JUDGEMENT"));
        assert!(outcome.prompt_tokens > 50);
        assert!(outcome.latency_ms > 0.0);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let judge = SurrogateLlmJudge::new(JudgeProfile::deepseek_plain(), 3);
        let session = JudgeSession::new(judge, PromptStyle::Direct);
        let a = session.evaluate(VALID_ACC, DirectiveModel::OpenAcc, None);
        let b = session.evaluate(VALID_ACC, DirectiveModel::OpenAcc, None);
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.response, b.response);
    }
}
