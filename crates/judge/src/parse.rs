//! Judgement extraction.
//!
//! The paper's prompts instruct the model to include the exact phrase
//! `FINAL JUDGEMENT: valid` / `FINAL JUDGEMENT: invalid` (agent prompts,
//! Listings 2 and 4) or `FINAL JUDGEMENT: correct` / `incorrect` (the direct
//! analysis prompt, Listing 3). This module recovers the verdict from a
//! response, tolerating case differences and surrounding prose, and reports
//! `None` when no judgement phrase is present (which the paper's harness has
//! to treat as an evaluation failure).

/// The judge's verdict about one candidate test.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The file is a valid compiler-validation test.
    Valid,
    /// The file is not a valid compiler-validation test.
    Invalid,
}

impl Verdict {
    /// `true` for [`Verdict::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, Verdict::Valid)
    }

    /// Map to the paper's numeric coding (valid/pass ↦ 0, invalid/fail ↦ 1).
    pub fn as_code(&self) -> u8 {
        match self {
            Verdict::Valid => 0,
            Verdict::Invalid => 1,
        }
    }
}

/// Extract the verdict from a model response.
///
/// The *last* judgement phrase wins (chain-of-thought responses sometimes
/// restate the phrase while reasoning before settling on a final answer).
pub fn extract_verdict(response: &str) -> Option<Verdict> {
    let lower = response.to_ascii_lowercase();
    let mut verdict = None;
    let mut search_from = 0usize;
    while let Some(pos) = lower[search_from..].find("final judgement:") {
        let start = search_from + pos + "final judgement:".len();
        let rest = lower[start..].trim_start();
        // "invalid"/"incorrect" must be checked before their substrings.
        if rest.starts_with("invalid") || rest.starts_with("incorrect") {
            verdict = Some(Verdict::Invalid);
        } else if rest.starts_with("valid") || rest.starts_with("correct") {
            verdict = Some(Verdict::Valid);
        }
        search_from = start;
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_valid_and_invalid() {
        assert_eq!(
            extract_verdict("... FINAL JUDGEMENT: valid"),
            Some(Verdict::Valid)
        );
        assert_eq!(
            extract_verdict("... FINAL JUDGEMENT: invalid"),
            Some(Verdict::Invalid)
        );
    }

    #[test]
    fn extracts_correct_and_incorrect_variants() {
        assert_eq!(
            extract_verdict("FINAL JUDGEMENT: correct"),
            Some(Verdict::Valid)
        );
        assert_eq!(
            extract_verdict("FINAL JUDGEMENT: incorrect"),
            Some(Verdict::Invalid)
        );
    }

    #[test]
    fn case_insensitive_and_embedded_in_prose() {
        let response = "The code looks reasonable overall.\nfinal judgement: Valid\nThanks.";
        assert_eq!(extract_verdict(response), Some(Verdict::Valid));
    }

    #[test]
    fn last_judgement_wins() {
        let response =
            "FINAL JUDGEMENT: valid ... wait, on reflection ... FINAL JUDGEMENT: invalid";
        assert_eq!(extract_verdict(response), Some(Verdict::Invalid));
    }

    #[test]
    fn missing_phrase_returns_none() {
        assert_eq!(extract_verdict("The test seems fine to me."), None);
        assert_eq!(extract_verdict(""), None);
    }

    #[test]
    fn invalid_is_not_mistaken_for_valid() {
        // "invalid" contains "valid"; ordering of checks matters.
        assert_eq!(
            extract_verdict("FINAL JUDGEMENT:   invalid  "),
            Some(Verdict::Invalid)
        );
    }

    #[test]
    fn verdict_codes_match_paper_convention() {
        assert_eq!(Verdict::Valid.as_code(), 0);
        assert_eq!(Verdict::Invalid.as_code(), 1);
        assert!(Verdict::Valid.is_valid());
        assert!(!Verdict::Invalid.is_valid());
    }
}
