//! The surrogate judge model: code-signal extraction and the calibrated
//! decision layer.
//!
//! The model sees *only the prompt text* (exactly what the real LLM saw) and
//! re-derives its evidence from that text: directive presence, brace
//! balance, undeclared assignments, corrupted directive keywords, pointers
//! that are never allocated, missing verification logic, and — for the
//! agent-based prompts — the embedded compiler/runtime return codes and
//! outputs. A calibrated per-signal reliability (see [`crate::profile`])
//! decides whether each piece of evidence actually influences the verdict,
//! reproducing the measured unreliability of `deepseek-coder-33B-instruct`.
//!
//! # The precomputed fast path
//!
//! Re-scanning the rendered prompt per case is pure overhead when the
//! pipeline already knows the source text and the tool records it embedded:
//! the code-derived half of [`CodeSignals`] is a function of the source
//! alone ([`CodeSignals::of_source`], computable once per distinct source at
//! the compile stage and cached with the compile outcome), and the
//! tool-derived half is a function of the tool records and prompt style
//! ([`CodeSignals::with_tools`]). [`SurrogateLlmJudge::complete_with_signals`]
//! consumes both without touching the prompt body, and is proven response-
//! identical to [`SurrogateLlmJudge::complete`] over the mixed corpus in
//! `tests/compile_parity.rs`.

use crate::profile::JudgeProfile;
use crate::prompt::{PromptStyle, ToolContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::fmt::Write as _;
use vv_dclang::directive::parse_pragma;
use vv_dclang::{DirectiveModel, Span};
use vv_specs::directive_spec;

/// Evidence extracted from a prompt (code section + tool section).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CodeSignals {
    /// The code contains at least one directive of the target model.
    pub has_target_directives: bool,
    /// Number of `{` minus number of `}` in the code (nonzero = imbalance).
    pub brace_delta: i64,
    /// An identifier that is assigned but never declared, if any.
    pub undeclared_assignment: Option<String>,
    /// A directive keyword that is not in the target model's specification.
    pub corrupted_directive: Option<String>,
    /// A pointer that is indexed but never allocated or assigned.
    pub unallocated_pointer: Option<String>,
    /// The code has no verification logic (no failure return path).
    pub missing_verification: bool,
    /// Tool information was present in the prompt.
    pub tools_present: bool,
    /// The embedded compiler output reports failure.
    pub compile_failed: bool,
    /// The embedded runtime output reports failure.
    pub runtime_failed: bool,
    /// The embedded program output mentions a passing test.
    pub outputs_mention_pass: bool,
}

impl CodeSignals {
    /// Compute the code-derived signals for a source text (the tool-derived
    /// fields stay `false`). Equal to what [`extract_signals`] derives from
    /// the code section of any prompt embedding `code` verbatim.
    pub fn of_source(code: &str, model: DirectiveModel) -> CodeSignals {
        let sentinel = sentinel_marker(model);
        let mut signals = CodeSignals {
            has_target_directives: code.contains(sentinel),
            brace_delta: code.matches('{').count() as i64 - code.matches('}').count() as i64,
            ..Default::default()
        };
        let declared = declared_identifiers(code);
        signals.undeclared_assignment = find_undeclared_assignment(code, &declared);
        signals.corrupted_directive = find_corrupted_directive(code, model, sentinel);
        signals.unallocated_pointer = find_unallocated_pointer(code);
        signals.missing_verification =
            !(code.contains("return 1") && (code.contains("!=") || code.contains("==")));
        signals
    }

    /// Fill the tool-derived fields from the records an agent prompt of
    /// `style` would embed — the same values [`extract_signals`] would parse
    /// back out of the rendered tool section.
    pub fn with_tools(mut self, style: PromptStyle, tools: Option<&ToolContext>) -> CodeSignals {
        if !style.uses_tools() {
            return self;
        }
        // The tool section is rendered unconditionally for agent styles
        // (absent records default to return code 0 and empty captures).
        self.tools_present = true;
        let compile = tools.and_then(|t| t.compile.as_ref());
        let (compile_rc, compile_stderr) =
            compile.map_or((0, ""), |r| (r.return_code, r.stderr.as_ref()));
        // The prompt scanner only sees the first line of the embedded
        // stderr (the rest lands on lines without the marker).
        let stderr_first_line = compile_stderr
            .trim_end()
            .lines()
            .next()
            .unwrap_or("")
            .trim();
        self.compile_failed = compile_rc != 0
            || stderr_first_line.to_ascii_lowercase().contains("error")
            || stderr_first_line.contains("-S-");
        let run = tools.and_then(|t| t.run.as_ref());
        let (run_rc, run_stdout, run_stderr) = run.map_or((0, "", ""), |r| {
            (r.return_code, r.stdout.as_ref(), r.stderr.as_ref())
        });
        self.runtime_failed = run_rc != 0;
        // "pass" can only appear inside the embedded run captures — the
        // static text between the run section and the code marker never
        // contains it (asserted in tests).
        self.outputs_mention_pass = run_stderr.trim_end().to_ascii_lowercase().contains("pass")
            || run_stdout.trim_end().to_ascii_lowercase().contains("pass");
        self
    }
}

const TYPE_KEYWORDS: &[&str] = &["int", "long", "float", "double", "char", "unsigned", "void"];

fn sentinel_marker(model: DirectiveModel) -> &'static str {
    match model {
        DirectiveModel::OpenAcc => "#pragma acc",
        DirectiveModel::OpenMp => "#pragma omp",
    }
}

/// The model a judge infers from prompt wording alone (every template
/// mentions the display name of exactly one model; code comments can, in
/// principle, fool this — which is part of the surrogate's fidelity).
pub(crate) fn detect_model(prompt: &str) -> DirectiveModel {
    if prompt.contains("OpenACC") {
        DirectiveModel::OpenAcc
    } else {
        DirectiveModel::OpenMp
    }
}

/// Extract code and tool signals from a prompt.
pub fn extract_signals(prompt: &str, model: DirectiveModel) -> CodeSignals {
    let mut signals = CodeSignals::of_source(code_section(prompt), model);

    // Tool section (agent prompts only).
    if let Some(rc) = find_int_after(prompt, "Compiler return code:") {
        signals.tools_present = true;
        let compiler_stderr = line_after(prompt, "Compiler STDERR:").unwrap_or_default();
        signals.compile_failed = rc != 0
            || compiler_stderr.to_ascii_lowercase().contains("error")
            || compiler_stderr.contains("-S-");
    }
    if let Some(rc) = find_run_return_code(prompt) {
        signals.tools_present = true;
        signals.runtime_failed = rc != 0;
    }
    if let Some(run_section) = prompt.split("When the compiled code is run").nth(1) {
        let before_code = run_section
            .split("Here is the code")
            .next()
            .unwrap_or(run_section);
        signals.outputs_mention_pass = before_code.to_ascii_lowercase().contains("pass");
    }
    signals
}

fn code_section(prompt: &str) -> &str {
    for marker in ["Here is the code for you to analyze:", "Here is the code:"] {
        if let Some(pos) = prompt.find(marker) {
            return &prompt[pos + marker.len()..];
        }
    }
    prompt
}

/// Identifiers declared with a type keyword or `#define`, as borrowed
/// slices of `code` (no per-word allocation).
fn declared_identifiers(code: &str) -> HashSet<&str> {
    let mut declared = HashSet::new();
    let mut prev_was_type = false;
    for word in words(code) {
        if prev_was_type {
            declared.insert(word);
        }
        prev_was_type = TYPE_KEYWORDS.contains(&word);
    }
    // `#define NAME value` also introduces a name.
    for line in code.lines() {
        if let Some(rest) = line.trim_start().strip_prefix("#define ") {
            if let Some(name) = rest.split_whitespace().next() {
                declared.insert(name);
            }
        }
    }
    declared
}

/// Iterate maximal `[A-Za-z0-9_]` runs of `text` as slices.
fn words(text: &str) -> impl Iterator<Item = &str> {
    text.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|w| !w.is_empty())
}

fn find_undeclared_assignment(code: &str, declared: &HashSet<&str>) -> Option<String> {
    for line in code.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with('#') || trimmed.starts_with("//") {
            continue;
        }
        // Lines that themselves declare something are fine.
        let declares = TYPE_KEYWORDS.iter().any(|k| {
            trimmed
                .strip_prefix(k)
                .is_some_and(|rest| rest.starts_with(' '))
                || trimmed
                    .strip_prefix("const ")
                    .is_some_and(|rest| rest.starts_with(k))
        });
        if declares {
            continue;
        }
        let name_len = leading_ident_len(trimmed);
        let name = &trimmed[..name_len];
        if name.is_empty() || name.as_bytes()[0].is_ascii_digit() {
            continue;
        }
        let rest = &trimmed[name.len()..];
        // Skip subscripts to find the assignment operator.
        let after_subscript = match rest.trim_start().strip_prefix('[') {
            Some(_) => match rest.find(']') {
                Some(pos) => &rest[pos + 1..],
                None => rest,
            },
            None => rest,
        };
        let after = after_subscript.trim_start();
        let is_assignment = (after.starts_with('=') && !after.starts_with("=="))
            || after.starts_with("+=")
            || after.starts_with("-=")
            || after.starts_with("*=")
            || after.starts_with("/=");
        if is_assignment && !declared.contains(name) && !is_common_keyword(name) {
            return Some(name.to_string());
        }
    }
    None
}

fn leading_ident_len(text: &str) -> usize {
    text.bytes()
        .take_while(|b| b.is_ascii_alphanumeric() || *b == b'_')
        .count()
}

fn is_common_keyword(word: &str) -> bool {
    matches!(
        word,
        "if" | "for" | "while" | "return" | "else" | "do" | "break" | "continue" | "sizeof"
    )
}

fn find_corrupted_directive(code: &str, model: DirectiveModel, sentinel: &str) -> Option<String> {
    for line in code.lines() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with(sentinel) {
            continue;
        }
        let payload = trimmed.trim_start_matches("#pragma").trim();
        let directive = parse_pragma(payload, Span::unknown());
        if directive.model != Some(model) {
            continue;
        }
        let name = directive.display_name();
        if name.is_empty() {
            return Some(
                directive
                    .clauses
                    .first()
                    .map(|c| c.name.clone())
                    .unwrap_or_else(|| "<empty>".to_string()),
            );
        }
        if directive_spec(model, &name).is_none() {
            return Some(name);
        }
    }
    None
}

fn find_unallocated_pointer(code: &str) -> Option<String> {
    for line in code.lines() {
        let trimmed = line.trim();
        if !trimmed.ends_with(';') || trimmed.contains('=') || !trimmed.contains('*') {
            continue;
        }
        let body = trimmed.trim_end_matches(';');
        let mut parts = body.split_whitespace();
        let Some(first) = parts.next() else { continue };
        if !TYPE_KEYWORDS.contains(&first) {
            continue;
        }
        // The declarator: whatever follows the type keyword with leading
        // whitespace and `*`s stripped.
        let rest = body[first.len()..].trim_start_matches(|c: char| c.is_whitespace() || c == '*');
        let name = &rest[..leading_ident_len(rest)];
        if name.is_empty() {
            continue;
        }
        let indexed = code.contains(&format!("{name}["));
        let assigned_later =
            code.contains(&format!("{name} = (")) || code.contains(&format!("{name} = malloc"));
        if indexed && !assigned_later {
            return Some(name.to_string());
        }
    }
    None
}

fn find_int_after(text: &str, marker: &str) -> Option<i64> {
    let pos = text.find(marker)?;
    let rest = text[pos + marker.len()..].trim_start();
    let number: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '-')
        .collect();
    number.parse().ok()
}

fn find_run_return_code(prompt: &str) -> Option<i64> {
    // The run-stage return code follows "When the compiled code is run";
    // searching from there avoids matching "Compiler return code:".
    let section = prompt.split("When the compiled code is run").nth(1)?;
    find_int_after(section, "Return code:")
}

fn line_after(text: &str, marker: &str) -> Option<String> {
    let pos = text.find(marker)?;
    let rest = &text[pos + marker.len()..];
    Some(rest.lines().next().unwrap_or("").trim().to_string())
}

// ---------------------------------------------------------------------------
// the surrogate model
// ---------------------------------------------------------------------------

/// A deterministic, calibrated text-in/text-out stand-in for
/// `deepseek-coder-33B-instruct`.
#[derive(Clone, Debug)]
pub struct SurrogateLlmJudge {
    /// The calibration profile in effect.
    pub profile: JudgeProfile,
    /// Seed mixed into the per-prompt RNG (models sampling temperature; the
    /// same seed and prompt always produce the same response).
    pub seed: u64,
}

impl SurrogateLlmJudge {
    /// Create a surrogate judge.
    pub fn new(profile: JudgeProfile, seed: u64) -> Self {
        Self { profile, seed }
    }

    /// Produce a response for a prompt. This is the only interface the rest
    /// of the system uses — exactly the text-completion interface of the
    /// real model.
    pub fn complete(&self, prompt: &str) -> String {
        let model = detect_model(prompt);
        let signals = extract_signals(prompt, model);
        self.respond(prompt, model, &signals)
    }

    /// The fast path: produce the response for `prompt` without re-scanning
    /// its body, using code signals precomputed from the source (see
    /// [`CodeSignals::of_source`]) and the tool records the prompt embeds.
    ///
    /// Responses are byte-identical to [`SurrogateLlmJudge::complete`]: the
    /// decision RNG is seeded from the same prompt hash, and the derivation
    /// of every signal mirrors the text scanner. The two cases where the
    /// scanner could diverge are detected and fall back to it:
    ///
    /// * the prompt wording implies a different model than `model`
    ///   (possible only when the *source text* mentions the other model's
    ///   display name);
    /// * a tool-free (Direct-style) prompt whose source text contains the
    ///   tool-section marker strings, which the scanner would misread as an
    ///   embedded tool section. (Agent-style prompts are immune: their
    ///   genuine tool section precedes the code, and the scanner always
    ///   takes the first occurrence of each marker.)
    pub fn complete_with_signals(
        &self,
        prompt: &str,
        model: DirectiveModel,
        code_signals: &CodeSignals,
        style: PromptStyle,
        tools: Option<&ToolContext>,
    ) -> String {
        if detect_model(prompt) != model {
            return self.complete(prompt);
        }
        if !style.uses_tools()
            && (prompt.contains("Compiler return code:")
                || prompt.contains("When the compiled code is run"))
        {
            return self.complete(prompt);
        }
        let signals = code_signals.clone().with_tools(style, tools);
        self.respond(prompt, model, &signals)
    }

    /// The calibrated decision layer: turn signals into findings and render
    /// the response.
    fn respond(&self, prompt: &str, model: DirectiveModel, signals: &CodeSignals) -> String {
        let reliability = self.profile.for_model(model);
        let mut rng = StdRng::seed_from_u64(fnv1a(prompt) ^ self.seed);

        let mut findings: Vec<String> = Vec::new();
        if !signals.has_target_directives && rng.gen_bool(reliability.missing_directives) {
            findings.push(format!(
                "the file does not contain any {model} directives, so it cannot exercise a {model} compiler"
            ));
        }
        if signals.brace_delta != 0 && rng.gen_bool(reliability.bracket_imbalance) {
            findings.push(format!(
                "the braces do not balance (delta of {}), which is a syntax error",
                signals.brace_delta
            ));
        }
        if let Some(name) = &signals.undeclared_assignment {
            if rng.gen_bool(reliability.undeclared_identifier) {
                findings.push(format!(
                    "the variable '{name}' is assigned but never declared"
                ));
            }
        }
        if let Some(word) = &signals.corrupted_directive {
            if rng.gen_bool(reliability.corrupted_directive) {
                findings.push(format!("'{word}' is not a valid {model} directive name"));
            }
        }
        if let Some(ptr) = &signals.unallocated_pointer {
            if rng.gen_bool(reliability.missing_allocation) {
                findings.push(format!(
                    "the pointer '{ptr}' is indexed but memory is never allocated for it"
                ));
            }
        }
        if signals.missing_verification && rng.gen_bool(reliability.missing_verification) {
            findings.push(
                "the test never compares its results against a reference and has no failing exit path"
                    .to_string(),
            );
        }
        if signals.compile_failed && rng.gen_bool(reliability.compile_failure) {
            findings.push(
                "the provided compiler output reports errors (nonzero compiler return code)"
                    .to_string(),
            );
        }
        if signals.runtime_failed && rng.gen_bool(reliability.runtime_failure) {
            findings.push("the program exits with a nonzero return code when run".to_string());
        }

        let mut verdict_invalid = !findings.is_empty();
        if findings.is_empty() && rng.gen_bool(reliability.false_alarm) {
            verdict_invalid = true;
            let nits = [
                "the data clauses may not cover every array accessed inside the offloaded region",
                "the directive usage may not follow the latest specification's best practices",
                "the verification loop compares floating-point values for exact equality, which may be too strict",
                "the test may rely on implementation-defined behaviour of the runtime",
            ];
            findings.push(nits[rng.gen_range(0..nits.len())].to_string());
        }

        let omit_phrase = rng.gen_bool(reliability.format_failure);
        self.render_response(
            prompt,
            model,
            signals,
            &findings,
            verdict_invalid,
            omit_phrase,
        )
    }

    fn render_response(
        &self,
        prompt: &str,
        model: DirectiveModel,
        signals: &CodeSignals,
        findings: &[String],
        invalid: bool,
        omit_phrase: bool,
    ) -> String {
        let mut out =
            String::with_capacity(256 + findings.iter().map(|f| f.len() + 3).sum::<usize>());
        let indirect = prompt.starts_with("Describe what");
        if indirect {
            let _ = writeln!(
                out,
                "This program allocates and initializes its data on the host, then uses {model} directives to offload the main computational loop before verifying the results. "
            );
            if signals.tools_present {
                let _ = writeln!(
                    out,
                    "According to the provided tool output, the compiler returned {} and the program {}.",
                    if signals.compile_failed { "errors" } else { "no errors" },
                    if signals.runtime_failed {
                        "failed at runtime"
                    } else if signals.outputs_mention_pass {
                        "ran and reported a passing result"
                    } else {
                        "ran to completion"
                    }
                );
            }
        } else {
            let _ = writeln!(
                out,
                "Reviewing the code against the syntax, directive appropriateness, clause correctness, memory management, compliance and logic criteria for {model}:"
            );
        }
        if findings.is_empty() {
            let _ = writeln!(
                out,
                "The directives and clauses appear syntactically correct, data movement between host and device is handled, and the test verifies its parallel results against a serial reference before returning an error code on mismatch."
            );
        } else {
            let _ = writeln!(out, "However, there are problems with this code:");
            for finding in findings {
                let _ = writeln!(out, "- {finding}");
            }
        }
        if omit_phrase {
            let _ = writeln!(
                out,
                "Overall, the test {} suitable for compiler validation.",
                if invalid {
                    "does not appear"
                } else {
                    "appears"
                }
            );
            return out;
        }
        let wants_correct_phrasing = prompt.contains("FINAL JUDGEMENT: correct");
        let phrase = match (invalid, wants_correct_phrasing) {
            (false, true) => "FINAL JUDGEMENT: correct",
            (true, true) => "FINAL JUDGEMENT: incorrect",
            (false, false) => "FINAL JUDGEMENT: valid",
            (true, false) => "FINAL JUDGEMENT: invalid",
        };
        let _ = writeln!(out, "{phrase}");
        out
    }
}

fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{extract_verdict, Verdict};
    use crate::prompt::{build_prompt, PromptStyle, ToolContext, ToolRecord};

    const VALID_ACC_CODE: &str = r#"
#include <stdlib.h>
#include <stdio.h>
#define N 32
int main() {
    double *a = (double *)malloc(N * sizeof(double));
    double *b = (double *)malloc(N * sizeof(double));
    for (int i = 0; i < N; i++) { a[i] = i * 0.5; b[i] = 0.0; }
#pragma acc parallel loop copyin(a[0:N]) copyout(b[0:N])
    for (int i = 0; i < N; i++) { b[i] = a[i] * 2.0; }
    int err = 0;
    for (int i = 0; i < N; i++) { if (b[i] != a[i] * 2.0) { err = err + 1; } }
    if (err != 0) { printf("fail\n"); return 1; }
    return 0;
}
"#;

    fn direct_prompt(code: &str, model: DirectiveModel) -> String {
        build_prompt(PromptStyle::Direct, model, code, None)
    }

    #[test]
    fn signals_for_a_valid_test_are_clean() {
        let prompt = direct_prompt(VALID_ACC_CODE, DirectiveModel::OpenAcc);
        let signals = extract_signals(&prompt, DirectiveModel::OpenAcc);
        assert!(signals.has_target_directives);
        assert_eq!(signals.brace_delta, 0);
        assert_eq!(signals.undeclared_assignment, None);
        assert_eq!(signals.corrupted_directive, None);
        assert_eq!(signals.unallocated_pointer, None);
        assert!(!signals.missing_verification);
        assert!(!signals.tools_present);
    }

    #[test]
    fn missing_directives_are_detected() {
        let code = "int main() { int x = 1; return 0; }";
        let prompt = direct_prompt(code, DirectiveModel::OpenAcc);
        let signals = extract_signals(&prompt, DirectiveModel::OpenAcc);
        assert!(!signals.has_target_directives);
        assert!(signals.missing_verification);
    }

    #[test]
    fn bracket_imbalance_is_detected() {
        let code = VALID_ACC_CODE.replacen('{', "", 1);
        let prompt = direct_prompt(&code, DirectiveModel::OpenAcc);
        let signals = extract_signals(&prompt, DirectiveModel::OpenAcc);
        assert_eq!(signals.brace_delta, -1);
    }

    #[test]
    fn undeclared_assignment_is_detected() {
        let code = VALID_ACC_CODE.replace(
            "    return 0;",
            "    phantom_value = phantom_value + 1;\n    return 0;",
        );
        let prompt = direct_prompt(&code, DirectiveModel::OpenAcc);
        let signals = extract_signals(&prompt, DirectiveModel::OpenAcc);
        assert_eq!(
            signals.undeclared_assignment.as_deref(),
            Some("phantom_value")
        );
    }

    #[test]
    fn corrupted_directive_is_detected() {
        let code = VALID_ACC_CODE.replace("parallel loop", "paralel loop");
        let prompt = direct_prompt(&code, DirectiveModel::OpenAcc);
        let signals = extract_signals(&prompt, DirectiveModel::OpenAcc);
        assert!(signals.corrupted_directive.is_some());
    }

    #[test]
    fn unallocated_pointer_is_detected() {
        let code = VALID_ACC_CODE.replace(
            "double *a = (double *)malloc(N * sizeof(double));",
            "double *a;",
        );
        let prompt = direct_prompt(&code, DirectiveModel::OpenAcc);
        let signals = extract_signals(&prompt, DirectiveModel::OpenAcc);
        assert_eq!(signals.unallocated_pointer.as_deref(), Some("a"));
    }

    #[test]
    fn of_source_matches_prompt_extraction_for_code_signals() {
        let mutants = [
            VALID_ACC_CODE.to_string(),
            VALID_ACC_CODE.replacen('{', "", 1),
            VALID_ACC_CODE.replace("parallel loop", "paralel loop"),
            VALID_ACC_CODE.replace(
                "double *a = (double *)malloc(N * sizeof(double));",
                "double *a;",
            ),
            "int main() { int x = 1; return 0; }".to_string(),
        ];
        for code in &mutants {
            for style in [
                PromptStyle::Direct,
                PromptStyle::AgentDirect,
                PromptStyle::AgentIndirect,
            ] {
                let prompt = build_prompt(style, DirectiveModel::OpenAcc, code, None);
                let scanned = extract_signals(&prompt, DirectiveModel::OpenAcc);
                let precomputed =
                    CodeSignals::of_source(code, DirectiveModel::OpenAcc).with_tools(style, None);
                assert_eq!(scanned, precomputed, "divergence for {style:?}");
            }
        }
    }

    #[test]
    fn tool_failures_are_parsed_from_agent_prompts() {
        let tools = ToolContext {
            compile: Some(ToolRecord {
                return_code: 2,
                stdout: "".into(),
                stderr: "NVC++-S-0155-bad (test.c: 9)".into(),
            }),
            run: Some(ToolRecord {
                return_code: 139,
                stdout: "".into(),
                stderr: "Segmentation fault".into(),
            }),
        };
        let prompt = build_prompt(
            PromptStyle::AgentDirect,
            DirectiveModel::OpenAcc,
            VALID_ACC_CODE,
            Some(&tools),
        );
        let signals = extract_signals(&prompt, DirectiveModel::OpenAcc);
        assert!(signals.tools_present);
        assert!(signals.compile_failed);
        assert!(signals.runtime_failed);
        // ... and the precomputed derivation agrees without reading the prompt.
        let fast = CodeSignals::of_source(VALID_ACC_CODE, DirectiveModel::OpenAcc)
            .with_tools(PromptStyle::AgentDirect, Some(&tools));
        assert_eq!(signals, fast);
    }

    #[test]
    fn clean_tool_output_is_not_a_failure() {
        let tools = ToolContext {
            compile: Some(ToolRecord {
                return_code: 0,
                stdout: "".into(),
                stderr: "".into(),
            }),
            run: Some(ToolRecord {
                return_code: 0,
                stdout: "Test passed".into(),
                stderr: "".into(),
            }),
        };
        let prompt = build_prompt(
            PromptStyle::AgentDirect,
            DirectiveModel::OpenAcc,
            VALID_ACC_CODE,
            Some(&tools),
        );
        let signals = extract_signals(&prompt, DirectiveModel::OpenAcc);
        assert!(signals.tools_present);
        assert!(!signals.compile_failed);
        assert!(!signals.runtime_failed);
        assert!(signals.outputs_mention_pass);
        let fast = CodeSignals::of_source(VALID_ACC_CODE, DirectiveModel::OpenAcc)
            .with_tools(PromptStyle::AgentDirect, Some(&tools));
        assert_eq!(signals, fast);
    }

    #[test]
    fn multiline_stderr_only_first_line_counts() {
        // An "error" on a later stderr line is invisible to the prompt
        // scanner; the precomputed path must agree.
        let tools = ToolContext {
            compile: Some(ToolRecord {
                return_code: 0,
                stdout: "".into(),
                stderr: "benign first line\nerror: hidden on line two".into(),
            }),
            run: None,
        };
        let prompt = build_prompt(
            PromptStyle::AgentDirect,
            DirectiveModel::OpenAcc,
            VALID_ACC_CODE,
            Some(&tools),
        );
        let scanned = extract_signals(&prompt, DirectiveModel::OpenAcc);
        assert!(!scanned.compile_failed);
        let fast = CodeSignals::of_source(VALID_ACC_CODE, DirectiveModel::OpenAcc)
            .with_tools(PromptStyle::AgentDirect, Some(&tools));
        assert_eq!(scanned, fast);
    }

    #[test]
    fn complete_with_signals_matches_complete() {
        let tools = ToolContext {
            compile: Some(ToolRecord {
                return_code: 0,
                stdout: "".into(),
                stderr: "".into(),
            }),
            run: Some(ToolRecord {
                return_code: 0,
                stdout: "Test passed\n".into(),
                stderr: "".into(),
            }),
        };
        for profile in [
            JudgeProfile::oracle(),
            JudgeProfile::deepseek_agent_direct(),
            JudgeProfile::deepseek_plain(),
        ] {
            let judge = SurrogateLlmJudge::new(profile, 17);
            for style in [
                PromptStyle::Direct,
                PromptStyle::AgentDirect,
                PromptStyle::AgentIndirect,
            ] {
                for model in [DirectiveModel::OpenAcc, DirectiveModel::OpenMp] {
                    let tool_arg = style.uses_tools().then_some(&tools);
                    let prompt = build_prompt(style, model, VALID_ACC_CODE, tool_arg);
                    let slow = judge.complete(&prompt);
                    let code = CodeSignals::of_source(VALID_ACC_CODE, model);
                    let fast = judge.complete_with_signals(&prompt, model, &code, style, tool_arg);
                    assert_eq!(slow, fast, "divergence for {style:?}/{model:?}");
                }
            }
        }
    }

    #[test]
    fn direct_prompt_with_tool_marker_strings_in_code_falls_back() {
        // A Direct-style prompt whose *code* contains the tool-section
        // markers: the text-only judge misreads them as tool evidence, and
        // the fast path must reproduce that rather than trusting its
        // (marker-free) precomputed derivation.
        let snippets = [
            "int main() { printf(\"Compiler return code: %d\\n\", 1); return 0; }",
            "// When the compiled code is run, it gives the following results:\n// Return code: 1\nint main() { return 0; }",
        ];
        for code in snippets {
            for profile in [JudgeProfile::oracle(), JudgeProfile::deepseek_plain()] {
                for seed in 0..10 {
                    let judge = SurrogateLlmJudge::new(profile.clone(), seed);
                    let prompt =
                        build_prompt(PromptStyle::Direct, DirectiveModel::OpenMp, code, None);
                    let slow = judge.complete(&prompt);
                    let signals = CodeSignals::of_source(code, DirectiveModel::OpenMp);
                    let fast = judge.complete_with_signals(
                        &prompt,
                        DirectiveModel::OpenMp,
                        &signals,
                        PromptStyle::Direct,
                        None,
                    );
                    assert_eq!(slow, fast, "divergence for {code:?} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn agent_prompt_with_tool_marker_strings_in_code_stays_exact() {
        // Agent styles scan first occurrences, which are the genuine tool
        // section — marker strings inside the code must not disturb the
        // fast path's exactness (no fallback needed).
        let code = "int main() { printf(\"Compiler return code: %d\\n\", 1); return 0; }";
        let tools = ToolContext {
            compile: Some(ToolRecord {
                return_code: 0,
                stdout: "".into(),
                stderr: "".into(),
            }),
            run: Some(ToolRecord {
                return_code: 0,
                stdout: "ok".into(),
                stderr: "".into(),
            }),
        };
        for style in [PromptStyle::AgentDirect, PromptStyle::AgentIndirect] {
            for seed in 0..10 {
                let judge = SurrogateLlmJudge::new(JudgeProfile::deepseek_plain(), seed);
                let prompt = build_prompt(style, DirectiveModel::OpenMp, code, Some(&tools));
                let scanned = extract_signals(&prompt, DirectiveModel::OpenMp);
                let precomputed = CodeSignals::of_source(code, DirectiveModel::OpenMp)
                    .with_tools(style, Some(&tools));
                assert_eq!(scanned, precomputed, "{style:?}: signals diverged");
                let slow = judge.complete(&prompt);
                let fast = judge.complete_with_signals(
                    &prompt,
                    DirectiveModel::OpenMp,
                    &CodeSignals::of_source(code, DirectiveModel::OpenMp),
                    style,
                    Some(&tools),
                );
                assert_eq!(slow, fast, "{style:?} seed {seed}: response diverged");
            }
        }
    }

    #[test]
    fn mismatched_model_wording_falls_back_to_the_scanner() {
        // An OpenMP prompt whose *code* mentions OpenACC: the text-only
        // judge misreads the model, and the fast path must reproduce that.
        let code = "// ported from an OpenACC test\nint main() { return 0; }";
        let judge = SurrogateLlmJudge::new(JudgeProfile::oracle(), 3);
        let prompt = build_prompt(PromptStyle::Direct, DirectiveModel::OpenMp, code, None);
        let slow = judge.complete(&prompt);
        let signals = CodeSignals::of_source(code, DirectiveModel::OpenMp);
        let fast = judge.complete_with_signals(
            &prompt,
            DirectiveModel::OpenMp,
            &signals,
            PromptStyle::Direct,
            None,
        );
        assert_eq!(slow, fast);
    }

    #[test]
    fn oracle_judge_is_always_right_on_clear_signals() {
        let judge = SurrogateLlmJudge::new(JudgeProfile::oracle(), 0);
        // valid file -> valid
        let prompt = direct_prompt(VALID_ACC_CODE, DirectiveModel::OpenAcc);
        assert_eq!(
            extract_verdict(&judge.complete(&prompt)),
            Some(Verdict::Valid)
        );
        // file with no directives -> invalid
        let prompt = direct_prompt("int main() { return 0; }", DirectiveModel::OpenAcc);
        assert_eq!(
            extract_verdict(&judge.complete(&prompt)),
            Some(Verdict::Invalid)
        );
        // corrupted directive -> invalid
        let broken = VALID_ACC_CODE.replace("parallel loop", "paralell loop");
        let prompt = direct_prompt(&broken, DirectiveModel::OpenAcc);
        assert_eq!(
            extract_verdict(&judge.complete(&prompt)),
            Some(Verdict::Invalid)
        );
    }

    #[test]
    fn permissive_judge_always_says_valid() {
        let judge = SurrogateLlmJudge::new(JudgeProfile::permissive(), 0);
        for code in [VALID_ACC_CODE, "int main() { return 0; }"] {
            let prompt = direct_prompt(code, DirectiveModel::OpenAcc);
            assert_eq!(
                extract_verdict(&judge.complete(&prompt)),
                Some(Verdict::Valid)
            );
        }
    }

    #[test]
    fn direct_prompt_answers_use_correct_incorrect_wording() {
        let judge = SurrogateLlmJudge::new(JudgeProfile::oracle(), 0);
        let prompt = direct_prompt(VALID_ACC_CODE, DirectiveModel::OpenAcc);
        let response = judge.complete(&prompt);
        assert!(response.contains("FINAL JUDGEMENT: correct"));
        let agent_prompt = build_prompt(
            PromptStyle::AgentDirect,
            DirectiveModel::OpenAcc,
            VALID_ACC_CODE,
            None,
        );
        let response = judge.complete(&agent_prompt);
        assert!(response.contains("FINAL JUDGEMENT: valid"));
    }

    #[test]
    fn responses_are_deterministic_per_seed_and_differ_across_seeds() {
        let prompt = direct_prompt(VALID_ACC_CODE, DirectiveModel::OpenMp);
        let a = SurrogateLlmJudge::new(JudgeProfile::deepseek_plain(), 1).complete(&prompt);
        let b = SurrogateLlmJudge::new(JudgeProfile::deepseek_plain(), 1).complete(&prompt);
        assert_eq!(a, b);
        // Across many prompts, different seeds must not always agree (the
        // plain OpenMP profile has a high false-alarm rate, so verdicts flip).
        let mut disagreement = false;
        for i in 0..20 {
            let code = format!("{VALID_ACC_CODE}\n// variant {i}\n");
            let p = direct_prompt(&code, DirectiveModel::OpenMp);
            let x = SurrogateLlmJudge::new(JudgeProfile::deepseek_plain(), 1).complete(&p);
            let y = SurrogateLlmJudge::new(JudgeProfile::deepseek_plain(), 2).complete(&p);
            if extract_verdict(&x) != extract_verdict(&y) {
                disagreement = true;
                break;
            }
        }
        assert!(disagreement, "different seeds never changed any verdict");
    }
}
