//! Calibration profiles for the surrogate judge.
//!
//! A [`JudgeProfile`] holds, for each programming model, the probability
//! that the judge *acts on* each code/tool signal it extracted from the
//! prompt, plus the probability of a spurious complaint about a clean file
//! (`false_alarm`) and of failing to emit the required judgement phrase
//! (`format_failure`).
//!
//! The numbers are calibrated against the error profile the paper measured
//! for `deepseek-coder-33B-instruct`:
//!
//! * the plain (non-agent) judge — Tables I and II: nearly blind to missing
//!   brackets, undeclared variables and truncated verification logic in
//!   OpenACC files, good at spotting files with no OpenACC at all, with a
//!   strongly permissive bias; for OpenMP the pattern flips (better at
//!   syntax, almost never notices missing OpenMP, rejects most valid files);
//! * the agent judges LLMJ 1 / LLMJ 2 — Tables VII and VIII: much higher
//!   accuracy because nonzero compiler/runtime return codes in the prompt
//!   are strong invalid signals, yet they still ignore those tool outputs a
//!   sizeable fraction of the time.
//!
//! The reproduction targets the *shape* of those tables (orderings, which
//! stage catches which error class, bias signs); exact percentages depend on
//! this calibration and are compared in EXPERIMENTS.md.

use vv_dclang::DirectiveModel;

/// Per-signal reliabilities for one programming model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SignalReliability {
    /// P(act on "the file contains no directives of the target model").
    pub missing_directives: f64,
    /// P(act on an unbalanced-brace signal).
    pub bracket_imbalance: f64,
    /// P(act on an identifier assigned but never declared).
    pub undeclared_identifier: f64,
    /// P(act on a directive keyword that is not in the specification).
    pub corrupted_directive: f64,
    /// P(act on a pointer that is indexed but never allocated).
    pub missing_allocation: f64,
    /// P(act on missing serial-vs-parallel verification logic).
    pub missing_verification: f64,
    /// P(act on a nonzero compiler return code / compiler errors in stderr).
    pub compile_failure: f64,
    /// P(act on a nonzero runtime return code).
    pub runtime_failure: f64,
    /// P(complain about a file with no extracted signals).
    pub false_alarm: f64,
    /// P(response omits the required `FINAL JUDGEMENT:` phrase).
    pub format_failure: f64,
}

/// A named calibration profile with per-model reliabilities.
#[derive(Clone, Debug, PartialEq)]
pub struct JudgeProfile {
    /// Profile name (used in reports).
    pub name: &'static str,
    /// Reliabilities when judging OpenACC files.
    pub acc: SignalReliability,
    /// Reliabilities when judging OpenMP files.
    pub omp: SignalReliability,
}

impl JudgeProfile {
    /// Reliabilities for the given model.
    pub fn for_model(&self, model: DirectiveModel) -> &SignalReliability {
        match model {
            DirectiveModel::OpenAcc => &self.acc,
            DirectiveModel::OpenMp => &self.omp,
        }
    }

    /// The plain, non-agent judge with the direct analysis prompt
    /// (Part One of the paper; calibrated against Tables I–III).
    pub fn deepseek_plain() -> Self {
        Self {
            name: "deepseek-coder-33b-instruct (direct prompt, no tools)",
            acc: SignalReliability {
                missing_directives: 0.80,
                bracket_imbalance: 0.12,
                undeclared_identifier: 0.15,
                corrupted_directive: 0.17,
                missing_allocation: 0.13,
                missing_verification: 0.12,
                compile_failure: 0.0,
                runtime_failure: 0.0,
                false_alarm: 0.12,
                format_failure: 0.01,
            },
            omp: SignalReliability {
                missing_directives: 0.04,
                bracket_imbalance: 0.74,
                undeclared_identifier: 0.64,
                corrupted_directive: 0.49,
                missing_allocation: 0.45,
                missing_verification: 0.33,
                compile_failure: 0.0,
                runtime_failure: 0.0,
                false_alarm: 0.61,
                format_failure: 0.01,
            },
        }
    }

    /// LLMJ 1: the agent-based judge with the direct analysis prompt
    /// (calibrated against Tables VII–IX, "LLMJ 1" columns).
    pub fn deepseek_agent_direct() -> Self {
        Self {
            name: "deepseek-coder-33b-instruct (agent, direct analysis) — LLMJ 1",
            acc: SignalReliability {
                missing_directives: 0.97,
                bracket_imbalance: 0.15,
                undeclared_identifier: 0.45,
                corrupted_directive: 0.20,
                missing_allocation: 0.10,
                missing_verification: 0.15,
                compile_failure: 0.72,
                runtime_failure: 0.60,
                false_alarm: 0.08,
                format_failure: 0.01,
            },
            omp: SignalReliability {
                missing_directives: 0.65,
                bracket_imbalance: 0.14,
                undeclared_identifier: 0.38,
                corrupted_directive: 0.05,
                missing_allocation: 0.10,
                missing_verification: 0.72,
                compile_failure: 0.50,
                runtime_failure: 0.35,
                false_alarm: 0.07,
                format_failure: 0.01,
            },
        }
    }

    /// LLMJ 2: the agent-based judge with the indirect (describe-then-judge)
    /// prompt (calibrated against Tables VII–IX, "LLMJ 2" columns).
    pub fn deepseek_agent_indirect() -> Self {
        Self {
            name: "deepseek-coder-33b-instruct (agent, indirect analysis) — LLMJ 2",
            acc: SignalReliability {
                missing_directives: 0.995,
                bracket_imbalance: 0.10,
                undeclared_identifier: 0.66,
                corrupted_directive: 0.70,
                missing_allocation: 0.50,
                missing_verification: 0.27,
                compile_failure: 0.50,
                runtime_failure: 0.55,
                false_alarm: 0.21,
                format_failure: 0.01,
            },
            omp: SignalReliability {
                missing_directives: 0.85,
                bracket_imbalance: 0.10,
                undeclared_identifier: 0.30,
                corrupted_directive: 0.15,
                missing_allocation: 0.15,
                missing_verification: 0.48,
                compile_failure: 0.40,
                runtime_failure: 0.30,
                false_alarm: 0.04,
                format_failure: 0.01,
            },
        }
    }

    /// An idealized judge that always acts on every signal and never raises
    /// false alarms. Useful as an upper bound in ablation benchmarks and for
    /// testing the decision plumbing.
    pub fn oracle() -> Self {
        let perfect = SignalReliability {
            missing_directives: 1.0,
            bracket_imbalance: 1.0,
            undeclared_identifier: 1.0,
            corrupted_directive: 1.0,
            missing_allocation: 1.0,
            missing_verification: 1.0,
            compile_failure: 1.0,
            runtime_failure: 1.0,
            false_alarm: 0.0,
            format_failure: 0.0,
        };
        Self {
            name: "oracle",
            acc: perfect,
            omp: perfect,
        }
    }

    /// A judge that never acts on any signal (lower bound: always says
    /// "valid" unless a false alarm fires — here it never does).
    pub fn permissive() -> Self {
        let blind = SignalReliability {
            missing_directives: 0.0,
            bracket_imbalance: 0.0,
            undeclared_identifier: 0.0,
            corrupted_directive: 0.0,
            missing_allocation: 0.0,
            missing_verification: 0.0,
            compile_failure: 0.0,
            runtime_failure: 0.0,
            false_alarm: 0.0,
            format_failure: 0.0,
        };
        Self {
            name: "permissive",
            acc: blind,
            omp: blind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_probabilities(r: &SignalReliability) -> [f64; 10] {
        [
            r.missing_directives,
            r.bracket_imbalance,
            r.undeclared_identifier,
            r.corrupted_directive,
            r.missing_allocation,
            r.missing_verification,
            r.compile_failure,
            r.runtime_failure,
            r.false_alarm,
            r.format_failure,
        ]
    }

    #[test]
    fn probabilities_are_in_unit_interval() {
        for profile in [
            JudgeProfile::deepseek_plain(),
            JudgeProfile::deepseek_agent_direct(),
            JudgeProfile::deepseek_agent_indirect(),
            JudgeProfile::oracle(),
            JudgeProfile::permissive(),
        ] {
            for model in [DirectiveModel::OpenAcc, DirectiveModel::OpenMp] {
                for p in all_probabilities(profile.for_model(model)) {
                    assert!(
                        (0.0..=1.0).contains(&p),
                        "{} has probability {p}",
                        profile.name
                    );
                }
            }
        }
    }

    #[test]
    fn plain_profile_reflects_paper_asymmetries() {
        let plain = JudgeProfile::deepseek_plain();
        // Table I vs II: the plain judge is far better at spotting missing
        // OpenACC than missing OpenMP...
        assert!(plain.acc.missing_directives > plain.omp.missing_directives + 0.5);
        // ...and far worse at OpenACC syntax than OpenMP syntax...
        assert!(plain.omp.bracket_imbalance > plain.acc.bracket_imbalance + 0.4);
        // ...and rejects valid OpenMP files far more often (Table III bias).
        assert!(plain.omp.false_alarm > plain.acc.false_alarm + 0.3);
    }

    #[test]
    fn agent_profiles_gain_tool_reliability() {
        let plain = JudgeProfile::deepseek_plain();
        let agent = JudgeProfile::deepseek_agent_direct();
        for model in [DirectiveModel::OpenAcc, DirectiveModel::OpenMp] {
            assert_eq!(plain.for_model(model).compile_failure, 0.0);
            assert!(agent.for_model(model).compile_failure > 0.3);
        }
    }

    #[test]
    fn indirect_profile_is_more_restrictive_on_acc_valid_files() {
        // Table VII: LLMJ 2 recognized valid OpenACC tests less often (79%)
        // than LLMJ 1 (92%), i.e. a higher false-alarm rate.
        let direct = JudgeProfile::deepseek_agent_direct();
        let indirect = JudgeProfile::deepseek_agent_indirect();
        assert!(indirect.acc.false_alarm > direct.acc.false_alarm);
    }
}
