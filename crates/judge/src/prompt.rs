//! Prompt templates.
//!
//! These mirror the paper's Listings 1–4 verbatim in structure:
//!
//! * [`criteria_block`] — the six evaluation criteria (Listing 1);
//! * [`PromptStyle::Direct`] — the *direct analysis* prompt used in Part One
//!   (Listing 3, `FINAL JUDGEMENT: correct/incorrect`);
//! * [`PromptStyle::AgentDirect`] — the agent-based prompt that embeds
//!   compiler and runtime outputs (Listing 2, `valid/invalid`) → LLMJ 1;
//! * [`PromptStyle::AgentIndirect`] — the *indirect analysis* prompt that
//!   first asks for a description of the program (Listing 4) → LLMJ 2.
//!
//! # Allocation discipline
//!
//! Every static stretch of a prompt — the criteria, the instruction
//! paragraphs, the tool-section headers — is identical for a given
//! `(style, model)` pair, so those segments are rendered once per process
//! into a memoized template table. Building a prompt is then one
//! exact-capacity `String` allocation plus `push_str`s of the dynamic holes
//! (tool outputs and the source text); [`build_prompt_into`] appends into a
//! caller-provided buffer for paths that want to reuse one.

use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};
use vv_dclang::DirectiveModel;

/// Which prompt template to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PromptStyle {
    /// Listing 3: direct review of the code, no tool information.
    Direct,
    /// Listing 2: agent-based prompt with tool information, direct analysis.
    AgentDirect,
    /// Listing 4: agent-based prompt with tool information, indirect
    /// (describe-then-judge) analysis.
    AgentIndirect,
}

impl PromptStyle {
    /// Short name used in reports ("LLMJ 1"/"LLMJ 2" terminology follows the
    /// paper's Part Two).
    pub fn label(&self) -> &'static str {
        match self {
            PromptStyle::Direct => "direct (non-agent) LLMJ",
            PromptStyle::AgentDirect => "LLMJ 1 (agent, direct analysis)",
            PromptStyle::AgentIndirect => "LLMJ 2 (agent, indirect analysis)",
        }
    }

    /// True for the agent-based styles that embed tool outputs.
    pub fn uses_tools(&self) -> bool {
        !matches!(self, PromptStyle::Direct)
    }
}

/// Captured output of one external tool invocation (compiler or program).
///
/// The capture text is shared (`Arc<str>`) rather than owned: the pipeline
/// records keep the same captures, so building a judge context is two
/// reference-count bumps instead of two string copies per tool.
#[derive(Clone, Debug, Default)]
pub struct ToolRecord {
    /// Process exit code.
    pub return_code: i32,
    /// Captured standard output.
    pub stdout: Arc<str>,
    /// Captured standard error.
    pub stderr: Arc<str>,
}

/// The tool information available to an agent-based judge.
#[derive(Clone, Debug, Default)]
pub struct ToolContext {
    /// Compilation record, if the file was compiled.
    pub compile: Option<ToolRecord>,
    /// Execution record, if the compiled file was run.
    pub run: Option<ToolRecord>,
}

/// The static stretches of a `(style, model)` prompt: everything before the
/// tool section and everything between the tool section and the source.
/// For [`PromptStyle::Direct`] (no tool section) the whole preamble lives in
/// `head` and `tail` is empty.
struct PromptTemplate {
    head: String,
    tail: String,
}

/// The evaluation criteria of Listing 1, instantiated for a model.
pub fn criteria_block(model: DirectiveModel) -> String {
    criteria_static(model).to_string()
}

fn criteria_static(model: DirectiveModel) -> &'static str {
    static CELLS: [OnceLock<String>; 2] = [OnceLock::new(), OnceLock::new()];
    CELLS[model_index(model)].get_or_init(|| {
        let name = model.display_name();
        format!(
            "Syntax: Ensure all {name} directives and pragmas are syntactically correct.\n\
             Directive Appropriateness: Check if the right directives are used for the intended parallel computations.\n\
             Clause Correctness: Verify that all clauses within the directives are correctly used according to {name} specifications.\n\
             Memory Management: Assess the accuracy of data movement between CPU and GPU.\n\
             Compliance: Ensure the code adheres to the latest {name} specifications and best practices.\n\
             Logic: Verify that the logic of the test (e.g. performing the same computation in serial and parallel and comparing) is correct.\n"
        )
    })
}

fn model_index(model: DirectiveModel) -> usize {
    match model {
        DirectiveModel::OpenAcc => 0,
        DirectiveModel::OpenMp => 1,
    }
}

fn style_index(style: PromptStyle) -> usize {
    match style {
        PromptStyle::Direct => 0,
        PromptStyle::AgentDirect => 1,
        PromptStyle::AgentIndirect => 2,
    }
}

fn template(style: PromptStyle, model: DirectiveModel) -> &'static PromptTemplate {
    #[allow(clippy::declare_interior_mutable_const)]
    const CELL: OnceLock<PromptTemplate> = OnceLock::new();
    static CELLS: [OnceLock<PromptTemplate>; 6] = [CELL; 6];
    CELLS[style_index(style) * 2 + model_index(model)].get_or_init(|| build_template(style, model))
}

fn build_template(style: PromptStyle, model: DirectiveModel) -> PromptTemplate {
    let name = model.display_name();
    let criteria = criteria_static(model);
    match style {
        PromptStyle::Direct => PromptTemplate {
            head: format!(
                "Review the following {name} code and evaluate it based on the following criteria:\n\n\
                 {criteria}\
                 Based on these criteria, evaluate the code in a brief summary, then respond with precisely \"FINAL JUDGEMENT: correct\" (or incorrect).\n\
                 You MUST include the exact phrase \"FINAL JUDGEMENT: correct\" in your evaluation if you believe the code is correct. Otherwise, you must include the phrase \"FINAL JUDGEMENT: incorrect\" in your evaluation.\n\
                 Here is the code:\n"
            ),
            tail: String::new(),
        },
        PromptStyle::AgentDirect => PromptTemplate {
            head: format!(
                "{criteria}\
                 Based on these criteria, evaluate the code and determine if it is a valid or invalid test. Think step by step.\n\
                 You MUST include the exact phrase, \"FINAL JUDGEMENT: valid\" in your response if you deem the test to be valid.\n\
                 If you deem the test to be invalid, include the exact phrase \"FINAL JUDGEMENT: invalid\" in your response instead.\n\
                 Here is some information about the code to help you.\n\
                 When compiled with a compliant {name} compiler, the below code causes the following outputs:\n"
            ),
            tail: "Here is the code:\n".to_string(),
        },
        PromptStyle::AgentIndirect => PromptTemplate {
            head: format!(
                "Describe what the below {name} program will do when run. Think step by step.\n\
                 Here is some information about the code to help you; you do not have to compile or run the code yourself.\n\
                 When compiled with a compliant {name} compiler, the below code causes the following outputs:\n"
            ),
            tail: format!(
                "Using this information, describe in full detail how the below code works, what the below code will do when run, and suggest why the below code might have been written this way.\n\
                 Then, based on that description, determine whether the described program would be a valid or invalid compiler test for {name} compilers.\n\
                 You MUST include the exact phrase \"FINAL JUDGEMENT: valid\" in your final response if you believe that your description of the below {name} code describes a valid compiler test; otherwise, your final response MUST include the exact phrase \"FINAL JUDGEMENT: invalid\".\n\
                 Here is the code for you to analyze:\n"
            ),
        },
    }
}

/// Append the dynamic interior of the tool section (everything after the
/// memoized "When compiled with ..." header line, which lives in the
/// template head).
fn write_tool_dynamics(out: &mut String, tools: Option<&ToolContext>) {
    static EMPTY: OnceLock<ToolRecord> = OnceLock::new();
    let empty = EMPTY.get_or_init(ToolRecord::default);
    let compile = tools.and_then(|t| t.compile.as_ref()).unwrap_or(empty);
    let run = tools.and_then(|t| t.run.as_ref()).unwrap_or(empty);
    out.push_str("Compiler return code: ");
    let _ = write!(out, "{}", compile.return_code);
    out.push_str("\nCompiler STDERR: ");
    out.push_str(compile.stderr.trim_end());
    out.push_str("\nCompiler STDOUT: ");
    out.push_str(compile.stdout.trim_end());
    out.push_str("\nWhen the compiled code is run, it gives the following results:\nReturn code: ");
    let _ = write!(out, "{}", run.return_code);
    out.push_str("\nSTDERR: ");
    out.push_str(run.stderr.trim_end());
    out.push_str("\nSTDOUT: ");
    out.push_str(run.stdout.trim_end());
    out.push('\n');
}

/// Build the full prompt for a file.
///
/// `tools` must be provided for the agent-based styles; it is ignored for
/// [`PromptStyle::Direct`]. The returned string is built with exact-enough
/// capacity in a single allocation.
pub fn build_prompt(
    style: PromptStyle,
    model: DirectiveModel,
    source: &str,
    tools: Option<&ToolContext>,
) -> String {
    let tpl = template(style, model);
    let tool_len = tools.map_or(0, |t| {
        t.compile
            .as_ref()
            .map_or(0, |r| r.stdout.len() + r.stderr.len())
            + t.run
                .as_ref()
                .map_or(0, |r| r.stdout.len() + r.stderr.len())
    });
    let mut out =
        String::with_capacity(tpl.head.len() + tpl.tail.len() + source.len() + tool_len + 160);
    build_prompt_into(&mut out, style, model, source, tools);
    out
}

/// Append the full prompt for a file to `out` (see [`build_prompt`]).
pub fn build_prompt_into(
    out: &mut String,
    style: PromptStyle,
    model: DirectiveModel,
    source: &str,
    tools: Option<&ToolContext>,
) {
    let tpl = template(style, model);
    out.push_str(&tpl.head);
    if style.uses_tools() {
        write_tool_dynamics(out, tools);
        out.push_str(&tpl.tail);
    }
    out.push_str(source);
}

#[cfg(test)]
mod tests {
    use super::*;

    const CODE: &str = "int main() { return 0; }";

    /// The pre-memoization implementation, kept verbatim as the reference
    /// for byte-identical prompt construction.
    mod legacy {
        use super::*;

        pub fn criteria_block(model: DirectiveModel) -> String {
            let name = model.display_name();
            format!(
                "Syntax: Ensure all {name} directives and pragmas are syntactically correct.\n\
                 Directive Appropriateness: Check if the right directives are used for the intended parallel computations.\n\
                 Clause Correctness: Verify that all clauses within the directives are correctly used according to {name} specifications.\n\
                 Memory Management: Assess the accuracy of data movement between CPU and GPU.\n\
                 Compliance: Ensure the code adheres to the latest {name} specifications and best practices.\n\
                 Logic: Verify that the logic of the test (e.g. performing the same computation in serial and parallel and comparing) is correct.\n"
            )
        }

        fn tool_section(model: DirectiveModel, tools: Option<&ToolContext>) -> String {
            let name = model.display_name();
            let empty = ToolRecord::default();
            let compile = tools.and_then(|t| t.compile.as_ref()).unwrap_or(&empty);
            let run = tools.and_then(|t| t.run.as_ref()).unwrap_or(&empty);
            let mut s = String::new();
            let _ = writeln!(
                s,
                "When compiled with a compliant {name} compiler, the below code causes the following outputs:"
            );
            let _ = writeln!(s, "Compiler return code: {}", compile.return_code);
            let _ = writeln!(s, "Compiler STDERR: {}", compile.stderr.trim_end());
            let _ = writeln!(s, "Compiler STDOUT: {}", compile.stdout.trim_end());
            let _ = writeln!(
                s,
                "When the compiled code is run, it gives the following results:"
            );
            let _ = writeln!(s, "Return code: {}", run.return_code);
            let _ = writeln!(s, "STDERR: {}", run.stderr.trim_end());
            let _ = writeln!(s, "STDOUT: {}", run.stdout.trim_end());
            s
        }

        pub fn build_prompt(
            style: PromptStyle,
            model: DirectiveModel,
            source: &str,
            tools: Option<&ToolContext>,
        ) -> String {
            let name = model.display_name();
            let criteria = criteria_block(model);
            match style {
                PromptStyle::Direct => format!(
                    "Review the following {name} code and evaluate it based on the following criteria:\n\n\
                     {criteria}\
                     Based on these criteria, evaluate the code in a brief summary, then respond with precisely \"FINAL JUDGEMENT: correct\" (or incorrect).\n\
                     You MUST include the exact phrase \"FINAL JUDGEMENT: correct\" in your evaluation if you believe the code is correct. Otherwise, you must include the phrase \"FINAL JUDGEMENT: incorrect\" in your evaluation.\n\
                     Here is the code:\n{source}"
                ),
                PromptStyle::AgentDirect => format!(
                    "{criteria}\
                     Based on these criteria, evaluate the code and determine if it is a valid or invalid test. Think step by step.\n\
                     You MUST include the exact phrase, \"FINAL JUDGEMENT: valid\" in your response if you deem the test to be valid.\n\
                     If you deem the test to be invalid, include the exact phrase \"FINAL JUDGEMENT: invalid\" in your response instead.\n\
                     Here is some information about the code to help you.\n\
                     {tool_info}\
                     Here is the code:\n{source}",
                    tool_info = tool_section(model, tools),
                ),
                PromptStyle::AgentIndirect => format!(
                    "Describe what the below {name} program will do when run. Think step by step.\n\
                     Here is some information about the code to help you; you do not have to compile or run the code yourself.\n\
                     {tool_info}\
                     Using this information, describe in full detail how the below code works, what the below code will do when run, and suggest why the below code might have been written this way.\n\
                     Then, based on that description, determine whether the described program would be a valid or invalid compiler test for {name} compilers.\n\
                     You MUST include the exact phrase \"FINAL JUDGEMENT: valid\" in your final response if you believe that your description of the below {name} code describes a valid compiler test; otherwise, your final response MUST include the exact phrase \"FINAL JUDGEMENT: invalid\".\n\
                     Here is the code for you to analyze:\n{source}",
                    tool_info = tool_section(model, tools),
                ),
            }
        }
    }

    fn sample_tools() -> ToolContext {
        ToolContext {
            compile: Some(ToolRecord {
                return_code: 2,
                stdout: "compile out\n".into(),
                stderr: "NVC++-S-0155-bad (test.c: 9)\nsecond line\n".into(),
            }),
            run: Some(ToolRecord {
                return_code: 139,
                stdout: "partial output".into(),
                stderr: "Segmentation fault".into(),
            }),
        }
    }

    #[test]
    fn memoized_prompts_are_byte_identical_to_legacy() {
        let tool_variants: [Option<ToolContext>; 3] = [
            None,
            Some(sample_tools()),
            Some(ToolContext {
                compile: Some(ToolRecord::default()),
                run: None,
            }),
        ];
        for style in [
            PromptStyle::Direct,
            PromptStyle::AgentDirect,
            PromptStyle::AgentIndirect,
        ] {
            for model in [DirectiveModel::OpenAcc, DirectiveModel::OpenMp] {
                for tools in &tool_variants {
                    let new = build_prompt(style, model, CODE, tools.as_ref());
                    let old = legacy::build_prompt(style, model, CODE, tools.as_ref());
                    assert_eq!(new, old, "divergence for {style:?}/{model:?}");
                }
                assert_eq!(criteria_block(model), legacy::criteria_block(model));
            }
        }
    }

    #[test]
    fn build_prompt_into_appends() {
        let mut buf = String::from("PREFIX|");
        build_prompt_into(
            &mut buf,
            PromptStyle::Direct,
            DirectiveModel::OpenAcc,
            CODE,
            None,
        );
        assert!(buf.starts_with("PREFIX|Review the following OpenACC code"));
    }

    #[test]
    fn criteria_mention_all_six_axes() {
        for model in [DirectiveModel::OpenAcc, DirectiveModel::OpenMp] {
            let c = criteria_block(model);
            for axis in [
                "Syntax:",
                "Directive Appropriateness:",
                "Clause Correctness:",
                "Memory Management:",
                "Compliance:",
                "Logic:",
            ] {
                assert!(c.contains(axis), "missing {axis}");
            }
            assert!(c.contains(model.display_name()));
        }
    }

    #[test]
    fn direct_prompt_uses_correct_incorrect_phrasing() {
        let p = build_prompt(PromptStyle::Direct, DirectiveModel::OpenAcc, CODE, None);
        assert!(p.contains("FINAL JUDGEMENT: correct"));
        assert!(p.contains("FINAL JUDGEMENT: incorrect"));
        assert!(!p.contains("Compiler return code"));
        assert!(p.contains("Here is the code:"));
        assert!(p.ends_with(CODE));
    }

    #[test]
    fn agent_prompts_embed_tool_outputs() {
        let tools = ToolContext {
            compile: Some(ToolRecord {
                return_code: 2,
                stdout: "".into(),
                stderr: "NVC++-S-0155-bad".into(),
            }),
            run: Some(ToolRecord {
                return_code: 0,
                stdout: "Test passed".into(),
                stderr: "".into(),
            }),
        };
        for style in [PromptStyle::AgentDirect, PromptStyle::AgentIndirect] {
            let p = build_prompt(style, DirectiveModel::OpenAcc, CODE, Some(&tools));
            assert!(p.contains("Compiler return code: 2"));
            assert!(p.contains("NVC++-S-0155-bad"));
            assert!(p.contains("Return code: 0"));
            assert!(p.contains("Test passed"));
            assert!(p.contains("FINAL JUDGEMENT: valid"));
            assert!(p.contains("FINAL JUDGEMENT: invalid"));
        }
    }

    #[test]
    fn indirect_prompt_asks_for_a_description_first() {
        let p = build_prompt(
            PromptStyle::AgentIndirect,
            DirectiveModel::OpenMp,
            CODE,
            None,
        );
        assert!(p.starts_with("Describe what the below OpenMP program will do when run."));
        assert!(p.contains("valid or invalid compiler test for OpenMP compilers"));
    }

    #[test]
    fn style_labels_and_tool_usage() {
        assert!(!PromptStyle::Direct.uses_tools());
        assert!(PromptStyle::AgentDirect.uses_tools());
        assert!(PromptStyle::AgentIndirect.uses_tools());
        assert!(PromptStyle::AgentDirect.label().contains("LLMJ 1"));
        assert!(PromptStyle::AgentIndirect.label().contains("LLMJ 2"));
    }

    #[test]
    fn missing_tool_context_renders_zero_return_codes() {
        let p = build_prompt(PromptStyle::AgentDirect, DirectiveModel::OpenMp, CODE, None);
        assert!(p.contains("Compiler return code: 0"));
    }
}
