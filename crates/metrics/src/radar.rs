//! Radar-plot categories (Figures 3–6).
//!
//! The paper's radar plots group the issue IDs into four error categories
//! plus valid-test recognition. The mapping used here is documented in
//! DESIGN.md:
//!
//! | Radar axis | Issue IDs |
//! |---|---|
//! | Improper directive use | 0 |
//! | Improper syntax | 1, 2 |
//! | Missing OpenACC/OpenMP | 3 |
//! | Test logic | 4 |
//! | Valid test recognition | 5 |

use crate::EvaluationRecord;
use vv_probing::IssueKind;

/// One axis of the radar plots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RadarCategory {
    /// Improper directive use (issue 0).
    ImproperDirectiveUse,
    /// Improper syntax (issues 1 and 2).
    ImproperSyntax,
    /// Missing OpenACC/OpenMP code entirely (issue 3).
    MissingModelCode,
    /// Broken test logic (issue 4).
    TestLogic,
    /// Recognition of valid tests (issue 5).
    ValidRecognition,
}

impl RadarCategory {
    /// All axes in display order.
    pub const ALL: [RadarCategory; 5] = [
        RadarCategory::ImproperDirectiveUse,
        RadarCategory::ImproperSyntax,
        RadarCategory::MissingModelCode,
        RadarCategory::TestLogic,
        RadarCategory::ValidRecognition,
    ];

    /// Axis label as it would appear on the plot.
    pub fn label(&self) -> &'static str {
        match self {
            RadarCategory::ImproperDirectiveUse => "Improper directive use",
            RadarCategory::ImproperSyntax => "Improper syntax",
            RadarCategory::MissingModelCode => "Missing OpenACC/OpenMP",
            RadarCategory::TestLogic => "Test logic",
            RadarCategory::ValidRecognition => "Valid test recognition",
        }
    }

    /// Which radar axis an issue belongs to.
    pub fn of_issue(issue: IssueKind) -> RadarCategory {
        match issue {
            IssueKind::RemovedAllocOrSwappedDirective => RadarCategory::ImproperDirectiveUse,
            IssueKind::RemovedOpeningBracket | IssueKind::UndeclaredVariableUse => {
                RadarCategory::ImproperSyntax
            }
            IssueKind::ReplacedWithNonDirectiveCode => RadarCategory::MissingModelCode,
            IssueKind::RemovedLastBracketedSection => RadarCategory::TestLogic,
            IssueKind::NoIssue => RadarCategory::ValidRecognition,
        }
    }
}

/// One point of a radar series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RadarPoint {
    /// The axis.
    pub category: RadarCategory,
    /// Number of records on this axis.
    pub count: usize,
    /// Accuracy on this axis in `[0, 1]`; `None` when the axis has no
    /// records, so an empty axis is distinguishable from a 0%-accurate one.
    pub accuracy: Option<f64>,
}

/// Compute the radar series (per-category accuracy) for a set of records.
///
/// Thin wrapper over a one-shot [`crate::accumulate::RadarAccumulator`]
/// fold; streaming consumers should fold the accumulator directly.
pub fn radar_series(records: &[EvaluationRecord]) -> Vec<RadarPoint> {
    use crate::accumulate::{Accumulator, RadarAccumulator};
    RadarAccumulator::fold(records).series()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vv_judge::Verdict;

    #[test]
    fn every_issue_maps_to_exactly_one_category() {
        for issue in IssueKind::ALL {
            let category = RadarCategory::of_issue(issue);
            assert!(RadarCategory::ALL.contains(&category));
        }
        assert_eq!(
            RadarCategory::of_issue(IssueKind::RemovedOpeningBracket),
            RadarCategory::of_issue(IssueKind::UndeclaredVariableUse)
        );
    }

    #[test]
    fn radar_series_covers_all_axes_and_counts_sum() {
        let records = vec![
            EvaluationRecord::new("a", IssueKind::NoIssue, Some(Verdict::Valid)),
            EvaluationRecord::new(
                "b",
                IssueKind::RemovedOpeningBracket,
                Some(Verdict::Invalid),
            ),
            EvaluationRecord::new("c", IssueKind::UndeclaredVariableUse, Some(Verdict::Valid)),
            EvaluationRecord::new(
                "d",
                IssueKind::ReplacedWithNonDirectiveCode,
                Some(Verdict::Invalid),
            ),
        ];
        let series = radar_series(&records);
        assert_eq!(series.len(), 5);
        let total: usize = series.iter().map(|p| p.count).sum();
        assert_eq!(total, records.len());
        let syntax = series
            .iter()
            .find(|p| p.category == RadarCategory::ImproperSyntax)
            .unwrap();
        assert_eq!(syntax.count, 2);
        assert!((syntax.accuracy.unwrap() - 0.5).abs() < 1e-12);
        // The test-logic axis saw no records: an empty cell, not 0%.
        let logic = series
            .iter()
            .find(|p| p.category == RadarCategory::TestLogic)
            .unwrap();
        assert_eq!(logic.count, 0);
        assert_eq!(logic.accuracy, None);
    }

    #[test]
    fn labels_are_human_readable() {
        for category in RadarCategory::ALL {
            assert!(!category.label().is_empty());
        }
        assert_eq!(
            RadarCategory::MissingModelCode.label(),
            "Missing OpenACC/OpenMP"
        );
    }
}
