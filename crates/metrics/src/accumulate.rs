//! Streaming, mergeable metrics accumulators.
//!
//! The batch functions in the crate root ([`crate::per_issue`],
//! [`crate::overall`], [`crate::radar_series`]) take a fully materialized
//! `&[EvaluationRecord]`. At the scale the corpus and pipeline layers
//! stream (hundreds of thousands of cases), materializing that slice is
//! exactly the allocation the streaming `CaseSource` → `ValidationService`
//! path was built to avoid. This module provides the constant-memory
//! counterpart: a family of [`Accumulator`]s that fold one observation at a
//! time and merge pairwise, so sharded or distributed folds recombine into
//! the same result as a single pass.
//!
//! # The merge laws
//!
//! Every accumulator `A` in this module satisfies, for any split of an
//! observation stream into parts (asserted in `tests/metrics_laws.rs`):
//!
//! * **identity** — merging a fresh `A::default()` into an accumulator
//!   leaves it unchanged;
//! * **commutativity / associativity** — any merge tree over the parts
//!   produces the same state;
//! * **fold/merge exchange** — folding the whole stream equals folding the
//!   parts independently and merging, *byte-for-byte*: the counters are
//!   integers and every derived `f64` is computed once, at read time, from
//!   those integers.
//!
//! Together with the corpus layer's shard-union law (`shard(k, n)` sources
//! recombine byte-identically to the unsharded stream), this makes sharded
//! metrics exact: fold each shard on its own worker, merge, and the result
//! is indistinguishable from the single-pass fold.
//!
//! ```
//! use vv_judge::Verdict;
//! use vv_metrics::accumulate::{Accumulator, MetricsSink};
//! use vv_metrics::EvaluationRecord;
//! use vv_probing::IssueKind;
//!
//! let records: Vec<EvaluationRecord> = (0..10)
//!     .map(|i| {
//!         let issue = IssueKind::ALL[i % 6];
//!         let verdict = if i % 3 == 0 { Verdict::Valid } else { Verdict::Invalid };
//!         EvaluationRecord::new(format!("case_{i}"), issue, Some(verdict))
//!     })
//!     .collect();
//!
//! // One pass over the whole stream...
//! let whole: MetricsSink = Accumulator::fold(&records);
//!
//! // ...equals two half-stream folds, merged.
//! let (left, right) = records.split_at(5);
//! let mut sharded: MetricsSink = Accumulator::fold(left);
//! sharded.merge(&Accumulator::fold(right));
//! assert_eq!(sharded, whole);
//! assert_eq!(sharded.overall_stats(), vv_metrics::overall(&records));
//! ```

use std::fmt;

use crate::radar::{RadarCategory, RadarPoint};
use crate::{EvaluationRecord, OverallStats, PerIssueRow};
use vv_judge::{JudgeOutcome, Verdict};
use vv_probing::IssueKind;

/// The correctness rule every record accumulator folds by (the same rule
/// as [`EvaluationRecord::is_correct`]): a missing verdict counts as
/// `Invalid` — the evaluation cannot accept a file it could not judge.
fn verdict_is_correct(issue: IssueKind, verdict: Option<Verdict>) -> bool {
    verdict.unwrap_or(Verdict::Invalid).is_valid() == issue.is_valid()
}

/// A constant-memory streaming fold over observations of type `T`.
///
/// Implementations observe one item at a time and merge pairwise; see the
/// [module docs](self) for the laws every implementation upholds.
pub trait Accumulator<T: ?Sized>: Default {
    /// Fold one observation into the accumulator.
    fn observe(&mut self, item: &T);

    /// Absorb another accumulator's state (the other side is unchanged).
    fn merge(&mut self, other: &Self);

    /// One-shot fold over a batch — the bridge the crate's batch functions
    /// are built on.
    fn fold<'a, I>(items: I) -> Self
    where
        Self: Sized,
        T: 'a,
        I: IntoIterator<Item = &'a T>,
    {
        let mut accumulator = Self::default();
        for item in items {
            accumulator.observe(item);
        }
        accumulator
    }
}

/// Count/correct pair shared by the per-issue and radar accumulators.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct CorrectnessCell {
    count: usize,
    correct: usize,
}

impl CorrectnessCell {
    fn observe(&mut self, correct: bool) {
        self.count += 1;
        if correct {
            self.correct += 1;
        }
    }

    fn merge(&mut self, other: &CorrectnessCell) {
        self.count += other.count;
        self.correct += other.correct;
    }

    /// `None` when the cell never saw a record — distinguishable from a
    /// 0%-accurate cell.
    fn accuracy(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.correct as f64 / self.count as f64)
        }
    }
}

/// Streaming per-issue accuracy (Tables I, II, IV, V, VII, VIII).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PerIssueAccumulator {
    cells: [CorrectnessCell; IssueKind::ALL.len()],
}

impl Accumulator<EvaluationRecord> for PerIssueAccumulator {
    fn observe(&mut self, record: &EvaluationRecord) {
        self.observe_case(record.issue, record.verdict);
    }

    fn merge(&mut self, other: &Self) {
        for (cell, theirs) in self.cells.iter_mut().zip(&other.cells) {
            cell.merge(theirs);
        }
    }
}

impl PerIssueAccumulator {
    /// Allocation-free observation for streaming hot paths (a record's
    /// identity never enters the fold, so no `EvaluationRecord` — and no
    /// id `String` — needs to exist).
    pub fn observe_case(&mut self, issue: IssueKind, verdict: Option<Verdict>) {
        self.cells[issue.id() as usize].observe(verdict_is_correct(issue, verdict));
    }

    /// The accumulated table rows, in paper issue-ID order.
    pub fn rows(&self) -> Vec<PerIssueRow> {
        IssueKind::ALL
            .iter()
            .map(|issue| {
                let cell = &self.cells[issue.id() as usize];
                PerIssueRow {
                    issue: *issue,
                    count: cell.count,
                    correct: cell.correct,
                    incorrect: cell.count - cell.correct,
                    accuracy: cell.accuracy(),
                }
            })
            .collect()
    }

    /// Total number of records observed.
    pub fn total(&self) -> usize {
        self.cells.iter().map(|c| c.count).sum()
    }
}

/// Streaming overall accuracy and bias (Tables III, VI, IX).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OverallAccumulator {
    total: usize,
    mistakes: usize,
    /// Sum of per-mistake bias contributions: `+1` permissive (passed an
    /// invalid file), `−1` restrictive (failed a valid one).
    bias_sum: i64,
}

impl Accumulator<EvaluationRecord> for OverallAccumulator {
    fn observe(&mut self, record: &EvaluationRecord) {
        self.observe_case(record.issue, record.verdict);
    }

    fn merge(&mut self, other: &Self) {
        self.total += other.total;
        self.mistakes += other.mistakes;
        self.bias_sum += other.bias_sum;
    }
}

impl OverallAccumulator {
    /// Allocation-free observation for streaming hot paths.
    pub fn observe_case(&mut self, issue: IssueKind, verdict: Option<Verdict>) {
        self.total += 1;
        if verdict_is_correct(issue, verdict) {
            return;
        }
        self.mistakes += 1;
        self.bias_sum += if issue.is_valid() { -1 } else { 1 };
    }

    /// The accumulated aggregate statistics.
    pub fn stats(&self) -> OverallStats {
        let accuracy = if self.total == 0 {
            0.0
        } else {
            (self.total - self.mistakes) as f64 / self.total as f64
        };
        let bias = if self.mistakes == 0 {
            0.0
        } else {
            self.bias_sum as f64 / self.mistakes as f64
        };
        OverallStats {
            total: self.total,
            mistakes: self.mistakes,
            accuracy,
            bias,
        }
    }
}

/// Streaming radar-axis accuracy (the data behind Figures 3–6).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RadarAccumulator {
    cells: [CorrectnessCell; RadarCategory::ALL.len()],
}

fn radar_slot(category: RadarCategory) -> usize {
    match category {
        RadarCategory::ImproperDirectiveUse => 0,
        RadarCategory::ImproperSyntax => 1,
        RadarCategory::MissingModelCode => 2,
        RadarCategory::TestLogic => 3,
        RadarCategory::ValidRecognition => 4,
    }
}

impl Accumulator<EvaluationRecord> for RadarAccumulator {
    fn observe(&mut self, record: &EvaluationRecord) {
        self.observe_case(record.issue, record.verdict);
    }

    fn merge(&mut self, other: &Self) {
        for (cell, theirs) in self.cells.iter_mut().zip(&other.cells) {
            cell.merge(theirs);
        }
    }
}

impl RadarAccumulator {
    /// Allocation-free observation for streaming hot paths.
    pub fn observe_case(&mut self, issue: IssueKind, verdict: Option<Verdict>) {
        let slot = radar_slot(RadarCategory::of_issue(issue));
        self.cells[slot].observe(verdict_is_correct(issue, verdict));
    }

    /// The accumulated radar series, axes in display order.
    pub fn series(&self) -> Vec<RadarPoint> {
        RadarCategory::ALL
            .iter()
            .map(|category| {
                let cell = &self.cells[radar_slot(*category)];
                RadarPoint {
                    category: *category,
                    count: cell.count,
                    accuracy: cell.accuracy(),
                }
            })
            .collect()
    }
}

/// The composite sink: per-issue, overall and radar accumulators fed from
/// one `observe` call — everything a paper table or figure needs about one
/// evaluator, in a few hundred bytes, whatever the corpus size.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSink {
    per_issue: PerIssueAccumulator,
    overall: OverallAccumulator,
    radar: RadarAccumulator,
}

impl Accumulator<EvaluationRecord> for MetricsSink {
    fn observe(&mut self, record: &EvaluationRecord) {
        self.observe_case(record.issue, record.verdict);
    }

    fn merge(&mut self, other: &Self) {
        self.per_issue.merge(&other.per_issue);
        self.overall.merge(&other.overall);
        self.radar.merge(&other.radar);
    }
}

impl MetricsSink {
    /// Allocation-free observation for streaming hot paths: folds the
    /// (issue, verdict) pair into all three accumulators without requiring
    /// an [`EvaluationRecord`] (whose id the sinks never read).
    pub fn observe_case(&mut self, issue: IssueKind, verdict: Option<Verdict>) {
        self.per_issue.observe_case(issue, verdict);
        self.overall.observe_case(issue, verdict);
        self.radar.observe_case(issue, verdict);
    }

    /// Per-issue table rows (equals [`crate::per_issue`] over the same
    /// records).
    pub fn per_issue_rows(&self) -> Vec<PerIssueRow> {
        self.per_issue.rows()
    }

    /// Overall accuracy and bias (equals [`crate::overall`]).
    pub fn overall_stats(&self) -> OverallStats {
        self.overall.stats()
    }

    /// Radar series (equals [`crate::radar_series`]).
    pub fn radar_series(&self) -> Vec<RadarPoint> {
        self.radar.series()
    }

    /// Number of records observed.
    pub fn total(&self) -> usize {
        self.overall.stats().total
    }

    /// True if nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }
}

/// Fixed-bucket streaming latency histogram.
///
/// Observations land in [`LatencyHistogram::BUCKET_COUNT`] buckets of
/// [`LatencyHistogram::BUCKET_WIDTH_MS`] milliseconds each, plus one
/// overflow bucket; the bucket counters are integers, so the histogram is
/// **exact under merge**: merging shard histograms produces bit-identical
/// counts — and therefore bit-identical quantile estimates — to observing
/// the unsharded stream.
///
/// Quantiles are nearest-rank over the buckets and report the upper edge of
/// the selected bucket (the overflow bucket reports the maximum observation,
/// which is itself exact under merge).
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyHistogram {
    buckets: [u64; Self::BUCKET_COUNT + 1],
    count: u64,
    max_ms: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; Self::BUCKET_COUNT + 1],
            count: 0,
            max_ms: 0.0,
        }
    }
}

impl LatencyHistogram {
    /// Width of one bucket, in milliseconds.
    pub const BUCKET_WIDTH_MS: f64 = 250.0;
    /// Number of regular buckets; observations at or beyond
    /// `BUCKET_COUNT * BUCKET_WIDTH_MS` land in the overflow bucket.
    pub const BUCKET_COUNT: usize = 64;

    /// Record one latency observation (negative values clamp to zero).
    pub fn observe_ms(&mut self, ms: f64) {
        let ms = ms.max(0.0);
        let slot = ((ms / Self::BUCKET_WIDTH_MS) as usize).min(Self::BUCKET_COUNT);
        self.buckets[slot] += 1;
        self.count += 1;
        self.max_ms = self.max_ms.max(ms);
    }

    /// Absorb another histogram's buckets (exact: the merged counts equal
    /// those of a single histogram fed both observation streams).
    pub fn merge(&mut self, other: &Self) {
        for (bucket, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *bucket += theirs;
        }
        self.count += other.count;
        self.max_ms = self.max_ms.max(other.max_ms);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest observation seen, in milliseconds (0 when empty).
    pub fn max_ms(&self) -> f64 {
        self.max_ms
    }

    /// Nearest-rank quantile estimate in milliseconds; `None` when empty.
    /// Bucket upper edges are clamped to the observed maximum (itself exact
    /// under merge), so a quantile never exceeds any latency that occurred.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (slot, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return Some(if slot == Self::BUCKET_COUNT {
                    self.max_ms
                } else {
                    ((slot as f64 + 1.0) * Self::BUCKET_WIDTH_MS).min(self.max_ms)
                });
            }
        }
        // count > 0 guarantees some bucket crossed the rank above.
        unreachable!("rank {rank} not covered by {} observations", self.count)
    }

    /// Median latency estimate.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th-percentile latency estimate.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th-percentile latency estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Raw bucket counters: `BUCKET_COUNT` regular buckets followed by the
    /// overflow bucket. Together with [`LatencyHistogram::max_ms`] this is
    /// the histogram's complete state (the observation count is always the
    /// bucket sum), which is what the wire codec serializes.
    pub fn bucket_counts(&self) -> &[u64; Self::BUCKET_COUNT + 1] {
        &self.buckets
    }

    /// Reconstruct a histogram from raw bucket counters and the observed
    /// maximum — the inverse of [`LatencyHistogram::bucket_counts`]. The
    /// observation count is recomputed as the bucket sum, so a decoded
    /// histogram is bit-identical to the one that was encoded.
    pub fn from_raw(buckets: [u64; Self::BUCKET_COUNT + 1], max_ms: f64) -> Self {
        let count = buckets.iter().sum();
        Self {
            buckets,
            count,
            max_ms,
        }
    }
}

impl fmt::Display for LatencyHistogram {
    /// Compact one-line snapshot: observation count, quantile estimates and
    /// the exact maximum — `n=0` when empty.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.p50(), self.p95(), self.p99()) {
            (Some(p50), Some(p95), Some(p99)) => write!(
                f,
                "n={} p50<={p50:.0}ms p95<={p95:.0}ms p99<={p99:.0}ms max={:.0}ms",
                self.count, self.max_ms
            ),
            _ => write!(f, "n=0"),
        }
    }
}

impl Accumulator<f64> for LatencyHistogram {
    fn observe(&mut self, ms: &f64) {
        self.observe_ms(*ms);
    }

    fn merge(&mut self, other: &Self) {
        LatencyHistogram::merge(self, other);
    }
}

/// Mergeable streaming summary of judge cost: token counts plus a latency
/// histogram, folded from [`JudgeOutcome`]s as they stream past.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LatencyTokenSummary {
    /// Number of judgements observed.
    pub judgements: u64,
    /// Total prompt (prefill) tokens across all judgements.
    pub prompt_tokens: u64,
    /// Total response (decode) tokens across all judgements.
    pub response_tokens: u64,
    /// Judgements whose response omitted a parseable verdict.
    pub missing_verdicts: u64,
    /// Distribution of simulated per-judgement latencies.
    pub latency: LatencyHistogram,
}

impl Accumulator<JudgeOutcome> for LatencyTokenSummary {
    fn observe(&mut self, outcome: &JudgeOutcome) {
        self.judgements += 1;
        self.prompt_tokens += outcome.prompt_tokens as u64;
        self.response_tokens += outcome.response_tokens as u64;
        if outcome.verdict.is_none() {
            self.missing_verdicts += 1;
        }
        self.latency.observe_ms(outcome.latency_ms);
    }

    fn merge(&mut self, other: &Self) {
        self.judgements += other.judgements;
        self.prompt_tokens += other.prompt_tokens;
        self.response_tokens += other.response_tokens;
        self.missing_verdicts += other.missing_verdicts;
        self.latency.merge(&other.latency);
    }
}

impl LatencyTokenSummary {
    /// Mean tokens (prompt + response) per judgement; `None` when empty.
    pub fn mean_tokens_per_judgement(&self) -> Option<f64> {
        if self.judgements == 0 {
            None
        } else {
            Some((self.prompt_tokens + self.response_tokens) as f64 / self.judgements as f64)
        }
    }
}

impl fmt::Display for LatencyTokenSummary {
    /// Compact one-line snapshot of judge cost: judgement count, token
    /// totals, missing verdicts and the latency distribution.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} judgements, {} prompt + {} response tokens, {} missing verdicts, latency {}",
            self.judgements,
            self.prompt_tokens,
            self.response_tokens,
            self.missing_verdicts,
            self.latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vv_judge::Verdict;

    fn record(i: usize) -> EvaluationRecord {
        let issue = IssueKind::ALL[i % IssueKind::ALL.len()];
        let verdict = match i % 4 {
            0 => Some(Verdict::Valid),
            1 | 2 => Some(Verdict::Invalid),
            _ => None,
        };
        EvaluationRecord::new(format!("case_{i:04}"), issue, verdict)
    }

    fn records(n: usize) -> Vec<EvaluationRecord> {
        (0..n).map(record).collect()
    }

    #[test]
    fn sink_matches_the_batch_functions() {
        let all = records(97);
        let sink: MetricsSink = Accumulator::fold(&all);
        assert_eq!(sink.per_issue_rows(), crate::per_issue(&all));
        assert_eq!(sink.overall_stats(), crate::overall(&all));
        assert_eq!(sink.radar_series(), crate::radar_series(&all));
        assert_eq!(sink.total(), all.len());
    }

    #[test]
    fn split_folds_merge_to_the_whole_fold() {
        let all = records(60);
        let whole: MetricsSink = Accumulator::fold(&all);
        for split in [0, 1, 29, 59, 60] {
            let (left, right) = all.split_at(split);
            let mut merged: MetricsSink = Accumulator::fold(left);
            merged.merge(&Accumulator::fold(right));
            assert_eq!(merged, whole, "split at {split}");
        }
    }

    #[test]
    fn empty_issue_cells_report_no_accuracy() {
        let only_valid = vec![EvaluationRecord::new(
            "v",
            IssueKind::NoIssue,
            Some(Verdict::Valid),
        )];
        let acc: PerIssueAccumulator = Accumulator::fold(&only_valid);
        let rows = acc.rows();
        for row in &rows {
            if row.issue == IssueKind::NoIssue {
                assert_eq!(row.accuracy, Some(1.0));
            } else {
                assert_eq!(row.count, 0);
                assert_eq!(row.accuracy, None, "{:?}", row.issue);
            }
        }
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut histogram = LatencyHistogram::default();
        assert_eq!(histogram.quantile(0.5), None);
        for ms in [100.0, 200.0, 300.0, 5_000.0, 90_000.0] {
            histogram.observe_ms(ms);
        }
        assert_eq!(histogram.count(), 5);
        assert_eq!(histogram.max_ms(), 90_000.0);
        // 90s overflows the 16s bucket range: the top quantile reports the
        // exact max rather than a bucket edge.
        assert_eq!(histogram.quantile(1.0), Some(90_000.0));
        let p50 = histogram.p50().unwrap();
        assert!(p50 <= histogram.p95().unwrap());
        assert!(histogram.p95().unwrap() <= histogram.p99().unwrap());
        // 100 and 200 share the first bucket; its upper edge is 250.
        assert_eq!(
            histogram.quantile(0.2),
            Some(LatencyHistogram::BUCKET_WIDTH_MS)
        );
    }

    #[test]
    fn histogram_merge_is_exact() {
        let latencies: Vec<f64> = (0..500).map(|i| (i as f64) * 37.5).collect();
        let whole: LatencyHistogram = Accumulator::fold(&latencies);
        for n in [1usize, 2, 4] {
            let mut merged = LatencyHistogram::default();
            for k in 0..n {
                let shard: Vec<f64> = latencies.iter().copied().skip(k).step_by(n).collect();
                merged.merge(&Accumulator::fold(&shard));
            }
            assert_eq!(merged, whole, "n = {n}");
            assert_eq!(merged.p99(), whole.p99());
        }
    }

    #[test]
    fn latency_token_summary_accumulates_and_merges() {
        let outcomes: Vec<JudgeOutcome> = (0..12)
            .map(|i| JudgeOutcome {
                prompt: String::new(),
                response: String::new(),
                verdict: if i % 5 == 0 {
                    None
                } else {
                    Some(Verdict::Valid)
                },
                prompt_tokens: 100 + i,
                response_tokens: 40 + i,
                latency_ms: 120.0 + 28.0 * i as f64,
            })
            .collect();
        let whole: LatencyTokenSummary = Accumulator::fold(&outcomes);
        assert_eq!(whole.judgements, 12);
        assert_eq!(whole.missing_verdicts, 3);
        assert!(whole.mean_tokens_per_judgement().unwrap() > 140.0);
        let (a, b) = outcomes.split_at(7);
        let mut merged: LatencyTokenSummary = Accumulator::fold(a);
        merged.merge(&Accumulator::fold(b));
        assert_eq!(merged, whole);
    }
}
