//! Plain-text and CSV table renderers.
//!
//! These mirror the layout of the paper's tables so that the `repro`
//! harness can print directly comparable output.

use crate::radar::RadarPoint;
use crate::{OverallStats, PerIssueRow};
use std::fmt::Write as _;
use vv_dclang::DirectiveModel;

/// Render a per-issue accuracy table with one evaluation column
/// (Tables I / II layout). `columns` holds `(column title, rows)` pairs so
/// the same renderer also covers the two-column pipeline and agent tables
/// (Tables IV / V / VII / VIII).
pub fn render_per_issue_table(
    title: &str,
    model: DirectiveModel,
    columns: &[(&str, &[PerIssueRow])],
) -> String {
    assert!(
        !columns.is_empty(),
        "at least one column of rows is required"
    );
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let mut header = format!("{:<58} {:>7}", format!("{model} Issue Type"), "Count");
    for (name, _) in columns {
        header.push_str(&format!(" {:>12}", format!("{name} corr.")));
        header.push_str(&format!(" {:>10}", format!("{name} acc.")));
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{}", "-".repeat(header.len()));
    let reference = columns[0].1;
    for (index, row) in reference.iter().enumerate() {
        let mut line = format!("{:<58} {:>7}", row.issue.table_label(model), row.count);
        for (_, rows) in columns {
            let cell = &rows[index];
            line.push_str(&format!(" {:>12}", cell.correct));
            match cell.accuracy {
                Some(accuracy) => line.push_str(&format!(" {:>9.0}%", accuracy * 100.0)),
                // An empty matrix cell, not a 0%-accurate one.
                None => line.push_str(&format!(" {:>10}", "n/a")),
            }
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Render an overall accuracy/bias table (Tables III / VI / IX layout):
/// one column per programming model or evaluation setup.
pub fn render_overall_table(title: &str, columns: &[(&str, OverallStats)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let mut header = format!("{:<28}", "Datapoint");
    for (name, _) in columns {
        header.push_str(&format!(" {:>18}", name));
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{}", "-".repeat(header.len()));
    type RenderFn = Box<dyn Fn(&OverallStats) -> String>;
    let rows: [(&str, RenderFn); 4] = [
        (
            "Total Count",
            Box::new(|s: &OverallStats| s.total.to_string()),
        ),
        (
            "Total Mistakes",
            Box::new(|s: &OverallStats| s.mistakes.to_string()),
        ),
        (
            "Overall Accuracy",
            Box::new(|s: &OverallStats| format!("{:.2}%", s.accuracy * 100.0)),
        ),
        (
            "Bias",
            Box::new(|s: &OverallStats| format!("{:+.3}", s.bias)),
        ),
    ];
    for (label, render) in rows {
        let mut line = format!("{label:<28}");
        for (_, stats) in columns {
            line.push_str(&format!(" {:>18}", render(stats)));
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Render a radar series table (the data behind Figures 3–6): one line per
/// axis, one column per evaluated configuration.
pub fn render_radar_table(title: &str, columns: &[(&str, &[RadarPoint])]) -> String {
    assert!(!columns.is_empty());
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let mut header = format!("{:<28}", "Category");
    for (name, _) in columns {
        header.push_str(&format!(" {:>24}", name));
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{}", "-".repeat(header.len()));
    let reference = columns[0].1;
    for (index, point) in reference.iter().enumerate() {
        let mut line = format!("{:<28}", point.category.label());
        for (_, points) in columns {
            match points[index].accuracy {
                Some(accuracy) => line.push_str(&format!(" {:>23.0}%", accuracy * 100.0)),
                // An empty axis, not a 0%-accurate one.
                None => line.push_str(&format!(" {:>24}", "n/a")),
            }
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Render per-issue rows as CSV (one line per issue, plus a header).
///
/// Issue groups with no records emit an empty `accuracy` field: a blank
/// cell, distinguishable from an explicit `0.0000`.
pub fn render_csv(model: DirectiveModel, rows: &[PerIssueRow]) -> String {
    let mut out = String::from("issue_id,issue,count,correct,incorrect,accuracy\n");
    for row in rows {
        let accuracy = row.accuracy.map(|a| format!("{a:.4}")).unwrap_or_default();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            row.issue.id(),
            row.issue.table_label(model).replace(',', ";"),
            row.count,
            row.correct,
            row.incorrect,
            accuracy
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radar::radar_series;
    use crate::{overall, per_issue, EvaluationRecord};
    use vv_judge::Verdict;
    use vv_probing::IssueKind;

    fn sample_records() -> Vec<EvaluationRecord> {
        vec![
            EvaluationRecord::new("a", IssueKind::NoIssue, Some(Verdict::Valid)),
            EvaluationRecord::new("b", IssueKind::NoIssue, Some(Verdict::Invalid)),
            EvaluationRecord::new(
                "c",
                IssueKind::RemovedOpeningBracket,
                Some(Verdict::Invalid),
            ),
            EvaluationRecord::new(
                "d",
                IssueKind::ReplacedWithNonDirectiveCode,
                Some(Verdict::Valid),
            ),
        ]
    }

    #[test]
    fn per_issue_table_renders_all_rows_and_percentages() {
        let rows = per_issue(&sample_records());
        let table = render_per_issue_table(
            "TABLE I: LLMJ Negative Probing Results for OpenACC",
            DirectiveModel::OpenAcc,
            &[("LLMJ", &rows)],
        );
        assert!(table.contains("TABLE I"));
        assert!(table.contains("Removed an opening bracket"));
        assert!(table.contains("No issue"));
        assert!(table.contains("%"));
    }

    #[test]
    fn two_column_table_renders_both_columns() {
        let rows = per_issue(&sample_records());
        let table = render_per_issue_table(
            "TABLE IV",
            DirectiveModel::OpenAcc,
            &[("Pipeline 1", &rows), ("Pipeline 2", &rows)],
        );
        assert!(table.contains("Pipeline 1 acc."));
        assert!(table.contains("Pipeline 2 acc."));
    }

    #[test]
    fn overall_table_contains_all_datapoints() {
        let stats = overall(&sample_records());
        let table = render_overall_table(
            "TABLE III: LLMJ Overall Negative Probing Results",
            &[("OpenACC", stats), ("OpenMP", stats)],
        );
        assert!(table.contains("Total Count"));
        assert!(table.contains("Total Mistakes"));
        assert!(table.contains("Overall Accuracy"));
        assert!(table.contains("Bias"));
        assert!(table.contains("OpenACC"));
    }

    #[test]
    fn radar_table_lists_every_axis() {
        let series = radar_series(&sample_records());
        let table = render_radar_table("Figure 3 data", &[("Pipeline 1", &series)]);
        assert!(table.contains("Improper syntax"));
        assert!(table.contains("Valid test recognition"));
    }

    #[test]
    fn csv_has_one_line_per_issue_plus_header() {
        let rows = per_issue(&sample_records());
        let csv = render_csv(DirectiveModel::OpenAcc, &rows);
        assert_eq!(csv.lines().count(), 1 + rows.len());
        assert!(csv.starts_with("issue_id,"));
    }

    #[test]
    fn empty_issue_cells_render_as_na_not_zero_percent() {
        // The sample records cover issues 1, 3 and 5 only; 0, 2 and 4 are
        // empty cells and must not masquerade as 0%-accurate rows.
        let rows = per_issue(&sample_records());
        let table = render_per_issue_table("TABLE", DirectiveModel::OpenAcc, &[("LLMJ", &rows)]);
        // Issues 0, 2 and 4 are empty: three "n/a" cells. Issue 3 (one
        // incorrect record) is a genuine 0%.
        assert_eq!(table.matches("n/a").count(), 3, "{table}");
        assert!(table.contains("0%"), "{table}");
        let csv = render_csv(DirectiveModel::OpenAcc, &rows);
        let empty_row = csv
            .lines()
            .find(|line| line.starts_with("4,"))
            .expect("issue 4 row");
        assert!(empty_row.ends_with(','), "blank accuracy cell: {empty_row}");
        let full_row = csv
            .lines()
            .find(|line| line.starts_with("5,"))
            .expect("issue 5 row");
        assert!(full_row.ends_with("0.5000"), "{full_row}");
    }
}
