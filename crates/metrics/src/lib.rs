//! `vv-metrics` — the metrics defined in §IV of the paper.
//!
//! * **Per-issue evaluation accuracy** — accuracy grouped by the issue ID
//!   injected during negative probing;
//! * **Overall evaluation accuracy** — accuracy over every probed file;
//! * **Bias** — for the *mistaken* evaluations only, `+1` for each invalid
//!   file that was passed and `−1` for each valid file that was failed,
//!   averaged over all mistakes. A positive bias means the judge's mistakes
//!   are permissive; a negative bias means they are restrictive.
//!
//! The module also provides the radar-plot category grouping used by
//! Figures 3–6 and plain-text / CSV renderers for every table.
//!
//! # Batch vs streaming
//!
//! The batch functions here ([`per_issue`], [`overall`], [`radar_series`])
//! take a materialized `&[EvaluationRecord]` slice and are thin wrappers
//! over the streaming [`accumulate`] module: a family of mergeable,
//! constant-memory [`accumulate::Accumulator`]s whose sharded folds merge
//! byte-identically to the unsharded fold. Prefer the accumulators when
//! records arrive as a stream (e.g. from
//! `ValidationService::submit_source`) — the batch functions exist for
//! suites that are already in memory.

pub mod accumulate;
pub mod radar;
pub mod tables;
pub mod wire;

pub use accumulate::{
    Accumulator, LatencyHistogram, LatencyTokenSummary, MetricsSink, OverallAccumulator,
    PerIssueAccumulator, RadarAccumulator,
};
pub use radar::{radar_series, RadarCategory, RadarPoint};
pub use tables::{render_csv, render_overall_table, render_per_issue_table, render_radar_table};

use vv_judge::Verdict;
use vv_probing::IssueKind;

/// One judged (or pipeline-evaluated) probed file.
#[derive(Clone, Debug, PartialEq)]
pub struct EvaluationRecord {
    /// Identifier of the underlying test case.
    pub case_id: String,
    /// The issue injected during negative probing (5 = no issue).
    pub issue: IssueKind,
    /// The verdict produced by the judge or pipeline (`None` when the judge
    /// failed to produce a parseable judgement).
    pub verdict: Option<Verdict>,
}

impl EvaluationRecord {
    /// Create a record.
    pub fn new(case_id: impl Into<String>, issue: IssueKind, verdict: Option<Verdict>) -> Self {
        Self {
            case_id: case_id.into(),
            issue,
            verdict,
        }
    }

    /// The effective verdict: a missing judgement counts as `Invalid`
    /// (the evaluation cannot accept a file it could not judge).
    pub fn effective_verdict(&self) -> Verdict {
        self.verdict.unwrap_or(Verdict::Invalid)
    }

    /// Ground truth from the paper's system-of-verification.
    pub fn ground_truth_valid(&self) -> bool {
        self.issue.is_valid()
    }

    /// Whether the evaluation was correct.
    pub fn is_correct(&self) -> bool {
        self.effective_verdict().is_valid() == self.ground_truth_valid()
    }
}

/// One row of a per-issue accuracy table (Tables I, II, IV, V, VII, VIII).
#[derive(Clone, Debug, PartialEq)]
pub struct PerIssueRow {
    /// The issue class.
    pub issue: IssueKind,
    /// Number of files with this issue.
    pub count: usize,
    /// Number of correct evaluations.
    pub correct: usize,
    /// Number of incorrect evaluations.
    pub incorrect: usize,
    /// `correct / count`; `None` when the group has no records, so an empty
    /// matrix cell is distinguishable from a 0%-accurate one.
    pub accuracy: Option<f64>,
}

/// Aggregate statistics (Tables III, VI, IX).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverallStats {
    /// Total number of evaluated files.
    pub total: usize,
    /// Total number of mistaken evaluations.
    pub mistakes: usize,
    /// Overall accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Bias in `[-1, 1]`; positive = permissive mistakes dominate.
    pub bias: f64,
}

/// Compute the per-issue accuracy table, in paper issue-ID order.
///
/// Thin wrapper over a one-shot [`PerIssueAccumulator`] fold; streaming
/// consumers should fold the accumulator directly.
pub fn per_issue(records: &[EvaluationRecord]) -> Vec<PerIssueRow> {
    PerIssueAccumulator::fold(records).rows()
}

/// Compute the overall accuracy and bias.
///
/// Thin wrapper over a one-shot [`OverallAccumulator`] fold; streaming
/// consumers should fold the accumulator directly.
pub fn overall(records: &[EvaluationRecord]) -> OverallStats {
    OverallAccumulator::fold(records).stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(issue: IssueKind, verdict: Verdict) -> EvaluationRecord {
        EvaluationRecord::new("t", issue, Some(verdict))
    }

    #[test]
    fn correctness_follows_ground_truth() {
        assert!(record(IssueKind::NoIssue, Verdict::Valid).is_correct());
        assert!(!record(IssueKind::NoIssue, Verdict::Invalid).is_correct());
        assert!(record(IssueKind::RemovedOpeningBracket, Verdict::Invalid).is_correct());
        assert!(!record(IssueKind::RemovedOpeningBracket, Verdict::Valid).is_correct());
    }

    #[test]
    fn missing_verdict_counts_as_invalid() {
        let r = EvaluationRecord::new("t", IssueKind::NoIssue, None);
        assert_eq!(r.effective_verdict(), Verdict::Invalid);
        assert!(!r.is_correct());
    }

    #[test]
    fn per_issue_groups_and_counts() {
        let records = vec![
            record(IssueKind::NoIssue, Verdict::Valid),
            record(IssueKind::NoIssue, Verdict::Invalid),
            record(IssueKind::RemovedOpeningBracket, Verdict::Invalid),
        ];
        let rows = per_issue(&records);
        assert_eq!(rows.len(), 6);
        let no_issue = rows.iter().find(|r| r.issue == IssueKind::NoIssue).unwrap();
        assert_eq!(no_issue.count, 2);
        assert_eq!(no_issue.correct, 1);
        assert_eq!(no_issue.incorrect, 1);
        assert!((no_issue.accuracy.unwrap() - 0.5).abs() < 1e-12);
        let bracket = rows
            .iter()
            .find(|r| r.issue == IssueKind::RemovedOpeningBracket)
            .unwrap();
        assert_eq!(bracket.count, 1);
        assert!((bracket.accuracy.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_issue_groups_have_no_accuracy() {
        // One record: every other issue row is an empty cell, which must be
        // distinguishable from a 0%-accurate one.
        let rows = per_issue(&[record(IssueKind::NoIssue, Verdict::Invalid)]);
        for row in &rows {
            if row.issue == IssueKind::NoIssue {
                assert_eq!(row.accuracy, Some(0.0), "0% accurate, not empty");
            } else {
                assert_eq!(row.accuracy, None, "{:?} is empty", row.issue);
            }
        }
    }

    #[test]
    fn overall_accuracy_and_bias_match_paper_definition() {
        // 2 permissive mistakes, 1 restrictive mistake, 1 correct.
        let records = vec![
            record(IssueKind::RemovedOpeningBracket, Verdict::Valid),
            record(IssueKind::UndeclaredVariableUse, Verdict::Valid),
            record(IssueKind::NoIssue, Verdict::Invalid),
            record(IssueKind::NoIssue, Verdict::Valid),
        ];
        let stats = overall(&records);
        assert_eq!(stats.total, 4);
        assert_eq!(stats.mistakes, 3);
        assert!((stats.accuracy - 0.25).abs() < 1e-12);
        assert!((stats.bias - (1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn bias_is_zero_without_mistakes_and_bounded_otherwise() {
        let perfect = vec![record(IssueKind::NoIssue, Verdict::Valid)];
        assert_eq!(overall(&perfect).bias, 0.0);
        let all_permissive = vec![
            record(IssueKind::RemovedOpeningBracket, Verdict::Valid),
            record(IssueKind::UndeclaredVariableUse, Verdict::Valid),
        ];
        assert_eq!(overall(&all_permissive).bias, 1.0);
        let all_restrictive = vec![record(IssueKind::NoIssue, Verdict::Invalid)];
        assert_eq!(overall(&all_restrictive).bias, -1.0);
    }

    #[test]
    fn empty_input_is_handled() {
        let stats = overall(&[]);
        assert_eq!(stats.total, 0);
        assert_eq!(stats.accuracy, 0.0);
        assert_eq!(stats.bias, 0.0);
        assert!(per_issue(&[])
            .iter()
            .all(|row| row.count == 0 && row.accuracy.is_none()));
    }
}
