//! Compact wire codecs for the streaming accumulator summaries.
//!
//! Built on [`vv_store::wire`] (little-endian integers, `u32`-length
//! strings, bounds-checked [`Reader`]), so the encodings compose with the
//! store's journal/segment framing and with the `vv-server` protocol.
//!
//! # Encodings
//!
//! [`LatencyHistogram`] is encoded **sparsely** — most of its 65 buckets
//! are empty in practice:
//!
//! ```text
//! populated  u8                      number of non-empty buckets
//! buckets    populated × (u8, u64)   (slot, count), slots strictly increasing
//! max_ms     f64                     exact observed maximum
//! ```
//!
//! Slots must be strictly increasing and in range, so every histogram has
//! exactly one canonical encoding and a decoded histogram re-encodes to
//! the same bytes.
//!
//! [`LatencyTokenSummary`] is its four counters (`u64` each) followed by
//! the histogram.

use crate::accumulate::{LatencyHistogram, LatencyTokenSummary};
use vv_store::wire::{Reader, WireError, Writer};

/// Append a histogram's canonical sparse encoding to `w`.
pub fn encode_histogram(histogram: &LatencyHistogram, w: &mut Writer) {
    let buckets = histogram.bucket_counts();
    let populated = buckets.iter().filter(|&&c| c != 0).count();
    debug_assert!(populated <= buckets.len());
    w.put_u8(populated as u8);
    for (slot, &count) in buckets.iter().enumerate() {
        if count != 0 {
            w.put_u8(slot as u8);
            w.put_u64(count);
        }
    }
    w.put_f64(histogram.max_ms());
}

/// Decode a histogram encoded by [`encode_histogram`]. Rejects out-of-range
/// or non-increasing slots, so the encoding stays canonical.
pub fn decode_histogram(r: &mut Reader<'_>) -> Result<LatencyHistogram, WireError> {
    const SLOTS: usize = LatencyHistogram::BUCKET_COUNT + 1;
    let populated = r.get_u8("histogram bucket count")? as usize;
    if populated > SLOTS {
        return Err(WireError {
            context: "histogram bucket count",
        });
    }
    let mut buckets = [0u64; SLOTS];
    let mut previous: Option<usize> = None;
    for _ in 0..populated {
        let slot = r.get_u8("histogram bucket slot")? as usize;
        if slot >= SLOTS || previous.is_some_and(|p| slot <= p) {
            return Err(WireError {
                context: "histogram bucket slot",
            });
        }
        let count = r.get_u64("histogram bucket value")?;
        if count == 0 {
            return Err(WireError {
                context: "histogram bucket value",
            });
        }
        buckets[slot] = count;
        previous = Some(slot);
    }
    let max_ms = r.get_f64("histogram max")?;
    Ok(LatencyHistogram::from_raw(buckets, max_ms))
}

/// Append a judge-cost summary's encoding to `w`.
pub fn encode_latency_token_summary(summary: &LatencyTokenSummary, w: &mut Writer) {
    w.put_u64(summary.judgements);
    w.put_u64(summary.prompt_tokens);
    w.put_u64(summary.response_tokens);
    w.put_u64(summary.missing_verdicts);
    encode_histogram(&summary.latency, w);
}

/// Decode a summary encoded by [`encode_latency_token_summary`].
pub fn decode_latency_token_summary(r: &mut Reader<'_>) -> Result<LatencyTokenSummary, WireError> {
    Ok(LatencyTokenSummary {
        judgements: r.get_u64("summary judgements")?,
        prompt_tokens: r.get_u64("summary prompt tokens")?,
        response_tokens: r.get_u64("summary response tokens")?,
        missing_verdicts: r.get_u64("summary missing verdicts")?,
        latency: decode_histogram(r)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulate::Accumulator;
    use vv_judge::{JudgeOutcome, Verdict};

    fn busy_histogram() -> LatencyHistogram {
        let mut histogram = LatencyHistogram::default();
        for i in 0..300 {
            histogram.observe_ms(40.0 * i as f64);
        }
        histogram.observe_ms(1_000_000.0); // overflow bucket
        histogram
    }

    #[test]
    fn histogram_round_trips_bit_exactly() {
        for histogram in [LatencyHistogram::default(), busy_histogram()] {
            let mut w = Writer::new();
            encode_histogram(&histogram, &mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let decoded = decode_histogram(&mut r).unwrap();
            assert!(r.is_exhausted());
            assert_eq!(decoded, histogram);
            assert_eq!(decoded.p99(), histogram.p99());
            // Canonical: re-encoding reproduces the same bytes.
            let mut w2 = Writer::new();
            encode_histogram(&decoded, &mut w2);
            assert_eq!(w2.into_bytes(), bytes);
        }
    }

    #[test]
    fn histogram_decode_rejects_malformed_slots() {
        // Out-of-range slot.
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_u8(80);
        w.put_u64(1);
        w.put_f64(1.0);
        let bytes = w.into_bytes();
        assert!(decode_histogram(&mut Reader::new(&bytes)).is_err());

        // Non-increasing slots.
        let mut w = Writer::new();
        w.put_u8(2);
        w.put_u8(3);
        w.put_u64(1);
        w.put_u8(3);
        w.put_u64(1);
        w.put_f64(1.0);
        let bytes = w.into_bytes();
        assert!(decode_histogram(&mut Reader::new(&bytes)).is_err());

        // Truncation at every offset fails cleanly.
        let mut w = Writer::new();
        encode_histogram(&busy_histogram(), &mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert!(
                decode_histogram(&mut Reader::new(&bytes[..cut])).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn summary_round_trips() {
        let outcomes: Vec<JudgeOutcome> = (0..9)
            .map(|i| JudgeOutcome {
                prompt: String::new(),
                response: String::new(),
                verdict: (i % 4 != 0).then_some(Verdict::Valid),
                prompt_tokens: 120 + i,
                response_tokens: 30 + i,
                latency_ms: 500.0 + 97.0 * i as f64,
            })
            .collect();
        let summary: LatencyTokenSummary = Accumulator::fold(&outcomes);
        let mut w = Writer::new();
        encode_latency_token_summary(&summary, &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = decode_latency_token_summary(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(decoded, summary);
        // The Display snapshot mentions the headline counters.
        let shown = format!("{decoded}");
        assert!(shown.contains("9 judgements"), "{shown}");
        assert!(shown.contains("p95"), "{shown}");
    }
}
