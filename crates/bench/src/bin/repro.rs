//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p vv-bench --bin repro            # everything, paper-scale suites
//! cargo run --release -p vv-bench --bin repro -- quick   # everything, 10x smaller suites
//! cargo run --release -p vv-bench --bin repro -- table4 figure5
//! ```
//!
//! The output mirrors the layout of Tables I–IX and the data series behind
//! Figures 3–6; EXPERIMENTS.md records a paper-vs-measured comparison.
//!
//! Every experiment runs through the streaming drivers: records fold into
//! mergeable accumulators as they complete, so the suites are never
//! materialized and memory stays constant whatever the scale factor.

use llm4vv::experiment::{
    stream_part_one, stream_part_two, PartOneConfig, PartOneMetrics, PartTwoConfig, PartTwoMetrics,
};
use llm4vv::reproduce;

struct Experiments {
    p1_acc: PartOneMetrics,
    p1_omp: PartOneMetrics,
    p2_acc: PartTwoMetrics,
    p2_omp: PartTwoMetrics,
}

fn scaled(config_size: usize, scale: f64) -> usize {
    ((config_size as f64 * scale).round() as usize).max(12)
}

fn run_experiments(scale: f64) -> Experiments {
    let mut p1_acc_cfg = PartOneConfig::paper_openacc();
    p1_acc_cfg.suite_size = scaled(p1_acc_cfg.suite_size, scale);
    let mut p1_omp_cfg = PartOneConfig::paper_openmp();
    p1_omp_cfg.suite_size = scaled(p1_omp_cfg.suite_size, scale);
    let mut p2_acc_cfg = PartTwoConfig::paper_openacc();
    p2_acc_cfg.suite_size = scaled(p2_acc_cfg.suite_size, scale);
    let mut p2_omp_cfg = PartTwoConfig::paper_openmp();
    p2_omp_cfg.suite_size = scaled(p2_omp_cfg.suite_size, scale);

    eprintln!(
        "running experiments (Part One: {} ACC / {} OMP files; Part Two: {} ACC / {} OMP files)...",
        p1_acc_cfg.suite_size, p1_omp_cfg.suite_size, p2_acc_cfg.suite_size, p2_omp_cfg.suite_size
    );
    Experiments {
        p1_acc: stream_part_one(&p1_acc_cfg),
        p1_omp: stream_part_one(&p1_omp_cfg),
        p2_acc: stream_part_two(&p2_acc_cfg),
        p2_omp: stream_part_two(&p2_omp_cfg),
    }
}

fn artifact(name: &str, e: &Experiments) -> Option<String> {
    Some(match name {
        "table1" => reproduce::table_1(&e.p1_acc),
        "table2" => reproduce::table_2(&e.p1_omp),
        "table3" => reproduce::table_3(&e.p1_acc, &e.p1_omp),
        "table4" => reproduce::table_4(&e.p2_acc),
        "table5" => reproduce::table_5(&e.p2_omp),
        "table6" => reproduce::table_6(&e.p2_acc, &e.p2_omp),
        "table7" => reproduce::table_7(&e.p2_acc),
        "table8" => reproduce::table_8(&e.p2_omp),
        "table9" => reproduce::table_9(&e.p2_acc, &e.p2_omp),
        "figure3" => reproduce::figure_3(&e.p2_acc),
        "figure4" => reproduce::figure_4(&e.p2_omp),
        "figure5" => reproduce::figure_5(&e.p1_acc, &e.p2_acc),
        "figure6" => reproduce::figure_6(&e.p1_omp, &e.p2_omp),
        _ => return None,
    })
}

const ALL_ARTIFACTS: &[&str] = &[
    "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8", "table9",
    "figure3", "figure4", "figure5", "figure6",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0;
    let mut requested: Vec<String> = Vec::new();
    for arg in &args {
        match arg.as_str() {
            "quick" => scale = 0.1,
            "--help" | "-h" => {
                println!(
                    "usage: repro [quick] [table1..table9 figure3..figure6]\n\
                     With no artifact names, every table and figure is printed."
                );
                return;
            }
            other => requested.push(other.to_string()),
        }
    }
    if requested.is_empty() {
        requested = ALL_ARTIFACTS.iter().map(|s| s.to_string()).collect();
    }
    for name in &requested {
        if !ALL_ARTIFACTS.contains(&name.as_str()) {
            eprintln!(
                "unknown artifact '{name}'; known: {}",
                ALL_ARTIFACTS.join(", ")
            );
            std::process::exit(2);
        }
    }

    let experiments = run_experiments(scale);
    // Sanity line also used by the OpenACC-vs-OpenMP discussion in the paper.
    eprintln!(
        "part one overall accuracy: ACC {:.1}%  OMP {:.1}%",
        experiments.p1_acc.overall().accuracy * 100.0,
        experiments.p1_omp.overall().accuracy * 100.0
    );

    for name in requested {
        let text = artifact(&name, &experiments).expect("validated above");
        println!("{text}");
    }
}
