//! Shared workload builders for the benchmark harness and the `repro`
//! binary.
//!
//! Every benchmark and every reproduced table/figure draws its workload from
//! these helpers so that the `cargo bench` targets, the `repro` binary and
//! the integration tests all agree on what "the Table IV workload" means.

use vv_corpus::CaseSource;
use vv_dclang::DirectiveModel;
use vv_pipeline::WorkItem;
use vv_probing::{CorpusSpec, IssueKind, ProbeConfig};

/// A probed workload plus the ground-truth issue of each file.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The programming model.
    pub model: DirectiveModel,
    /// Pipeline work items (id, source, lang, model).
    pub items: Vec<WorkItem>,
    /// The injected issue for each item, index-aligned with `items`.
    pub issues: Vec<IssueKind>,
}

impl Workload {
    /// Number of files in the workload.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The corpus spec behind [`probed_workload`]: a probed stream of `size`
/// files for `model`. Use `probed_spec(...).source()` to drive the
/// streaming `submit_source` path without materializing anything.
pub fn probed_spec(model: DirectiveModel, size: usize, seed: u64) -> CorpusSpec {
    CorpusSpec::new(model)
        .seed(seed)
        .probe(ProbeConfig::with_seed(seed ^ 0xBEEF))
        .size(size)
}

/// Build a probed workload of `size` files for `model` (materialized).
pub fn probed_workload(model: DirectiveModel, size: usize, seed: u64) -> Workload {
    let mut items = Vec::with_capacity(size);
    let mut issues = Vec::with_capacity(size);
    for case in probed_spec(model, size, seed).source().into_cases() {
        issues.push(IssueKind::of_case(&case));
        items.push(WorkItem::from(case));
    }
    Workload {
        model,
        items,
        issues,
    }
}

/// The default benchmark sizes (kept small so `cargo bench` finishes in
/// minutes; the `repro` binary defaults to the paper's full sizes).
pub mod sizes {
    /// Files per model in the throughput/ablation benchmarks.
    pub const BENCH_SUITE: usize = 64;
    /// Files per model in the per-stage microbenchmarks.
    pub const MICRO: usize = 8;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builder_aligns_items_and_issues() {
        let w = probed_workload(DirectiveModel::OpenAcc, 20, 3);
        assert_eq!(w.len(), 20);
        assert_eq!(w.items.len(), w.issues.len());
        assert!(!w.is_empty());
    }
}
