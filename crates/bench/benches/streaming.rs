//! Streaming-path benchmarks: the corpus `CaseSource` pipeline feeding the
//! validation service through `submit_source`, against the same workload
//! pre-materialized into a `Vec<WorkItem>`.
//!
//! * `generate_only` — cost of the lazy corpus pipeline itself (templates +
//!   probing), no validation;
//! * `submit_source_vs_materialized` — end-to-end streaming validation vs
//!   materialize-then-submit, same seeds and sizes;
//! * `sharded_generation` — producing one shard of a corpus must cost ~1/n
//!   of the full stream, not a full generation pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use vv_bench::{probed_spec, probed_workload, sizes};
use vv_corpus::CaseSource;
use vv_dclang::DirectiveModel;
use vv_pipeline::ValidationService;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
}

fn bench_generate_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_generate_only");
    configure(&mut group);
    group.bench_function("probed_source", |b| {
        b.iter(|| {
            let count = probed_spec(DirectiveModel::OpenAcc, sizes::BENCH_SUITE, 808)
                .source()
                .into_cases()
                .count();
            criterion::black_box(count)
        });
    });
    group.finish();
}

fn bench_submit_source(c: &mut Criterion) {
    let mut group = c.benchmark_group("submit_source_vs_materialized");
    configure(&mut group);
    let service = ValidationService::builder().build();
    group.bench_function("submit_source_streaming", |b| {
        b.iter(|| {
            let source = probed_spec(DirectiveModel::OpenAcc, sizes::BENCH_SUITE, 909).source();
            criterion::black_box(service.run_source(source).stats.judged)
        });
    });
    group.bench_function("materialize_then_submit", |b| {
        b.iter(|| {
            let workload = probed_workload(DirectiveModel::OpenAcc, sizes::BENCH_SUITE, 909);
            criterion::black_box(service.run(workload.items).stats.judged)
        });
    });
    group.finish();
}

fn bench_sharded_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_generation");
    configure(&mut group);
    for n in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let count = probed_spec(DirectiveModel::OpenMp, sizes::BENCH_SUITE * 4, 101)
                    .shard(0, n)
                    .source()
                    .into_cases()
                    .count();
                criterion::black_box(count)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_generate_only,
    bench_submit_source,
    bench_sharded_generation
);
criterion_main!(benches);
