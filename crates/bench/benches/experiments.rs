//! Benchmarks of the paper's experiments themselves (E1–E13 in DESIGN.md).
//!
//! * `part_one_*` — the Table I–III workloads: negative probing of the plain
//!   (non-agent) judge;
//! * `part_two_*` — the Table IV–IX / Figure 3–6 workloads: record-all
//!   validation pipeline with both agent judges.
//!
//! The benchmark sizes are scaled down from the paper's suite sizes so that
//! `cargo bench` completes quickly; the `repro` binary runs the full sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use llm4vv::experiment::{run_part_one, run_part_two, PartOneConfig, PartTwoConfig};
use vv_dclang::DirectiveModel;

fn bench_part_one(c: &mut Criterion) {
    let mut group = c.benchmark_group("part_one_negative_probing");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for (name, model) in [
        ("openacc_table1", DirectiveModel::OpenAcc),
        ("openmp_table2", DirectiveModel::OpenMp),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let config = PartOneConfig::quick(model, 48);
            b.iter(|| {
                let results = run_part_one(&config);
                criterion::black_box(results.overall())
            });
        });
    }
    group.finish();
}

fn bench_part_two(c: &mut Criterion) {
    let mut group = c.benchmark_group("part_two_pipeline_and_agents");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for (name, model) in [
        ("openacc_tables4_7_figs3_5", DirectiveModel::OpenAcc),
        ("openmp_tables5_8_figs4_6", DirectiveModel::OpenMp),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let config = PartTwoConfig::quick(model, 48);
            b.iter(|| {
                let results = run_part_two(&config);
                criterion::black_box((
                    results.overall(llm4vv::Evaluator::Pipeline1),
                    results.overall(llm4vv::Evaluator::Llmj1),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_part_one, bench_part_two);
criterion_main!(benches);
