//! Per-stage microbenchmarks: the cost of compiling, executing and judging
//! a single candidate test, plus prompt construction and tokenization.
//! These quantify why the pipeline orders its stages cheap-to-expensive.
//!
//! PR 5 adds compile-stage and judge-stage throughput sweeps comparing the
//! naive per-file paths against the session-interned + content-addressed
//! compile path and the precomputed-signal judge path, writes the combined
//! result to `BENCH_PR5.json` at the repo root, and asserts a 2x
//! compile-stage regression tripwire (mirroring the PR-4 interp tripwire).

use criterion::{criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use vv_bench::{probed_spec, probed_workload, sizes};
use vv_corpus::CaseSource;
use vv_dclang::DirectiveModel;
use vv_judge::{
    build_prompt, estimate_tokens, CodeSignals, JudgeProfile, JudgeSession, PromptStyle,
    SurrogateLlmJudge, ToolContext, ToolRecord,
};
use vv_pipeline::{CompileBackend, CompileOutput, SimCompileBackend, ValidationService, WorkItem};
use vv_simcompiler::{compiler_for, CompileCache, CompileSession, Lang};
use vv_simexec::Executor;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
}

fn bench_stages(c: &mut Criterion) {
    let workload = probed_workload(DirectiveModel::OpenAcc, sizes::MICRO, 707);
    // Borrow the representative items — the workload outlives every
    // closure below, so there is nothing to clone.
    let valid: &WorkItem = workload
        .items
        .iter()
        .zip(&workload.issues)
        .find(|(_, issue)| issue.is_valid())
        .map(|(item, _)| item)
        .expect("workload contains a valid file");
    let broken: &WorkItem = workload
        .items
        .iter()
        .zip(&workload.issues)
        .find(|(_, issue)| !issue.is_valid())
        .map(|(item, _)| item)
        .expect("workload contains a mutated file");

    let mut group = c.benchmark_group("stage_costs");
    configure(&mut group);

    group.bench_function("compile_valid_file", |b| {
        let compiler = compiler_for(DirectiveModel::OpenAcc);
        b.iter(|| criterion::black_box(compiler.compile(&valid.source, Lang::C).return_code));
    });
    group.bench_function("compile_mutated_file", |b| {
        let compiler = compiler_for(DirectiveModel::OpenAcc);
        b.iter(|| criterion::black_box(compiler.compile(&broken.source, Lang::C).return_code));
    });
    group.bench_function("compile_session_valid_file", |b| {
        let mut session = CompileSession::for_model(DirectiveModel::OpenAcc);
        b.iter(|| criterion::black_box(session.compile(&valid.source, Lang::C).return_code));
    });
    group.bench_function("compile_cache_hit", |b| {
        let mut session =
            CompileSession::for_model(DirectiveModel::OpenAcc).with_cache(CompileCache::shared());
        let _ = session.compile(&valid.source, Lang::C); // first touch
        let _ = session.compile(&valid.source, Lang::C); // admitted
        b.iter(|| criterion::black_box(session.compile(&valid.source, Lang::C).return_code));
    });
    group.bench_function("compile_cache_miss", |b| {
        // Every iteration compiles a distinct source: steady-state misses
        // (probe + compile + insert), the complement of `compile_cache_hit`.
        let mut session =
            CompileSession::for_model(DirectiveModel::OpenAcc).with_cache(CompileCache::shared());
        let mut counter = 0u64;
        let mut source = String::new();
        b.iter(|| {
            counter += 1;
            source.clear();
            let _ = write!(source, "{}\n// miss {counter}\n", valid.source);
            criterion::black_box(session.compile(&source, Lang::C).return_code)
        });
    });
    group.bench_function("execute_valid_file", |b| {
        let compiler = compiler_for(DirectiveModel::OpenAcc);
        let program = compiler
            .compile(&valid.source, Lang::C)
            .artifact
            .expect("valid file compiles");
        let executor = Executor::default();
        b.iter(|| criterion::black_box(executor.run(&program).return_code));
    });
    group.bench_function("judge_agent_prompt", |b| {
        let session = judge_session();
        let tools = clean_tools();
        b.iter(|| {
            criterion::black_box(
                session
                    .evaluate(&valid.source, DirectiveModel::OpenAcc, Some(&tools))
                    .verdict,
            )
        });
    });
    group.bench_function("judge_agent_prompt_precomputed_signals", |b| {
        let session = judge_session();
        let tools = clean_tools();
        let signals = CodeSignals::of_source(&valid.source, DirectiveModel::OpenAcc);
        b.iter(|| {
            criterion::black_box(
                session
                    .evaluate_precomputed(
                        &valid.source,
                        DirectiveModel::OpenAcc,
                        Some(&tools),
                        Some(&signals),
                    )
                    .verdict,
            )
        });
    });
    group.bench_function("build_prompt_and_tokenize", |b| {
        b.iter(|| {
            let prompt = build_prompt(
                PromptStyle::AgentIndirect,
                DirectiveModel::OpenAcc,
                &valid.source,
                None,
            );
            criterion::black_box(estimate_tokens(&prompt))
        });
    });
    group.finish();
}

fn judge_session() -> JudgeSession {
    JudgeSession::new(
        SurrogateLlmJudge::new(JudgeProfile::deepseek_agent_direct(), 1),
        PromptStyle::AgentDirect,
    )
}

fn clean_tools() -> ToolContext {
    ToolContext {
        compile: Some(ToolRecord {
            return_code: 0,
            stdout: "".into(),
            stderr: "".into(),
        }),
        run: Some(ToolRecord {
            return_code: 0,
            stdout: "Test passed\n".into(),
            stderr: "".into(),
        }),
    }
}

// ---------------------------------------------------------------------------
// BENCH_PR5.json: per-stage + end-to-end throughput point with tripwire
// ---------------------------------------------------------------------------

/// Best-of-three cases/s over one full pass of `items` through `f`.
fn cases_per_sec(items: &[WorkItem], mut f: impl FnMut(&WorkItem)) -> f64 {
    for item in items {
        f(item); // warm-up pass
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let started = Instant::now();
        for item in items {
            f(item);
        }
        best = best.min(started.elapsed().as_secs_f64());
    }
    items.len() as f64 / best
}

/// A compile backend that discards precomputed signals: the judge slow path.
struct SignalStrippingBackend(SimCompileBackend);

impl CompileBackend for SignalStrippingBackend {
    fn compile(&self, item: &WorkItem) -> CompileOutput {
        let mut out = self.0.compile(item);
        out.signals = None;
        out
    }
}

fn write_bench_point() {
    let model = DirectiveModel::OpenAcc;
    let stage_n = if cfg!(debug_assertions) { 60 } else { 600 };
    let workload = probed_workload(model, stage_n, 0xACC5);

    // --- generation + probing stage throughput --------------------------
    let gen_n = if cfg!(debug_assertions) { 500 } else { 20_000 };
    let time_source = |probed: bool| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let spec = probed_spec(model, gen_n, 0xACC5);
            let source: Box<dyn vv_corpus::CaseSource + Send> = if probed {
                spec.source()
            } else {
                Box::new(vv_corpus::TemplateSource::new(model, 0xACC5).take(gen_n))
            };
            let started = Instant::now();
            let mut count = 0usize;
            let mut source = source;
            while let Some(case) = source.next_case() {
                criterion::black_box(case.source.len());
                count += 1;
            }
            assert_eq!(count, gen_n);
            best = best.min(started.elapsed().as_secs_f64());
        }
        gen_n as f64 / best
    };
    let generate_cps = time_source(false);
    let probe_cps = time_source(true);

    // --- compile stage: fresh per-file vs session + content cache -------
    let fresh_compiler = compiler_for(model);
    let compile_fresh_cps = cases_per_sec(&workload.items, |item| {
        criterion::black_box(fresh_compiler.compile(&item.source, item.lang).return_code);
    });
    let mut session = CompileSession::for_model(model);
    let compile_session_cps = cases_per_sec(&workload.items, |item| {
        criterion::black_box(session.compile(&item.source, item.lang).return_code);
    });
    let mut cached_session = CompileSession::for_model(model).with_cache(CompileCache::shared());
    let compile_cached_cps = cases_per_sec(&workload.items, |item| {
        criterion::black_box(cached_session.compile(&item.source, item.lang).return_code);
    });
    let compile_speedup = compile_cached_cps / compile_fresh_cps;

    // --- exec stage (compile-once, execute-many production path) --------
    let programs: Vec<_> = workload
        .items
        .iter()
        .filter_map(|item| fresh_compiler.compile(&item.source, item.lang).artifact)
        .collect();
    let executor = Executor::default();
    let exec_cps = {
        for program in &programs {
            executor.run(program);
        }
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let started = Instant::now();
            for program in &programs {
                criterion::black_box(executor.run(program).return_code);
            }
            best = best.min(started.elapsed().as_secs_f64());
        }
        programs.len() as f64 / best
    };

    // --- judge stage: prompt re-scan vs precomputed signals -------------
    let judge = judge_session();
    let tools = clean_tools();
    let judge_slow_cps = cases_per_sec(&workload.items, |item| {
        criterion::black_box(
            judge
                .evaluate_precomputed(&item.source, model, Some(&tools), None)
                .verdict,
        );
    });
    let signals: Vec<CodeSignals> = workload
        .items
        .iter()
        .map(|item| CodeSignals::of_source(&item.source, model))
        .collect();
    let judge_fast_cps = {
        let run_pass = |judge: &JudgeSession| {
            for (item, sig) in workload.items.iter().zip(&signals) {
                criterion::black_box(
                    judge
                        .evaluate_precomputed(&item.source, model, Some(&tools), Some(sig))
                        .verdict,
                );
            }
        };
        run_pass(&judge);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let started = Instant::now();
            run_pass(&judge);
            best = best.min(started.elapsed().as_secs_f64());
        }
        workload.items.len() as f64 / best
    };
    let judge_speedup = judge_fast_cps / judge_slow_cps;

    // --- end to end: the streaming_scale configuration ------------------
    let e2e_n = if cfg!(debug_assertions) { 800 } else { 24_000 };
    let run_e2e = |fast: bool| -> f64 {
        let spec = probed_spec(model, e2e_n, 0xACC5);
        let builder = ValidationService::builder()
            .workers(4, 4, 2)
            .channel_capacity(64);
        let service = if fast {
            builder.build()
        } else {
            builder
                .compile_backend(SignalStrippingBackend(SimCompileBackend::uncached()))
                .build()
        };
        let started = Instant::now();
        let mut count = 0usize;
        for record in service.submit_source(spec.source()) {
            criterion::black_box(record.id.len());
            count += 1;
        }
        assert_eq!(count, e2e_n);
        count as f64 / started.elapsed().as_secs_f64()
    };
    let e2e_baseline_cps = run_e2e(false);
    let e2e_cached_cps = run_e2e(true);

    // PR-4 recorded ~3.9k cases/s for the 120k streaming_scale run on the
    // reference machine (see BENCH_PR4.json / README); the acceptance bar
    // for this PR is >= 1.5x that.
    const PR4_E2E_REFERENCE_CPS: f64 = 3900.0;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 5,");
    let _ = writeln!(
        json,
        "  \"bench\": \"compile/judge stage + end-to-end throughput, probed OpenACC corpus ({stage_n} files per stage pass, {e2e_n} files end-to-end)\","
    );
    let _ = writeln!(json, "  \"profile\": \"{}\",", profile_name());
    let _ = writeln!(json, "  \"generate_cases_per_sec\": {generate_cps:.1},");
    let _ = writeln!(json, "  \"probe_cases_per_sec\": {probe_cps:.1},");
    let _ = writeln!(
        json,
        "  \"compile_fresh_cases_per_sec\": {compile_fresh_cps:.1},"
    );
    let _ = writeln!(
        json,
        "  \"compile_session_cases_per_sec\": {compile_session_cps:.1},"
    );
    let _ = writeln!(
        json,
        "  \"compile_cached_cases_per_sec\": {compile_cached_cps:.1},"
    );
    let _ = writeln!(json, "  \"compile_speedup\": {compile_speedup:.2},");
    let _ = writeln!(json, "  \"exec_cases_per_sec\": {exec_cps:.1},");
    let _ = writeln!(json, "  \"judge_slow_cases_per_sec\": {judge_slow_cps:.1},");
    let _ = writeln!(json, "  \"judge_fast_cases_per_sec\": {judge_fast_cps:.1},");
    let _ = writeln!(json, "  \"judge_speedup\": {judge_speedup:.2},");
    let _ = writeln!(
        json,
        "  \"end_to_end_baseline_cases_per_sec\": {e2e_baseline_cps:.1},"
    );
    let _ = writeln!(
        json,
        "  \"end_to_end_cached_cases_per_sec\": {e2e_cached_cps:.1},"
    );
    let _ = writeln!(
        json,
        "  \"end_to_end_speedup_vs_pr4_reference\": {:.2},",
        e2e_cached_cps / PR4_E2E_REFERENCE_CPS
    );
    let _ = writeln!(
        json,
        "  \"pr4_reference_end_to_end_cases_per_sec\": {PR4_E2E_REFERENCE_CPS:.1}"
    );
    let _ = writeln!(json, "}}");
    println!(
        "stages/throughput: compile fresh {compile_fresh_cps:.0} -> session {compile_session_cps:.0} -> cached {compile_cached_cps:.0} cases/s ({compile_speedup:.2}x); \
         judge {judge_slow_cps:.0} -> {judge_fast_cps:.0} cases/s ({judge_speedup:.2}x); \
         e2e {e2e_baseline_cps:.0} -> {e2e_cached_cps:.0} cases/s"
    );

    // Repo root (bench crate lives at crates/bench).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR5.json");
    if let Err(err) = std::fs::write(path, json) {
        eprintln!("stages bench: could not write BENCH_PR5.json: {err}");
    }

    // Regression tripwire, mirroring the PR-4 interp tripwire: deliberately
    // below the acceptance measurement so shared-runner noise cannot flake
    // it, but far above any real regression. The probed corpus re-compiles
    // duplicated sources, so a healthy cache must at least double the
    // fresh-per-file compile throughput.
    if !cfg!(debug_assertions) {
        assert!(
            compile_speedup >= 2.0,
            "session+cache compile stage fell below 2x the fresh-per-file baseline \
             ({compile_speedup:.2}x) — a real regression; see BENCH_PR5.json"
        );
    }
}

fn profile_name() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

fn bench_throughput_point(_c: &mut Criterion) {
    write_bench_point();
}

criterion_group!(benches, bench_stages, bench_throughput_point);
criterion_main!(benches);
