//! Per-stage microbenchmarks: the cost of compiling, executing and judging
//! a single candidate test, plus prompt construction and tokenization.
//! These quantify why the pipeline orders its stages cheap-to-expensive.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use vv_bench::{probed_workload, sizes};
use vv_dclang::DirectiveModel;
use vv_judge::{
    build_prompt, estimate_tokens, JudgeProfile, JudgeSession, PromptStyle, SurrogateLlmJudge,
    ToolContext, ToolRecord,
};
use vv_simcompiler::{compiler_for, Lang};
use vv_simexec::Executor;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
}

fn bench_stages(c: &mut Criterion) {
    let workload = probed_workload(DirectiveModel::OpenAcc, sizes::MICRO, 707);
    let valid = workload
        .items
        .iter()
        .zip(&workload.issues)
        .find(|(_, issue)| issue.is_valid())
        .map(|(item, _)| item.clone())
        .expect("workload contains a valid file");
    let broken = workload
        .items
        .iter()
        .zip(&workload.issues)
        .find(|(_, issue)| !issue.is_valid())
        .map(|(item, _)| item.clone())
        .expect("workload contains a mutated file");

    let mut group = c.benchmark_group("stage_costs");
    configure(&mut group);

    group.bench_function("compile_valid_file", |b| {
        let compiler = compiler_for(DirectiveModel::OpenAcc);
        b.iter(|| criterion::black_box(compiler.compile(&valid.source, Lang::C).return_code));
    });
    group.bench_function("compile_mutated_file", |b| {
        let compiler = compiler_for(DirectiveModel::OpenAcc);
        b.iter(|| criterion::black_box(compiler.compile(&broken.source, Lang::C).return_code));
    });
    group.bench_function("execute_valid_file", |b| {
        let compiler = compiler_for(DirectiveModel::OpenAcc);
        let program = compiler
            .compile(&valid.source, Lang::C)
            .artifact
            .expect("valid file compiles");
        let executor = Executor::default();
        b.iter(|| criterion::black_box(executor.run(&program).return_code));
    });
    group.bench_function("judge_agent_prompt", |b| {
        let session = JudgeSession::new(
            SurrogateLlmJudge::new(JudgeProfile::deepseek_agent_direct(), 1),
            PromptStyle::AgentDirect,
        );
        let tools = ToolContext {
            compile: Some(ToolRecord {
                return_code: 0,
                stdout: "".into(),
                stderr: "".into(),
            }),
            run: Some(ToolRecord {
                return_code: 0,
                stdout: "Test passed\n".into(),
                stderr: "".into(),
            }),
        };
        b.iter(|| {
            criterion::black_box(
                session
                    .evaluate(&valid.source, DirectiveModel::OpenAcc, Some(&tools))
                    .verdict,
            )
        });
    });
    group.bench_function("build_prompt_and_tokenize", |b| {
        b.iter(|| {
            let prompt = build_prompt(
                PromptStyle::AgentIndirect,
                DirectiveModel::OpenAcc,
                &valid.source,
                None,
            );
            criterion::black_box(estimate_tokens(&prompt))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
