//! Ablation benchmarks (A1–A3 in DESIGN.md): the design choices behind the
//! validation service.
//!
//! * `early_exit_vs_record_all` — how much work the early-exit rule saves;
//! * `strategy_comparison` — staged pipeline vs sequential vs batch
//!   parallel vs pipelined, all through the single `ValidationService`
//!   entry point;
//! * `worker_scaling` — throughput as the stage worker pools grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use vv_bench::{probed_workload, sizes};
use vv_dclang::DirectiveModel;
use vv_pipeline::{ExecutionStrategy, PipelineMode, ValidationService};

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
}

fn bench_early_exit(c: &mut Criterion) {
    let workload = probed_workload(DirectiveModel::OpenAcc, sizes::BENCH_SUITE, 404);
    let mut group = c.benchmark_group("early_exit_vs_record_all");
    configure(&mut group);
    group.bench_function("early_exit", |b| {
        let service = ValidationService::builder().build();
        b.iter(|| criterion::black_box(service.run(workload.items.clone()).stats.judged));
    });
    group.bench_function("record_all", |b| {
        let service = ValidationService::builder()
            .mode(PipelineMode::RecordAll)
            .build();
        b.iter(|| criterion::black_box(service.run(workload.items.clone()).stats.judged));
    });
    group.finish();
}

fn bench_strategy_comparison(c: &mut Criterion) {
    let workload = probed_workload(DirectiveModel::OpenMp, sizes::BENCH_SUITE, 505);
    let mut group = c.benchmark_group("strategy_comparison");
    configure(&mut group);
    for strategy in ExecutionStrategy::ALL {
        let service = ValidationService::builder()
            .mode(PipelineMode::RecordAll)
            .strategy(strategy)
            .build();
        group.bench_function(BenchmarkId::from_parameter(strategy.label()), |b| {
            b.iter(|| criterion::black_box(service.run(workload.items.clone()).records.len()));
        });
    }
    group.finish();
}

fn bench_worker_scaling(c: &mut Criterion) {
    let workload = probed_workload(DirectiveModel::OpenAcc, sizes::BENCH_SUITE, 606);
    let mut group = c.benchmark_group("worker_scaling");
    configure(&mut group);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            let service = ValidationService::builder().workers(w, w, w).build();
            b.iter(|| criterion::black_box(service.run(workload.items.clone()).records.len()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_early_exit,
    bench_strategy_comparison,
    bench_worker_scaling
);
criterion_main!(benches);
