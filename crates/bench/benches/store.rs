//! Artifact-store benchmarks: segment put/flush/open throughput, journal
//! append strategies (per-frame fsync vs group commit), and the
//! cold-vs-warm incremental-campaign sweep whose result is written to
//! `BENCH_PR6.json` at the repo root — the durability point of the perf
//! trajectory. The PR-6 acceptance bar is a ≥ 10x warm-replay speedup on
//! `examples/incremental_campaign.rs`; the tripwire here is deliberately
//! lower (2x) so shared-runner noise cannot flake CI.

use criterion::{criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use llm4vv::campaign::ScenarioMatrix;
use llm4vv::incremental::run_incremental_campaign;
use vv_pipeline::ExecutionStrategy;
use vv_store::{fnv1a, kind, ArtifactStore, Journal};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vv-store-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
}

/// Synthetic record payloads roughly the size of an encoded case record.
fn payload(i: usize) -> Vec<u8> {
    (0..1536).map(|j| (i * 31 + j * 131) as u8).collect()
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    configure(&mut group);
    const RECORDS: usize = 512;

    // Insert + seal a segment of records (tempfile + rename + manifest).
    group.bench_function("put_flush_512", |b| {
        b.iter(|| {
            let dir = temp_dir("put");
            let store = ArtifactStore::open(&dir).expect("open");
            for i in 0..RECORDS {
                let key = format!("key-{i:05}").into_bytes();
                store
                    .put(kind::CASE, fnv1a(&key), &key, &payload(i))
                    .expect("put");
            }
            store.flush().expect("flush");
            let _ = std::fs::remove_dir_all(&dir);
        });
    });

    // Reopen a sealed store: read, checksum-verify and index every record.
    {
        let dir = temp_dir("open");
        let store = ArtifactStore::open(&dir).expect("open");
        for i in 0..RECORDS {
            let key = format!("key-{i:05}").into_bytes();
            store
                .put(kind::CASE, fnv1a(&key), &key, &payload(i))
                .expect("put");
        }
        store.flush().expect("flush");
        drop(store);
        group.bench_function("open_verify_512", |b| {
            b.iter(|| {
                let store = ArtifactStore::open(&dir).expect("reopen");
                criterion::black_box(store.stats().records)
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Journal appends: per-frame fsync vs group commit (buffer + one sync).
    group.bench_function("journal_append_synced_64", |b| {
        b.iter(|| {
            let dir = temp_dir("journal-sync");
            std::fs::create_dir_all(&dir).expect("mkdir");
            let (mut journal, _) = Journal::open(dir.join("j.vvj"), b"bench").expect("journal");
            for i in 0..64 {
                journal.append(&payload(i)).expect("append");
            }
            let _ = std::fs::remove_dir_all(&dir);
        });
    });
    group.bench_function("journal_append_grouped_64", |b| {
        b.iter(|| {
            let dir = temp_dir("journal-group");
            std::fs::create_dir_all(&dir).expect("mkdir");
            let (mut journal, _) = Journal::open(dir.join("j.vvj"), b"bench").expect("journal");
            for i in 0..64 {
                journal.append_buffered(&payload(i)).expect("append");
            }
            journal.sync().expect("sync");
            let _ = std::fs::remove_dir_all(&dir);
        });
    });

    group.finish();
}

/// Timed cold-vs-warm sweep (outside criterion so the numbers can be
/// written to `BENCH_PR6.json`): one cold incremental campaign into a
/// fresh store, then a warm re-run of the identical matrix over it.
fn write_bench_point() {
    let size = if cfg!(debug_assertions) { 200 } else { 2_000 };
    let matrix = ScenarioMatrix::new(size)
        .strategies(vec![
            ExecutionStrategy::Staged,
            ExecutionStrategy::Sequential,
        ])
        .shards(2);
    let total = matrix.len() * size;
    let dir = temp_dir("sweep");

    let started = Instant::now();
    let cold = run_incremental_campaign(&matrix, &dir, None).expect("cold run");
    let cold_secs = started.elapsed().as_secs_f64();
    assert!(cold.completed);

    // Best of three warm passes (open + scan + fold, zero validations).
    let mut warm_secs = f64::INFINITY;
    for _ in 0..3 {
        let started = Instant::now();
        let warm = run_incremental_campaign(&matrix, &dir, None).expect("warm run");
        warm_secs = warm_secs.min(started.elapsed().as_secs_f64());
        assert_eq!(warm.total_fresh(), 0, "warm re-run validates nothing");
    }
    let _ = std::fs::remove_dir_all(&dir);

    let cold_cps = total as f64 / cold_secs;
    let warm_cps = total as f64 / warm_secs;
    let speedup = warm_cps / cold_cps;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 6,");
    let _ = writeln!(
        json,
        "  \"bench\": \"incremental campaign cold validation vs warm store replay \
         (2 scenarios x {size} cases, shared artifact store)\","
    );
    let _ = writeln!(json, "  \"profile\": \"{}\",", profile_name());
    let _ = writeln!(json, "  \"cold_cases_per_sec\": {cold_cps:.1},");
    let _ = writeln!(json, "  \"warm_cases_per_sec\": {warm_cps:.1},");
    let _ = writeln!(
        json,
        "  \"cold_fresh_validations\": {},",
        cold.total_fresh()
    );
    let _ = writeln!(json, "  \"warm_speedup\": {speedup:.2}");
    let _ = writeln!(json, "}}");
    println!(
        "store/sweep: cold {cold_cps:.0} cases/s, warm replay {warm_cps:.0} cases/s ({speedup:.2}x)"
    );

    // Repo root (bench crate lives at crates/bench).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR6.json");
    if let Err(err) = std::fs::write(path, json) {
        eprintln!("store bench: could not write BENCH_PR6.json: {err}");
    }

    // Regression tripwire, deliberately below the PR-6 acceptance number
    // (~13x measured on examples/incremental_campaign.rs, recorded in
    // BENCH_PR6.json and README): shared CI runners are noisy, and a
    // wall-clock ratio assert at the acceptance bar itself would flake on
    // machines that are not at fault. A warm replay under 2x cold on any
    // machine indicates a real regression.
    if !cfg!(debug_assertions) {
        assert!(
            speedup >= 2.0,
            "warm store replay fell below 2x cold validation ({speedup:.2}x) — a real \
             regression, the acceptance measurement was ~13x (see BENCH_PR6.json)"
        );
    }
}

fn profile_name() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

fn bench_throughput_point(_c: &mut Criterion) {
    write_bench_point();
}

criterion_group!(benches, bench_store, bench_throughput_point);
criterion_main!(benches);
