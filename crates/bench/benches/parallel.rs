//! Core-count scaling of the pipelined work-stealing executor
//! (`ExecutionStrategy::Pipelined`), written to `BENCH_PR8.json` at the
//! repo root.
//!
//! Two sweeps, because this container's substrate is deliberately
//! CPU-cheap:
//!
//! * **paced** — the judge's simulated latency is realized as wall-clock
//!   time through [`PacedJudge`] (scale 0.001 → ≈1 ms per judged case,
//!   modelling the paper's remote-LLM-judge deployment, three orders of
//!   magnitude compressed). Worker concurrency genuinely overlaps those
//!   waits, so this sweep measures the executor's *scheduling* scaling
//!   independent of core count — and carries the PR-8 acceptance
//!   tripwire: ≥ 2× end-to-end at 4 workers over 1 in release.
//! * **cpu_bound** — no pacing: the simulated stages burn CPU only. The
//!   speedup here is bounded by physical cores (`cores` in the JSON; 1 on
//!   this container means parity with sequential is the honest expected
//!   result), so it is reported transparently but not gated.

use criterion::{criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use vv_dclang::DirectiveModel;
use vv_pipeline::{ExecutionStrategy, PipelineMode, ValidationService, WorkItem};
use vv_probing::{CorpusSpec, ProbeConfig};

/// The pacing scale of the paced sweep: simulated judge latencies are
/// ~900–1500 ms, so each judged case sleeps ≈1 ms.
const PACING: f64 = 0.001;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
}

/// A probed corpus as submission-ready work items (half mutated, so every
/// stage path occurs).
fn corpus(seed: u64, size: usize) -> Vec<WorkItem> {
    let mut probe = ProbeConfig::with_seed(seed ^ 0x9E37_79B9);
    probe.mutated_fraction = 0.5;
    let mut source = CorpusSpec::new(DirectiveModel::OpenAcc)
        .seed(seed)
        .probe(probe)
        .size(size)
        .source();
    let mut items = Vec::with_capacity(size);
    while let Some(case) = source.next_case() {
        items.push(WorkItem::from(case));
    }
    items
}

fn service(strategy: ExecutionStrategy, pacing: f64) -> ValidationService {
    // RecordAll judges every case, so the judge stage (the paced one)
    // carries full weight, as in the paper's experimental runs.
    ValidationService::builder()
        .mode(PipelineMode::RecordAll)
        .strategy(strategy)
        .judge_pacing(pacing)
        .build()
}

/// Scheduling overhead at micro scale: the same small corpus through each
/// strategy (no pacing — this isolates what the schedulers themselves
/// cost).
fn bench_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    configure(&mut group);
    let items = corpus(0x5CED, 256);
    for strategy in ExecutionStrategy::ALL {
        group.bench_function(format!("run_256/{}", strategy.label()), |b| {
            let service = service(strategy, 0.0);
            b.iter(|| criterion::black_box(service.run(items.clone()).records.len()));
        });
    }
    group.finish();
}

/// One timed end-to-end run; returns cases/second.
fn throughput(strategy: ExecutionStrategy, pacing: f64, items: &[WorkItem]) -> f64 {
    let service = service(strategy, pacing);
    let started = Instant::now();
    let run = service.run(items.to_vec());
    let secs = started.elapsed().as_secs_f64();
    assert_eq!(run.records.len(), items.len());
    items.len() as f64 / secs.max(1e-9)
}

/// The worker-count sweep (outside criterion so the numbers land in
/// `BENCH_PR8.json`): Sequential baseline plus Pipelined at 1/2/4/all
/// workers, paced and CPU-bound.
fn write_bench_point() {
    let size = if cfg!(debug_assertions) { 200 } else { 4_000 };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let items = corpus(0x8A11E1, size);

    let sweep = |pacing: f64| -> (f64, Vec<(usize, f64)>) {
        let sequential = throughput(ExecutionStrategy::Sequential, pacing, &items);
        let mut by_workers = Vec::new();
        for workers in [1usize, 2, 4, cores] {
            if by_workers.iter().any(|(w, _)| *w == workers) {
                continue;
            }
            let cps = throughput(ExecutionStrategy::Pipelined { workers }, pacing, &items);
            by_workers.push((workers, cps));
        }
        (sequential, by_workers)
    };

    let (cpu_seq, cpu_points) = sweep(0.0);
    let (paced_seq, paced_points) = sweep(PACING);

    let at = |points: &[(usize, f64)], workers: usize| -> f64 {
        points
            .iter()
            .find(|(w, _)| *w == workers)
            .map(|(_, cps)| *cps)
            .expect("swept worker count")
    };
    let paced_speedup = at(&paced_points, 4) / at(&paced_points, 1);
    let cpu_speedup = at(&cpu_points, 4) / at(&cpu_points, 1);

    let fmt_points = |points: &[(usize, f64)]| -> String {
        let entries: Vec<String> = points
            .iter()
            .map(|(w, cps)| format!("\"{w}\": {cps:.1}"))
            .collect();
        format!("{{{}}}", entries.join(", "))
    };

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 8,");
    let _ = writeln!(
        json,
        "  \"bench\": \"pipelined work-stealing executor worker sweep ({size} cases, \
         RecordAll, half-mutated corpus; paced = judge latency realized at {PACING} \
         wall-clock scale, modelling a remote judge)\","
    );
    let _ = writeln!(json, "  \"profile\": \"{}\",", profile_name());
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(
        json,
        "  \"paced_sequential_cases_per_sec\": {paced_seq:.1},"
    );
    let _ = writeln!(
        json,
        "  \"paced_pipelined_cases_per_sec\": {},",
        fmt_points(&paced_points)
    );
    let _ = writeln!(json, "  \"paced_speedup_4_vs_1\": {paced_speedup:.2},");
    let _ = writeln!(
        json,
        "  \"cpu_bound_sequential_cases_per_sec\": {cpu_seq:.1},"
    );
    let _ = writeln!(
        json,
        "  \"cpu_bound_pipelined_cases_per_sec\": {},",
        fmt_points(&cpu_points)
    );
    let _ = writeln!(json, "  \"cpu_bound_speedup_4_vs_1\": {cpu_speedup:.2}");
    let _ = writeln!(json, "}}");
    println!(
        "parallel/paced: sequential {paced_seq:.0} cases/s, pipelined {} — 4v1 speedup {paced_speedup:.2}x",
        fmt_points(&paced_points)
    );
    println!(
        "parallel/cpu-bound ({cores} core(s)): sequential {cpu_seq:.0} cases/s, pipelined {} — \
         4v1 speedup {cpu_speedup:.2}x",
        fmt_points(&cpu_points)
    );

    // Repo root (bench crate lives at crates/bench).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR8.json");
    if let Err(err) = std::fs::write(path, json) {
        eprintln!("parallel bench: could not write BENCH_PR8.json: {err}");
    }

    // The PR-8 acceptance tripwire: on the latency-dominated (paced)
    // workload, 4 workers must deliver at least 2× the single-worker
    // end-to-end throughput in release.
    if !cfg!(debug_assertions) {
        assert!(
            paced_speedup >= 2.0,
            "pipelined executor scaling fell below the 2x-at-4-workers acceptance bar \
             ({paced_speedup:.2}x on the paced workload) — scheduling regression"
        );
    }
}

fn profile_name() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

fn bench_worker_sweep(_c: &mut Criterion) {
    write_bench_point();
}

criterion_group!(benches, bench_scheduling, bench_worker_sweep);
criterion_main!(benches);
