//! Metrics-layer benchmarks: the batch slice functions (`per_issue` +
//! `overall` + `radar_series` over a materialized `Vec<EvaluationRecord>`)
//! against the streaming accumulator fold (`MetricsSink::observe` per
//! record, no slice), plus the sharded fold-then-merge path the campaign
//! harness uses.
//!
//! The batch functions are thin wrappers over one-shot folds, so the
//! interesting comparison is allocation/locality (three passes over a
//! materialized slice vs one streaming pass), not asymptotics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use vv_corpus::CaseSource;
use vv_dclang::DirectiveModel;
use vv_judge::Verdict;
use vv_metrics::{overall, per_issue, radar_series, Accumulator, EvaluationRecord, MetricsSink};
use vv_probing::{CorpusSpec, IssueKind};

const RECORDS: usize = 4_096;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
}

/// Probed-corpus ground truth with a deterministic surrogate verdict (the
/// benchmark measures the metrics fold, not the judge).
fn sample_records() -> Vec<EvaluationRecord> {
    CorpusSpec::new(DirectiveModel::OpenAcc)
        .seed(404)
        .probe_seed(405)
        .size(RECORDS)
        .source()
        .into_cases()
        .enumerate()
        .map(|(i, case)| {
            let verdict = if i % 3 == 0 {
                Verdict::Valid
            } else {
                Verdict::Invalid
            };
            EvaluationRecord::new(
                case.case.id.clone(),
                IssueKind::of_case(&case),
                Some(verdict),
            )
        })
        .collect()
}

fn bench_batch_vs_streaming(c: &mut Criterion) {
    let records = sample_records();
    let mut group = c.benchmark_group("metrics_batch_vs_streaming");
    configure(&mut group);
    group.bench_function("batch_slice", |b| {
        b.iter(|| {
            let rows = per_issue(&records);
            let stats = overall(&records);
            let series = radar_series(&records);
            criterion::black_box((rows, stats, series))
        });
    });
    group.bench_function("streaming_sink", |b| {
        b.iter(|| {
            let mut sink = MetricsSink::default();
            for record in &records {
                sink.observe(record);
            }
            criterion::black_box((
                sink.per_issue_rows(),
                sink.overall_stats(),
                sink.radar_series(),
            ))
        });
    });
    group.finish();
}

fn bench_sharded_merge(c: &mut Criterion) {
    let records = sample_records();
    let mut group = c.benchmark_group("metrics_sharded_merge");
    configure(&mut group);
    for n in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut merged = MetricsSink::default();
                for k in 0..n {
                    let mut sink = MetricsSink::default();
                    for record in records.iter().skip(k).step_by(n) {
                        sink.observe(record);
                    }
                    merged.merge(&sink);
                }
                criterion::black_box(merged.overall_stats())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_vs_streaming, bench_sharded_merge);
criterion_main!(benches);
