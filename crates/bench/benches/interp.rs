//! Interpreter benchmarks: tree-walk oracle vs register-bytecode VM.
//!
//! Per-stage (lowering, execution) and end-to-end (compile→exec) timings on
//! the standard template corpus, plus a throughput comparison sweep whose
//! result is written to `BENCH_PR4.json` at the repo root — the first point
//! of the perf trajectory. The PR-4 acceptance bar is a ≥ 3× exec-stage
//! speedup for the VM over the tree-walker.

use criterion::{criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use vv_corpus::{CaseSource, TemplateSource};
use vv_dclang::DirectiveModel;
use vv_simcompiler::{compiler_for, Program};
use vv_simexec::{lower, lower_cached, Executor, TreeWalkExecutor};

/// Compile the standard template corpus (clean, all features, both models).
fn template_programs(per_model: usize) -> Vec<Program> {
    let mut programs = Vec::new();
    for model in [DirectiveModel::OpenAcc, DirectiveModel::OpenMp] {
        let compiler = compiler_for(model);
        let mut source = TemplateSource::new(model, 0xBE_5C).take(per_model);
        while let Some(case) = source.next_case() {
            if let Some(program) = compiler.compile(&case.source, case.case.lang).artifact {
                programs.push(program);
            }
        }
    }
    assert!(!programs.is_empty(), "template corpus compiles");
    programs
}

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
}

fn bench_interp(c: &mut Criterion) {
    let programs = template_programs(60);

    let mut group = c.benchmark_group("interp");
    configure(&mut group);

    // Stage: lowering (AST → bytecode), uncached.
    group.bench_function("lower_corpus", |b| {
        b.iter(|| {
            let mut instrs = 0usize;
            for program in &programs {
                instrs += lower(program).instruction_count();
            }
            criterion::black_box(instrs)
        });
    });

    // Stage: execution, tree-walk oracle.
    group.bench_function("exec_treewalk", |b| {
        let oracle = TreeWalkExecutor::default();
        b.iter(|| {
            let mut rc = 0i64;
            for program in &programs {
                rc += oracle.run(program).return_code as i64;
            }
            criterion::black_box(rc)
        });
    });

    // Stage: execution, bytecode VM on cached artifacts (the production
    // path after the first run of each program).
    group.bench_function("exec_bytecode", |b| {
        let vm = Executor::default();
        for program in &programs {
            lower_cached(program); // prime the compile-once cache
        }
        b.iter(|| {
            let mut rc = 0i64;
            for program in &programs {
                rc += vm.run(program).return_code as i64;
            }
            criterion::black_box(rc)
        });
    });

    // End-to-end: compile → lower → execute, fresh every iteration.
    group.bench_function("compile_exec_end_to_end", |b| {
        let compiler = compiler_for(DirectiveModel::OpenAcc);
        let vm = Executor::default();
        let mut source = TemplateSource::new(DirectiveModel::OpenAcc, 0x1234).take(20);
        let mut cases = Vec::new();
        while let Some(case) = source.next_case() {
            cases.push(case);
        }
        b.iter(|| {
            let mut rc = 0i64;
            for case in &cases {
                if let Some(program) = compiler.compile(&case.source, case.case.lang).artifact {
                    rc += vm.run(&program).return_code as i64;
                }
            }
            criterion::black_box(rc)
        });
    });

    group.finish();
}

/// Timed throughput sweep (outside criterion so the numbers can be written
/// to `BENCH_PR4.json`): executes the same compiled corpus through both
/// engines and reports cases/s plus the speedup.
fn write_bench_point() {
    let programs = template_programs(150);
    let oracle = TreeWalkExecutor::default();
    let vm = Executor::default();
    for program in &programs {
        lower_cached(program);
    }

    let time_engine = |run: &dyn Fn(&Program) -> i32| -> (f64, usize) {
        // One warm-up pass, then the best of three timed passes.
        let mut executed = 0usize;
        for program in &programs {
            run(program);
            executed += 1;
        }
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let started = Instant::now();
            for program in &programs {
                criterion::black_box(run(program));
            }
            best = best.min(started.elapsed().as_secs_f64());
        }
        (executed as f64 / best, executed)
    };

    let (treewalk_cps, n) = time_engine(&|p| oracle.run(p).return_code);
    let (bytecode_cps, _) = time_engine(&|p| vm.run(p).return_code);
    let speedup = bytecode_cps / treewalk_cps;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 4,");
    let _ = writeln!(
        json,
        "  \"bench\": \"exec-stage throughput, standard template corpus ({n} programs, both models)\","
    );
    let _ = writeln!(json, "  \"profile\": \"{}\",", profile_name());
    let _ = writeln!(json, "  \"treewalk_cases_per_sec\": {:.1},", treewalk_cps);
    let _ = writeln!(json, "  \"bytecode_cases_per_sec\": {:.1},", bytecode_cps);
    let _ = writeln!(json, "  \"speedup\": {:.2}", speedup);
    let _ = writeln!(json, "}}");
    println!("interp/throughput: treewalk {treewalk_cps:.0} cases/s, bytecode {bytecode_cps:.0} cases/s ({speedup:.2}x)");

    // Repo root (bench crate lives at crates/bench).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR4.json");
    if let Err(err) = std::fs::write(path, json) {
        eprintln!("interp bench: could not write BENCH_PR4.json: {err}");
    }

    // Regression tripwire, deliberately below the PR-4 acceptance number
    // (~3.7x measured, recorded in BENCH_PR4.json and README): shared CI
    // runners are noisy/throttled, and a wall-clock ratio assert at the
    // acceptance bar itself would flake on machines that are not at fault.
    // A drop under 2x on any machine indicates a real regression.
    if !cfg!(debug_assertions) {
        assert!(
            speedup >= 2.0,
            "bytecode VM fell below 2x the tree-walker on the template corpus ({speedup:.2}x) — \
             a real regression, the acceptance measurement was ~3.7x (see BENCH_PR4.json)"
        );
    }
}

fn profile_name() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

fn bench_throughput_point(_c: &mut Criterion) {
    write_bench_point();
}

criterion_group!(benches, bench_interp, bench_throughput_point);
criterion_main!(benches);
