//! Validation-server benchmarks: protocol codec throughput, per-request
//! round-trip latency over the loopback transport, and the
//! campaign-over-the-wire sweep whose result is written to
//! `BENCH_PR7.json` at the repo root. The PR-7 acceptance bar is ≥ 5 000
//! cases/s through the loopback protocol in release; the tripwire here
//! asserts exactly that (the measured margin is large enough that
//! shared-runner noise cannot flake it — the protocol adds framing, not
//! work).

use criterion::{criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use vv_dclang::DirectiveModel;
use vv_pipeline::{ValidationService, WorkItem};
use vv_probing::{CorpusSpec, ProbeConfig};
use vv_server::protocol::{write_frame, Request, Response};
use vv_server::{Client, JobSpec, Server, ServerConfig};

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
}

/// A probed corpus as submission-ready work items.
fn corpus(seed: u64, size: usize) -> Vec<WorkItem> {
    let mut probe = ProbeConfig::with_seed(seed ^ 0x9E37_79B9);
    probe.mutated_fraction = 0.5;
    let mut source = CorpusSpec::new(DirectiveModel::OpenAcc)
        .seed(seed)
        .probe(probe)
        .size(size)
        .source();
    let mut items = Vec::with_capacity(size);
    while let Some(case) = source.next_case() {
        items.push(WorkItem::from(case));
    }
    items
}

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("server");
    configure(&mut group);

    // Codec throughput: encode + frame + decode one CASE message.
    let item = corpus(0xC0DEC, 1).remove(0);
    group.bench_function("case_frame_round_trip", |b| {
        b.iter(|| {
            let request = Request::Case {
                job: 1,
                seq: 7,
                item: item.clone(),
            };
            let mut framed = Vec::new();
            write_frame(&mut framed, &request.encode()).expect("frame");
            criterion::black_box(framed.len())
        });
    });
    group.bench_function("record_response_decode", |b| {
        let payload = Response::Record {
            job: 1,
            seq: 7,
            record: vec![0x5A; 1024],
        }
        .encode();
        b.iter(|| criterion::black_box(Response::decode(&payload).expect("decode")));
    });

    // Full-stack request latency: a STATS round trip over the loopback
    // transport (frame, pipe, dispatch, snapshot, frame back).
    {
        let server = Server::start(ServerConfig::default()).expect("start");
        let mut client = Client::over(Box::new(server.connect()), "bench").expect("handshake");
        group.bench_function("stats_round_trip", |b| {
            b.iter(|| criterion::black_box(client.stats().expect("stats").connections));
        });
        drop(client);
        server.handle().shutdown();
        server.join();
    }

    group.finish();
}

/// Timed campaign-over-the-wire sweep (outside criterion so the numbers
/// can be written to `BENCH_PR7.json`): the same corpus through a direct
/// in-process service and through the loopback protocol, single tenant.
fn write_bench_point() {
    let size = if cfg!(debug_assertions) { 300 } else { 6_000 };
    let spec = JobSpec::default();
    let items = corpus(0x7EAE7, size);

    let direct_service = ValidationService::builder()
        .mode(spec.mode)
        .judge_style(spec.style)
        .judge_profile(spec.profile.profile())
        .judge_seed(spec.judge_seed)
        .build();
    let started = Instant::now();
    let direct = direct_service.submit(items.clone()).into_run();
    let direct_secs = started.elapsed().as_secs_f64();
    assert_eq!(direct.records.len(), size);

    // The direct service runs 4+4+2 stage workers; give the daemon's
    // flat per-case pool a comparable overlap budget (the simulated
    // stage latencies reward concurrency even on few cores).
    let config = ServerConfig {
        workers: 10,
        ..ServerConfig::default()
    };
    let server = Server::start(config).expect("start");
    let mut client = Client::over(Box::new(server.connect()), "bench").expect("handshake");
    // One warm-up pass so the pooled service exists and the compile cache
    // is in the same (warm) state the daemon would realistically be in.
    client
        .submit(spec, items.clone())
        .expect("submit")
        .into_run()
        .expect("warm-up");
    let started = Instant::now();
    let remote = client
        .submit(spec, items.clone())
        .expect("submit")
        .into_run()
        .expect("loopback campaign");
    let loopback_secs = started.elapsed().as_secs_f64();
    assert_eq!(remote.records.len(), size);
    drop(client);
    server.handle().shutdown();
    server.join();

    let direct_cps = size as f64 / direct_secs;
    let loopback_cps = size as f64 / loopback_secs;
    let overhead = direct_cps / loopback_cps;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 7,");
    let _ = writeln!(
        json,
        "  \"bench\": \"campaign through the vv-server loopback protocol vs a direct \
         in-process service ({size} cases, single tenant, default workers)\","
    );
    let _ = writeln!(json, "  \"profile\": \"{}\",", profile_name());
    let _ = writeln!(json, "  \"direct_cases_per_sec\": {direct_cps:.1},");
    let _ = writeln!(json, "  \"loopback_cases_per_sec\": {loopback_cps:.1},");
    let _ = writeln!(json, "  \"protocol_overhead_x\": {overhead:.2}");
    let _ = writeln!(json, "}}");
    println!(
        "server/loopback: direct {direct_cps:.0} cases/s, over the wire {loopback_cps:.0} \
         cases/s ({overhead:.2}x overhead)"
    );

    // Repo root (bench crate lives at crates/bench).
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR7.json");
    if let Err(err) = std::fs::write(path, json) {
        eprintln!("server bench: could not write BENCH_PR7.json: {err}");
    }

    // The PR-7 acceptance tripwire: the resident daemon must sustain at
    // least 5k cases/s through the loopback protocol in release.
    if !cfg!(debug_assertions) {
        assert!(
            loopback_cps >= 5_000.0,
            "loopback campaign throughput fell below the 5k cases/s acceptance bar \
             ({loopback_cps:.0} cases/s) — protocol or scheduling regression"
        );
    }
}

fn profile_name() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

fn bench_throughput_point(_c: &mut Criterion) {
    write_bench_point();
}

criterion_group!(benches, bench_protocol, bench_throughput_point);
criterion_main!(benches);
