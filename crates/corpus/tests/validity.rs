//! The central corpus invariant: every generated test is *valid* — it
//! compiles under the simulated vendor compiler for its model and passes its
//! own verification when executed. Negative probing relies on this.

use vv_corpus::{CaseSource, Feature, TemplateSource};
use vv_dclang::DirectiveModel;
use vv_simcompiler::compiler_for;
use vv_simexec::Executor;

fn assert_suite_valid(model: DirectiveModel, seed: u64, size: usize) {
    let compiler = compiler_for(model);
    let executor = Executor::default();
    for generated in TemplateSource::new(model, seed).take(size).into_cases() {
        let case = &generated.case;
        let compiled = compiler.compile(&case.source, case.lang);
        assert!(
            compiled.succeeded(),
            "case {} failed to compile:\n{}\nsource:\n{}",
            case.id,
            compiled.stderr,
            case.source
        );
        let ran = executor.run(&compiled.artifact.unwrap());
        assert_eq!(
            ran.return_code, 0,
            "case {} failed at runtime (stdout: {} stderr: {}):\n{}",
            case.id, ran.stdout, ran.stderr, case.source
        );
        assert!(
            ran.stdout.contains("Test passed"),
            "case {} printed: {}",
            case.id,
            ran.stdout
        );
    }
}

#[test]
fn every_openacc_feature_produces_valid_tests() {
    // Two full passes over the feature list with different surface params.
    let size = Feature::all_for(DirectiveModel::OpenAcc).len() * 2;
    assert_suite_valid(DirectiveModel::OpenAcc, 20240822, size);
}

#[test]
fn every_openmp_feature_produces_valid_tests() {
    let size = Feature::all_for(DirectiveModel::OpenMp).len() * 2;
    assert_suite_valid(DirectiveModel::OpenMp, 20240823, size);
}

#[test]
fn larger_mixed_suites_remain_valid() {
    assert_suite_valid(DirectiveModel::OpenAcc, 7, 45);
    assert_suite_valid(DirectiveModel::OpenMp, 8, 45);
}

#[test]
fn non_directive_programs_compile_and_run_cleanly() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(99);
    let compiler = compiler_for(DirectiveModel::OpenAcc);
    let executor = Executor::default();
    for _ in 0..20 {
        let code = vv_corpus::generate_non_directive_code(&mut rng);
        let compiled = compiler.compile(&code, vv_simcompiler::Lang::C);
        assert!(
            compiled.succeeded(),
            "random code failed to compile:\n{}\n{code}",
            compiled.stderr
        );
        let ran = executor.run(&compiled.artifact.unwrap());
        assert_eq!(
            ran.return_code, 0,
            "random code failed at runtime: {}\n{code}",
            ran.stderr
        );
    }
}
