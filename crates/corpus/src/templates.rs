//! Source-code emitters for each feature.
//!
//! Every emitter produces the canonical V&V test shape:
//!
//! ```text
//! header comment
//! #include ...            (C or C++ flavored)
//! #define N ...
//! int main() {
//!     allocate / initialize data
//!     <directive-based computation>
//!     verify against the expected result
//!     return 0 on success, nonzero on failure
//! }
//! ```
//!
//! Emitters draw sizes, scaling constants and naming schemes from the RNG so
//! that a large suite has realistic surface diversity, while every constant
//! is chosen so that floating-point results are exactly representable and
//! the verification comparison is exact (as the hand-written V&V tests do by
//! comparing against a serially computed reference).

use crate::features::{AccFeature, Feature, OmpFeature};
use rand::Rng;
use vv_simcompiler::Lang;

/// Tunable surface parameters for one generated test.
#[derive(Clone, Debug)]
pub struct Params {
    /// Problem size (`#define N ...`).
    pub n: usize,
    /// Integer scaling constant used in the computation.
    pub scale: i64,
    /// Additive constant (exactly representable).
    pub shift: i64,
    /// Array naming scheme `(input, output, scratch)`.
    pub names: (&'static str, &'static str, &'static str),
    /// Heap (`malloc`) vs stack arrays.
    pub heap: bool,
}

const NAME_SCHEMES: &[(&str, &str, &str)] = &[
    ("a", "b", "c"),
    ("x", "y", "z"),
    ("input_data", "output_data", "scratch"),
    ("src", "dst", "tmp"),
    ("data_in", "data_out", "work"),
];

impl Params {
    /// Draw parameters from the RNG.
    pub fn draw(rng: &mut impl Rng) -> Self {
        let sizes = [64usize, 128, 256, 512];
        Self {
            n: sizes[rng.gen_range(0..sizes.len())],
            scale: rng.gen_range(2..=5),
            shift: rng.gen_range(0..=3),
            names: NAME_SCHEMES[rng.gen_range(0..NAME_SCHEMES.len())],
            heap: rng.gen_bool(0.55),
        }
    }
}

/// Emit the source text for a feature.
pub fn emit(feature: Feature, lang: Lang, rng: &mut impl Rng) -> String {
    let params = Params::draw(rng);
    match feature {
        Feature::Acc(f) => emit_acc(f, lang, &params, rng),
        Feature::Omp(f) => emit_omp(f, lang, &params, rng),
    }
}

// ---------------------------------------------------------------------------
// shared building blocks
// ---------------------------------------------------------------------------

fn header(feature: Feature, lang: Lang) -> String {
    let flavor = match lang {
        Lang::C => "C",
        Lang::Cpp => "C++",
    };
    format!(
        "// Functional test of the {}.\n\
         // Part of the synthetic validation and verification testsuite; the\n\
         // {} computation below is verified against a serial reference and\n\
         // the test exits with a nonzero code if any element mismatches.\n",
        feature.description(),
        flavor
    )
}

fn includes(lang: Lang) -> String {
    match lang {
        Lang::C => "#include <stdio.h>\n#include <stdlib.h>\n".to_string(),
        Lang::Cpp => "#include <cstdio>\n#include <cstdlib>\n".to_string(),
    }
}

fn alloc_array(name: &str, heap: bool) -> String {
    if heap {
        format!("    double *{name} = (double *)malloc(N * sizeof(double));\n")
    } else {
        format!("    double {name}[N];\n")
    }
}

fn free_array(name: &str, heap: bool) -> String {
    if heap {
        format!("    free({name});\n")
    } else {
        String::new()
    }
}

/// The standard element-wise kernel test: `out[i] = in[i] * scale + shift`.
///
/// `pragmas` are emitted immediately before the offloaded loop;
/// `region` optionally wraps the loop in a structured data region
/// (opening line, needs its own `{`/`}` emitted by this helper);
/// `standalone_pre`/`standalone_post` are standalone directives emitted
/// before and after the computation (for unstructured data movement).
struct Elementwise<'a> {
    feature: Feature,
    lang: Lang,
    params: &'a Params,
    pragmas: Vec<String>,
    region: Option<String>,
    standalone_pre: Vec<String>,
    standalone_post: Vec<String>,
    extra_decls: Vec<String>,
    loop_body: Option<String>,
}

impl<'a> Elementwise<'a> {
    fn new(feature: Feature, lang: Lang, params: &'a Params) -> Self {
        Self {
            feature,
            lang,
            params,
            pragmas: Vec::new(),
            region: None,
            standalone_pre: Vec::new(),
            standalone_post: Vec::new(),
            extra_decls: Vec::new(),
            loop_body: None,
        }
    }

    fn pragma(mut self, line: impl Into<String>) -> Self {
        self.pragmas.push(line.into());
        self
    }

    fn region(mut self, line: impl Into<String>) -> Self {
        self.region = Some(line.into());
        self
    }

    fn pre(mut self, line: impl Into<String>) -> Self {
        self.standalone_pre.push(line.into());
        self
    }

    fn post(mut self, line: impl Into<String>) -> Self {
        self.standalone_post.push(line.into());
        self
    }

    fn decl(mut self, line: impl Into<String>) -> Self {
        self.extra_decls.push(line.into());
        self
    }

    fn body(mut self, body: impl Into<String>) -> Self {
        self.loop_body = Some(body.into());
        self
    }

    fn build(self) -> String {
        let p = self.params;
        let (a, b, _) = p.names;
        let scale = p.scale;
        let shift = p.shift;
        let mut s = String::new();
        s.push_str(&header(self.feature, self.lang));
        s.push_str(&includes(self.lang));
        s.push_str(&format!("#define N {}\n\n", p.n));
        s.push_str("int main() {\n");
        s.push_str(&alloc_array(a, p.heap));
        s.push_str(&alloc_array(b, p.heap));
        for decl in &self.extra_decls {
            s.push_str(&format!("    {decl}\n"));
        }
        s.push_str(&format!(
            "    for (int i = 0; i < N; i++) {{\n        {a}[i] = i * 0.5;\n        {b}[i] = 0.0;\n    }}\n"
        ));
        for line in &self.standalone_pre {
            s.push_str(&format!("{line}\n"));
        }
        let indent = if self.region.is_some() { "    " } else { "" };
        if let Some(region) = &self.region {
            s.push_str(&format!("{region}\n    {{\n"));
        }
        for pragma in &self.pragmas {
            s.push_str(&format!("{pragma}\n"));
        }
        let body = self
            .loop_body
            .unwrap_or_else(|| format!("{b}[i] = {a}[i] * {scale}.0 + {shift}.0;"));
        s.push_str(&format!(
            "{indent}    for (int i = 0; i < N; i++) {{\n{indent}        {body}\n{indent}    }}\n"
        ));
        if self.region.is_some() {
            s.push_str("    }\n");
        }
        for line in &self.standalone_post {
            s.push_str(&format!("{line}\n"));
        }
        s.push_str(&format!(
            "    int err = 0;\n    for (int i = 0; i < N; i++) {{\n        if ({b}[i] != {a}[i] * {scale}.0 + {shift}.0) {{\n            err = err + 1;\n        }}\n    }}\n"
        ));
        s.push_str(&free_array(a, p.heap));
        s.push_str(&free_array(b, p.heap));
        s.push_str(
            "    if (err != 0) {\n        printf(\"Test failed with %d errors\\n\", err);\n        return 1;\n    }\n",
        );
        s.push_str("    printf(\"Test passed\\n\");\n    return 0;\n}\n");
        s
    }
}

/// A reduction-style test: a serial reference sum is compared against the
/// offloaded reduction.
fn reduction_test(feature: Feature, lang: Lang, params: &Params, pragma: &str) -> String {
    let (a, _, _) = params.names;
    let mut s = String::new();
    s.push_str(&header(feature, lang));
    s.push_str(&includes(lang));
    s.push_str(&format!("#define N {}\n\n", params.n));
    s.push_str("int main() {\n");
    s.push_str(&alloc_array(a, params.heap));
    s.push_str(&format!(
        "    double expected = 0.0;\n    for (int i = 0; i < N; i++) {{\n        {a}[i] = i * 0.25;\n        expected = expected + {a}[i];\n    }}\n"
    ));
    s.push_str("    double sum = 0.0;\n");
    s.push_str(&format!("{pragma}\n"));
    s.push_str(&format!(
        "    for (int i = 0; i < N; i++) {{\n        sum += {a}[i];\n    }}\n"
    ));
    s.push_str(&free_array(a, params.heap));
    s.push_str(
        "    if (sum != expected) {\n        printf(\"Test failed: sum %f expected %f\\n\", sum, expected);\n        return 1;\n    }\n",
    );
    s.push_str("    printf(\"Test passed\\n\");\n    return 0;\n}\n");
    s
}

/// A counter test for atomic/critical constructs: every iteration increments
/// a shared counter; the final value must equal N.
fn counter_test(
    feature: Feature,
    lang: Lang,
    params: &Params,
    outer: &str,
    inner: Option<&str>,
) -> String {
    let mut s = String::new();
    s.push_str(&header(feature, lang));
    s.push_str(&includes(lang));
    s.push_str(&format!("#define N {}\n\n", params.n));
    s.push_str("int main() {\n    int counter = 0;\n");
    s.push_str(&format!("{outer}\n"));
    s.push_str("    for (int i = 0; i < N; i++) {\n");
    if let Some(inner) = inner {
        s.push_str(&format!("{inner}\n"));
    }
    s.push_str("        counter += 1;\n    }\n");
    s.push_str(
        "    if (counter != N) {\n        printf(\"Test failed: counter %d\\n\", counter);\n        return 1;\n    }\n",
    );
    s.push_str("    printf(\"Test passed\\n\");\n    return 0;\n}\n");
    s
}

/// A 2-D test used for `collapse(2)` clauses.
fn collapse_test(feature: Feature, lang: Lang, params: &Params, pragma: &str) -> String {
    let (a, b, _) = params.names;
    let dim = 24usize;
    let scale = params.scale;
    let mut s = String::new();
    s.push_str(&header(feature, lang));
    s.push_str(&includes(lang));
    s.push_str(&format!("#define M {dim}\n\n"));
    s.push_str("int main() {\n");
    s.push_str(&format!(
        "    double *{a} = (double *)malloc(M * M * sizeof(double));\n    double *{b} = (double *)malloc(M * M * sizeof(double));\n"
    ));
    s.push_str(&format!(
        "    for (int i = 0; i < M; i++) {{\n        for (int j = 0; j < M; j++) {{\n            {a}[i * M + j] = i * 1.0 + j * 0.5;\n            {b}[i * M + j] = 0.0;\n        }}\n    }}\n"
    ));
    s.push_str(&format!("{pragma}\n"));
    s.push_str(&format!(
        "    for (int i = 0; i < M; i++) {{\n        for (int j = 0; j < M; j++) {{\n            {b}[i * M + j] = {a}[i * M + j] * {scale}.0;\n        }}\n    }}\n"
    ));
    s.push_str(&format!(
        "    int err = 0;\n    for (int i = 0; i < M; i++) {{\n        for (int j = 0; j < M; j++) {{\n            if ({b}[i * M + j] != {a}[i * M + j] * {scale}.0) {{\n                err = err + 1;\n            }}\n        }}\n    }}\n"
    ));
    s.push_str(&format!("    free({a});\n    free({b});\n"));
    s.push_str(
        "    if (err != 0) {\n        printf(\"Test failed with %d errors\\n\", err);\n        return 1;\n    }\n",
    );
    s.push_str("    printf(\"Test passed\\n\");\n    return 0;\n}\n");
    s
}

// ---------------------------------------------------------------------------
// OpenACC emitters
// ---------------------------------------------------------------------------

fn emit_acc(feature: AccFeature, lang: Lang, p: &Params, rng: &mut impl Rng) -> String {
    let f = Feature::Acc(feature);
    let (a, b, _) = p.names;
    let n_clause = format!("{a}[0:N]");
    let out_clause = format!("{b}[0:N]");
    match feature {
        AccFeature::ParallelLoop => Elementwise::new(f, lang, p)
            .pragma(format!(
                "#pragma acc parallel loop copyin({n_clause}) copyout({out_clause})"
            ))
            .build(),
        AccFeature::ParallelLoopReduction => reduction_test(
            f,
            lang,
            p,
            &format!("#pragma acc parallel loop reduction(+:sum) copyin({n_clause})"),
        ),
        AccFeature::KernelsLoop => Elementwise::new(f, lang, p)
            .pragma(format!(
                "#pragma acc kernels loop copyin({n_clause}) copyout({out_clause})"
            ))
            .build(),
        AccFeature::SerialLoop => Elementwise::new(f, lang, p)
            .pragma(format!(
                "#pragma acc serial loop copyin({n_clause}) copyout({out_clause})"
            ))
            .build(),
        AccFeature::DataRegion => Elementwise::new(f, lang, p)
            .region(format!(
                "#pragma acc data copyin({n_clause}) copyout({out_clause})"
            ))
            .pragma("#pragma acc parallel loop")
            .build(),
        AccFeature::EnterExitData => Elementwise::new(f, lang, p)
            .pre(format!(
                "#pragma acc enter data copyin({n_clause}) create({out_clause})"
            ))
            .pragma(format!(
                "#pragma acc parallel loop present({n_clause}) present({out_clause})"
            ))
            .post(format!("#pragma acc update self({out_clause})"))
            .post(format!(
                "#pragma acc exit data delete({n_clause}) delete({out_clause})"
            ))
            .build(),
        AccFeature::GangVector => Elementwise::new(f, lang, p)
            .pragma(format!(
                "#pragma acc parallel loop gang vector copyin({n_clause}) copyout({out_clause})"
            ))
            .build(),
        AccFeature::Collapse => collapse_test(
            f,
            lang,
            p,
            &format!(
                "#pragma acc parallel loop collapse(2) copyin({a}[0:M*M]) copyout({b}[0:M*M])"
            ),
        ),
        AccFeature::Private => {
            let scale = p.scale;
            Elementwise::new(f, lang, p)
                .decl("double workval = 0.0;")
                .pragma(format!(
                    "#pragma acc parallel loop private(workval) copyin({n_clause}) copyout({out_clause})"
                ))
                .body(format!(
                    "workval = {a}[i] * {scale}.0;\n        {b}[i] = workval + {}.0;",
                    p.shift
                ))
                .build()
        }
        AccFeature::FirstPrivate => {
            let scale = p.scale;
            Elementwise::new(f, lang, p)
                .decl(format!("double factor = {scale}.0;"))
                .pragma(format!(
                    "#pragma acc parallel loop firstprivate(factor) copyin({n_clause}) copyout({out_clause})"
                ))
                .body(format!("{b}[i] = {a}[i] * factor + {}.0;", p.shift))
                .build()
        }
        AccFeature::AtomicUpdate => counter_test(
            f,
            lang,
            p,
            "#pragma acc parallel loop copy(counter)",
            Some("#pragma acc atomic update"),
        ),
        AccFeature::IfClause => Elementwise::new(f, lang, p)
            .decl("int use_device = 1;")
            .pragma(format!(
                "#pragma acc parallel loop if(use_device) copyin({n_clause}) copyout({out_clause})"
            ))
            .build(),
        AccFeature::NumGangs => {
            let gangs = [4, 8, 16][rng.gen_range(0..3)];
            Elementwise::new(f, lang, p)
                .pragma(format!(
                    "#pragma acc parallel loop num_gangs({gangs}) vector_length(64) copyin({n_clause}) copyout({out_clause})"
                ))
                .build()
        }
        AccFeature::RoutineSeq => {
            let scale = p.scale;
            let shift = p.shift;
            let mut s = String::new();
            s.push_str(&header(f, lang));
            s.push_str(&includes(lang));
            s.push_str(&format!("#define N {}\n\n", p.n));
            s.push_str("#pragma acc routine seq\n");
            s.push_str(&format!(
                "double transform(double value) {{\n    return value * {scale}.0 + {shift}.0;\n}}\n\n"
            ));
            s.push_str("int main() {\n");
            s.push_str(&alloc_array(a, p.heap));
            s.push_str(&alloc_array(b, p.heap));
            s.push_str(&format!(
                "    for (int i = 0; i < N; i++) {{\n        {a}[i] = i * 0.5;\n        {b}[i] = 0.0;\n    }}\n"
            ));
            s.push_str(&format!(
                "#pragma acc parallel loop copyin({n_clause}) copyout({out_clause})\n"
            ));
            s.push_str(&format!(
                "    for (int i = 0; i < N; i++) {{\n        {b}[i] = transform({a}[i]);\n    }}\n"
            ));
            s.push_str(&format!(
                "    int err = 0;\n    for (int i = 0; i < N; i++) {{\n        if ({b}[i] != {a}[i] * {scale}.0 + {shift}.0) {{\n            err = err + 1;\n        }}\n    }}\n"
            ));
            s.push_str(&free_array(a, p.heap));
            s.push_str(&free_array(b, p.heap));
            s.push_str(
                "    if (err != 0) {\n        printf(\"Test failed with %d errors\\n\", err);\n        return 1;\n    }\n",
            );
            s.push_str("    printf(\"Test passed\\n\");\n    return 0;\n}\n");
            s
        }
        AccFeature::DataCopy => Elementwise::new(f, lang, p)
            .region(format!(
                "#pragma acc data copy({n_clause}) copy({out_clause})"
            ))
            .pragma("#pragma acc parallel loop")
            .build(),
    }
}

// ---------------------------------------------------------------------------
// OpenMP emitters
// ---------------------------------------------------------------------------

fn emit_omp(feature: OmpFeature, lang: Lang, p: &Params, rng: &mut impl Rng) -> String {
    let f = Feature::Omp(feature);
    let (a, b, _) = p.names;
    let to_clause = format!("map(to: {a}[0:N])");
    let from_clause = format!("map(from: {b}[0:N])");
    match feature {
        OmpFeature::TargetParallelFor => Elementwise::new(f, lang, p)
            .region(format!("#pragma omp target {to_clause} {from_clause}"))
            .pragma("#pragma omp parallel for")
            .build(),
        OmpFeature::TargetTeamsDistribute => Elementwise::new(f, lang, p)
            .pragma(format!(
                "#pragma omp target teams distribute parallel for {to_clause} {from_clause}"
            ))
            .build(),
        OmpFeature::TargetTeamsReduction => reduction_test(
            f,
            lang,
            p,
            &format!(
                "#pragma omp target teams distribute parallel for reduction(+:sum) map(to: {a}[0:N]) map(tofrom: sum)"
            ),
        ),
        OmpFeature::TargetDataRegion => Elementwise::new(f, lang, p)
            .region(format!("#pragma omp target data {to_clause} {from_clause}"))
            .pragma("#pragma omp target teams distribute parallel for")
            .build(),
        OmpFeature::TargetEnterExitData => Elementwise::new(f, lang, p)
            .pre(format!(
                "#pragma omp target enter data map(to: {a}[0:N]) map(alloc: {b}[0:N])"
            ))
            .pragma("#pragma omp target teams distribute parallel for")
            .post(format!("#pragma omp target update from({b}[0:N])"))
            .post(format!(
                "#pragma omp target exit data map(delete: {a}[0:N]) map(delete: {b}[0:N])"
            ))
            .build(),
        OmpFeature::ParallelFor => Elementwise::new(f, lang, p)
            .pragma("#pragma omp parallel for")
            .build(),
        OmpFeature::ParallelForReduction => reduction_test(
            f,
            lang,
            p,
            "#pragma omp parallel for reduction(+:sum)",
        ),
        OmpFeature::ScheduleStatic => {
            let threads = [2, 4, 8][rng.gen_range(0..3)];
            Elementwise::new(f, lang, p)
                .pragma(format!(
                    "#pragma omp parallel for schedule(static) num_threads({threads})"
                ))
                .build()
        }
        OmpFeature::Simd => Elementwise::new(f, lang, p)
            .pragma("#pragma omp simd")
            .build(),
        OmpFeature::MapTofrom => Elementwise::new(f, lang, p)
            .pragma(format!(
                "#pragma omp target teams distribute parallel for map(to: {a}[0:N]) map(tofrom: {b}[0:N])"
            ))
            .build(),
        OmpFeature::AtomicUpdate => counter_test(
            f,
            lang,
            p,
            "#pragma omp parallel for",
            Some("#pragma omp atomic update"),
        ),
        OmpFeature::Critical => counter_test(
            f,
            lang,
            p,
            "#pragma omp parallel for",
            Some("#pragma omp critical"),
        ),
        OmpFeature::Collapse => collapse_test(
            f,
            lang,
            p,
            &format!(
                "#pragma omp target teams distribute parallel for collapse(2) map(to: {a}[0:M*M]) map(from: {b}[0:M*M])"
            ),
        ),
        OmpFeature::FirstPrivate => {
            let scale = p.scale;
            Elementwise::new(f, lang, p)
                .decl(format!("double factor = {scale}.0;"))
                .pragma("#pragma omp parallel for firstprivate(factor)")
                .body(format!("{b}[i] = {a}[i] * factor + {}.0;", p.shift))
                .build()
        }
        OmpFeature::Master => {
            let mut s = String::new();
            s.push_str(&header(f, lang));
            s.push_str(&includes(lang));
            s.push_str(&format!("#define N {}\n\n", p.n));
            s.push_str("int main() {\n    int flag = 0;\n    int total = 0;\n");
            s.push_str("#pragma omp parallel\n    {\n");
            s.push_str("#pragma omp master\n        {\n            flag = 1;\n        }\n");
            s.push_str("    }\n");
            s.push_str("#pragma omp parallel for reduction(+:total)\n");
            s.push_str("    for (int i = 0; i < N; i++) {\n        total += 1;\n    }\n");
            s.push_str(
                "    if (flag != 1) {\n        printf(\"Test failed: master region not executed\\n\");\n        return 1;\n    }\n",
            );
            s.push_str(
                "    if (total != N) {\n        printf(\"Test failed: total %d\\n\", total);\n        return 1;\n    }\n",
            );
            s.push_str("    printf(\"Test passed\\n\");\n    return 0;\n}\n");
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vv_dclang::DirectiveModel;

    #[test]
    fn every_feature_emits_parsable_source() {
        let mut rng = StdRng::seed_from_u64(11);
        for model in [DirectiveModel::OpenAcc, DirectiveModel::OpenMp] {
            for feature in Feature::all_for(model) {
                for lang in [Lang::C, Lang::Cpp] {
                    let source = emit(feature, lang, &mut rng);
                    let parsed = vv_dclang::parse_source(&source);
                    assert!(
                        parsed.is_ok(),
                        "feature {} ({lang:?}) does not parse:\n{source}\n{:?}",
                        feature.name(),
                        parsed.err()
                    );
                }
            }
        }
    }

    #[test]
    fn emitted_sources_have_verification_logic() {
        let mut rng = StdRng::seed_from_u64(3);
        for feature in Feature::all_for(DirectiveModel::OpenAcc) {
            let source = emit(feature, Lang::C, &mut rng);
            assert!(source.contains("Test passed"), "{}", feature.name());
            assert!(source.contains("return 1;"), "{}", feature.name());
            assert!(source.contains("return 0;"), "{}", feature.name());
        }
    }

    #[test]
    fn params_draw_is_within_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let p = Params::draw(&mut rng);
            assert!(p.n >= 64 && p.n <= 512);
            assert!((2..=5).contains(&p.scale));
            assert!((0..=3).contains(&p.shift));
        }
    }
}
