//! Generator of plain (non-directive) C programs.
//!
//! Negative-probing issue class 3 replaces a V&V test with "randomly
//! generated non-OpenACC & OpenMP code" (paper §III-A). This module provides
//! that replacement corpus: small, self-contained programs that compile and
//! run cleanly but contain no directives at all and no V&V verification
//! structure, so only the judge stage can recognize them as invalid compiler
//! tests.

use rand::Rng;

/// Generate a random non-directive C program.
pub fn generate_non_directive_code(rng: &mut impl Rng) -> String {
    match rng.gen_range(0..5) {
        0 => fibonacci(rng),
        1 => bubble_sort(rng),
        2 => prime_count(rng),
        3 => matrix_trace(rng),
        _ => running_average(rng),
    }
}

fn fibonacci(rng: &mut impl Rng) -> String {
    let count = rng.gen_range(10..25);
    format!(
        "// Print the first terms of the Fibonacci sequence.\n\
         #include <stdio.h>\n\n\
         int main() {{\n    \
             long prev = 0;\n    \
             long curr = 1;\n    \
             for (int i = 0; i < {count}; i++) {{\n        \
                 long next = prev + curr;\n        \
                 printf(\"fib(%d) = %ld\\n\", i, curr);\n        \
                 prev = curr;\n        \
                 curr = next;\n    \
             }}\n    \
             return 0;\n\
         }}\n"
    )
}

fn bubble_sort(rng: &mut impl Rng) -> String {
    let size = rng.gen_range(12..40);
    let seed = rng.gen_range(1..1000);
    format!(
        "// Sort a small array of pseudo-random integers with bubble sort.\n\
         #include <stdio.h>\n\
         #include <stdlib.h>\n\
         #define SIZE {size}\n\n\
         int main() {{\n    \
             int values[SIZE];\n    \
             srand({seed});\n    \
             for (int i = 0; i < SIZE; i++) {{\n        \
                 values[i] = rand() % 100;\n    \
             }}\n    \
             for (int i = 0; i < SIZE; i++) {{\n        \
                 for (int j = 0; j < SIZE - i - 1; j++) {{\n            \
                     if (values[j] > values[j + 1]) {{\n                \
                         int tmp = values[j];\n                \
                         values[j] = values[j + 1];\n                \
                         values[j + 1] = tmp;\n            \
                     }}\n        \
                 }}\n    \
             }}\n    \
             printf(\"smallest=%d largest=%d\\n\", values[0], values[SIZE - 1]);\n    \
             return 0;\n\
         }}\n"
    )
}

fn prime_count(rng: &mut impl Rng) -> String {
    let limit = rng.gen_range(50..200);
    format!(
        "// Count prime numbers below a limit with trial division.\n\
         #include <stdio.h>\n\n\
         int is_prime(int value) {{\n    \
             if (value < 2) {{\n        return 0;\n    }}\n    \
             for (int d = 2; d * d <= value; d++) {{\n        \
                 if (value % d == 0) {{\n            return 0;\n        }}\n    \
             }}\n    \
             return 1;\n\
         }}\n\n\
         int main() {{\n    \
             int count = 0;\n    \
             for (int i = 2; i < {limit}; i++) {{\n        \
                 count += is_prime(i);\n    \
             }}\n    \
             printf(\"primes below {limit}: %d\\n\", count);\n    \
             return 0;\n\
         }}\n"
    )
}

fn matrix_trace(rng: &mut impl Rng) -> String {
    let dim = rng.gen_range(4..12);
    format!(
        "// Compute the trace of a small matrix.\n\
         #include <stdio.h>\n\
         #include <stdlib.h>\n\
         #define DIM {dim}\n\n\
         int main() {{\n    \
             double *matrix = (double *)malloc(DIM * DIM * sizeof(double));\n    \
             for (int i = 0; i < DIM; i++) {{\n        \
                 for (int j = 0; j < DIM; j++) {{\n            \
                     matrix[i * DIM + j] = i * 1.0 + j * 2.0;\n        \
                 }}\n    \
             }}\n    \
             double trace = 0.0;\n    \
             for (int i = 0; i < DIM; i++) {{\n        \
                 trace = trace + matrix[i * DIM + i];\n    \
             }}\n    \
             printf(\"trace = %f\\n\", trace);\n    \
             free(matrix);\n    \
             return 0;\n\
         }}\n"
    )
}

fn running_average(rng: &mut impl Rng) -> String {
    let size = rng.gen_range(16..64);
    format!(
        "// Maintain a running average of a synthetic signal.\n\
         #include <stdio.h>\n\
         #define SAMPLES {size}\n\n\
         int main() {{\n    \
             double total = 0.0;\n    \
             for (int i = 0; i < SAMPLES; i++) {{\n        \
                 double sample = i * 0.25;\n        \
                 total = total + sample;\n        \
                 if (i == SAMPLES - 1) {{\n            \
                     printf(\"mean = %f\\n\", total / SAMPLES);\n        \
                 }}\n    \
             }}\n    \
             return 0;\n\
         }}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_code_has_no_directives() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..25 {
            let code = generate_non_directive_code(&mut rng);
            assert!(!code.contains("#pragma"));
            assert!(!code.contains("acc_"));
            assert!(!code.contains("omp_"));
        }
    }

    #[test]
    fn generated_code_parses() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..25 {
            let code = generate_non_directive_code(&mut rng);
            assert!(vv_dclang::parse_source(&code).is_ok(), "{code}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_non_directive_code(&mut StdRng::seed_from_u64(9));
        let b = generate_non_directive_code(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
