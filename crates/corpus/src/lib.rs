//! `vv-corpus` — a deterministic, **streaming** generator of directive-based
//! compiler validation tests.
//!
//! The paper draws its experimental population from the OpenACC V&V and
//! OpenMP V&V testsuites (hand-written C/C++/Fortran tests, one feature per
//! file, each structured as *initialize → compute with directives → verify
//! against a serial reference → exit 0/1*). Those suites are external
//! projects; this crate substitutes a generator that emits the same *kind*
//! of file:
//!
//! * one focused feature per test (parallel loops, reductions, data regions,
//!   unstructured data movement, atomics, collapse, privatization, ...);
//! * the canonical V&V shape: allocate, initialize, offload, verify, return
//!   a nonzero exit code on mismatch;
//! * realistic surface diversity (heap vs stack arrays, different variable
//!   naming schemes, array sizes, scaling constants, C vs C++ flavor,
//!   header comments) driven entirely by seedable RNGs, so suites are
//!   reproducible.
//!
//! Every generated test is *valid by construction*: it compiles under the
//! simulated vendor compiler and passes its own verification when executed
//! (`tests/` assert this invariant). Negative probing (`vv-probing`) then
//! damages copies of these files.
//!
//! # The source / combinator model
//!
//! Generation is organized around the [`CaseSource`] trait (module
//! [`source`]): a pull-based stream of [`GeneratedCase`]s that a consumer
//! drains one case at a time, so corpora of any size flow through in
//! constant memory. Built-in sources — [`TemplateSource`] (the V&V template
//! emitters), [`RandomCodeSource`] (plain non-directive programs, the
//! paper's issue-3 replacement corpus), [`source::CasesSource`] (replay a
//! materialized suite) — compose through iterator-style adapters:
//!
//! * [`CaseSource::take`] bounds an unbounded generator,
//! * [`CaseSource::filter_features`] restricts the feature set,
//! * [`CaseSource::interleave`] merges two streams,
//! * [`CaseSource::shard`]`(k, n)` selects a reproducible 1/n slice,
//! * [`CaseSource::inspect`] taps metadata off the stream,
//! * `probe(ProbeConfig)` (in `vv-probing`) injects negative-probing
//!   mutations.
//!
//! Every built-in source derives the RNG of case *i* from the stream seed
//! and *i* alone ([`source::split_seed`]), so shard *k* of *n* is
//! reproducible without generating the other shards, and the union of all
//! shards is byte-identical to the unsharded stream for any shard count.
//!
//! ```
//! use vv_corpus::{CaseSource, TemplateSource};
//! use vv_dclang::DirectiveModel;
//!
//! let mut total = 0usize;
//! for case in TemplateSource::new(DirectiveModel::OpenAcc, 42)
//!     .take(10)
//!     .into_cases()
//! {
//!     assert!(case.source.contains("#pragma acc"));
//!     total += 1;
//! }
//! assert_eq!(total, 10);
//! ```
//!
//! (The deprecated batch collector `generate_suite`, a thin wrapper over
//! [`TemplateSource`], was removed in 0.4.0 after its one-release grace
//! period; collect from the source directly.)

pub mod features;
pub mod random_code;
pub mod source;
pub mod templates;

pub use features::{AccFeature, Feature, OmpFeature};
pub use random_code::generate_non_directive_code;
pub use source::{CaseSource, GeneratedCase, RandomCodeSource, TemplateSource, NO_ISSUE_ID};

use vv_dclang::DirectiveModel;
use vv_simcompiler::Lang;

/// A single generated compiler-validation test.
#[derive(Clone, Debug, PartialEq)]
pub struct TestCase {
    /// Stable identifier, e.g. `acc_parallel_loop_reduction_0007`.
    pub id: String,
    /// The programming model the test targets.
    pub model: DirectiveModel,
    /// Source language flavor.
    pub lang: Lang,
    /// The feature under test.
    pub feature: Feature,
    /// Full source text.
    pub source: String,
}

/// A generated testsuite for one programming model.
#[derive(Clone, Debug)]
pub struct TestSuite {
    /// The programming model shared by all cases.
    pub model: DirectiveModel,
    /// The generated cases.
    pub cases: Vec<TestCase>,
}

impl TestSuite {
    /// Number of cases in the suite.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// True if the suite has no cases.
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }

    /// Count of cases per feature, sorted by feature name.
    ///
    /// Every feature of [`Feature::all_for`]`(self.model)` is present —
    /// zero-count features included — so metrics tables built from the
    /// histogram have a stable row set across seeds and suite sizes.
    pub fn feature_histogram(&self) -> Vec<(Feature, usize)> {
        let mut counts: Vec<(Feature, usize)> = Feature::all_for(self.model)
            .into_iter()
            .map(|f| (f, 0))
            .collect();
        for case in &self.cases {
            match counts.iter_mut().find(|(f, _)| *f == case.feature) {
                Some((_, n)) => *n += 1,
                // Defensive: `cases` is a public field, so a foreign-model
                // case still gets a row rather than being dropped.
                None => counts.push((case.feature, 1)),
            }
        }
        counts.sort_by_key(|(f, _)| f.name());
        counts
    }
}

/// Configuration for suite generation.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// The programming model to generate tests for.
    pub model: DirectiveModel,
    /// Number of test files.
    pub size: usize,
    /// RNG seed; the same seed always produces the same suite.
    pub seed: u64,
    /// Language flavors to draw from (the paper's Part Two uses C and C++).
    pub langs: Vec<Lang>,
    /// Restrict generation to these features (all features when empty).
    pub features: Vec<Feature>,
}

impl SuiteConfig {
    /// A suite configuration mirroring the paper's defaults for a model.
    pub fn new(model: DirectiveModel, size: usize, seed: u64) -> Self {
        Self {
            model,
            size,
            seed,
            langs: vec![Lang::C, Lang::Cpp],
            features: Vec::new(),
        }
    }

    /// Restrict to C files only (the paper's Part One OpenMP suite).
    pub fn c_only(mut self) -> Self {
        self.langs = vec![Lang::C];
        self
    }
}

pub(crate) fn model_prefix(model: DirectiveModel) -> &'static str {
    match model {
        DirectiveModel::OpenAcc => "acc",
        DirectiveModel::OpenMp => "omp",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collect a suite from the streaming source (what the removed
    /// `generate_suite` collector used to wrap).
    fn collect_suite(config: &SuiteConfig) -> TestSuite {
        TestSuite {
            model: config.model,
            cases: TemplateSource::from_config(config)
                .take(config.size)
                .into_cases()
                .map(|generated| generated.case)
                .collect(),
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let config = SuiteConfig::new(DirectiveModel::OpenAcc, 20, 42);
        let a = collect_suite(&config);
        let b = collect_suite(&config);
        assert_eq!(a.len(), 20);
        for (x, y) in a.cases.iter().zip(b.cases.iter()) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.id, y.id);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = collect_suite(&SuiteConfig::new(DirectiveModel::OpenMp, 10, 1));
        let b = collect_suite(&SuiteConfig::new(DirectiveModel::OpenMp, 10, 2));
        assert!(a
            .cases
            .iter()
            .zip(b.cases.iter())
            .any(|(x, y)| x.source != y.source));
    }

    #[test]
    fn all_features_are_covered_in_a_large_suite() {
        let suite = collect_suite(&SuiteConfig::new(DirectiveModel::OpenAcc, 64, 7));
        let histogram = suite.feature_histogram();
        assert_eq!(
            histogram.len(),
            Feature::all_for(DirectiveModel::OpenAcc).len()
        );
        assert!(histogram.iter().all(|(_, count)| *count > 0));
    }

    #[test]
    fn feature_histogram_has_stable_rows_even_for_tiny_suites() {
        // A suite smaller than the feature catalog must still report every
        // feature, with explicit zero counts, in the same order.
        let suite = collect_suite(&SuiteConfig::new(DirectiveModel::OpenMp, 3, 5));
        let histogram = suite.feature_histogram();
        let all = Feature::all_for(DirectiveModel::OpenMp);
        assert_eq!(histogram.len(), all.len());
        let total: usize = histogram.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 3);
        assert!(histogram.iter().any(|(_, count)| *count == 0));
        let empty = TestSuite {
            model: DirectiveModel::OpenMp,
            cases: Vec::new(),
        };
        let rows: Vec<&str> = empty
            .feature_histogram()
            .iter()
            .map(|(f, _)| f.name())
            .collect();
        let full_rows: Vec<&str> = histogram.iter().map(|(f, _)| f.name()).collect();
        assert_eq!(rows, full_rows, "row set must not depend on the cases");
    }

    #[test]
    fn c_only_restriction_is_respected() {
        let suite = collect_suite(&SuiteConfig::new(DirectiveModel::OpenMp, 30, 3).c_only());
        assert!(suite.cases.iter().all(|c| c.lang == Lang::C));
    }

    #[test]
    fn sources_mention_their_model() {
        let acc = collect_suite(&SuiteConfig::new(DirectiveModel::OpenAcc, 16, 9));
        assert!(acc.cases.iter().all(|c| c.source.contains("#pragma acc")));
        let omp = collect_suite(&SuiteConfig::new(DirectiveModel::OpenMp, 16, 9));
        assert!(omp.cases.iter().all(|c| c.source.contains("#pragma omp")));
    }
}
