//! `vv-corpus` — a deterministic generator of directive-based compiler
//! validation tests.
//!
//! The paper draws its experimental population from the OpenACC V&V and
//! OpenMP V&V testsuites (hand-written C/C++/Fortran tests, one feature per
//! file, each structured as *initialize → compute with directives → verify
//! against a serial reference → exit 0/1*). Those suites are external
//! projects; this crate substitutes a generator that emits the same *kind*
//! of file:
//!
//! * one focused feature per test (parallel loops, reductions, data regions,
//!   unstructured data movement, atomics, collapse, privatization, ...);
//! * the canonical V&V shape: allocate, initialize, offload, verify, return
//!   a nonzero exit code on mismatch;
//! * realistic surface diversity (heap vs stack arrays, different variable
//!   naming schemes, array sizes, scaling constants, C vs C++ flavor,
//!   header comments) driven entirely by a seedable RNG, so suites are
//!   reproducible.
//!
//! Every generated test is *valid by construction*: it compiles under the
//! simulated vendor compiler and passes its own verification when executed
//! (`tests/` assert this invariant). Negative probing (`vv-probing`) then
//! damages copies of these files.

pub mod features;
pub mod random_code;
pub mod templates;

pub use features::{AccFeature, Feature, OmpFeature};
pub use random_code::generate_non_directive_code;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vv_dclang::DirectiveModel;
use vv_simcompiler::Lang;

/// A single generated compiler-validation test.
#[derive(Clone, Debug)]
pub struct TestCase {
    /// Stable identifier, e.g. `acc_parallel_loop_reduction_0007`.
    pub id: String,
    /// The programming model the test targets.
    pub model: DirectiveModel,
    /// Source language flavor.
    pub lang: Lang,
    /// The feature under test.
    pub feature: Feature,
    /// Full source text.
    pub source: String,
}

/// A generated testsuite for one programming model.
#[derive(Clone, Debug)]
pub struct TestSuite {
    /// The programming model shared by all cases.
    pub model: DirectiveModel,
    /// The generated cases.
    pub cases: Vec<TestCase>,
}

impl TestSuite {
    /// Number of cases in the suite.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// True if the suite has no cases.
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }

    /// Count of cases per feature (sorted by feature name).
    pub fn feature_histogram(&self) -> Vec<(Feature, usize)> {
        let mut counts: Vec<(Feature, usize)> = Vec::new();
        for case in &self.cases {
            match counts.iter_mut().find(|(f, _)| *f == case.feature) {
                Some((_, n)) => *n += 1,
                None => counts.push((case.feature, 1)),
            }
        }
        counts.sort_by_key(|(f, _)| f.name());
        counts
    }
}

/// Configuration for suite generation.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// The programming model to generate tests for.
    pub model: DirectiveModel,
    /// Number of test files.
    pub size: usize,
    /// RNG seed; the same seed always produces the same suite.
    pub seed: u64,
    /// Language flavors to draw from (the paper's Part Two uses C and C++).
    pub langs: Vec<Lang>,
    /// Restrict generation to these features (all features when empty).
    pub features: Vec<Feature>,
}

impl SuiteConfig {
    /// A suite configuration mirroring the paper's defaults for a model.
    pub fn new(model: DirectiveModel, size: usize, seed: u64) -> Self {
        Self {
            model,
            size,
            seed,
            langs: vec![Lang::C, Lang::Cpp],
            features: Vec::new(),
        }
    }

    /// Restrict to C files only (the paper's Part One OpenMP suite).
    pub fn c_only(mut self) -> Self {
        self.langs = vec![Lang::C];
        self
    }
}

/// Generate a testsuite.
pub fn generate_suite(config: &SuiteConfig) -> TestSuite {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x56_56_43_4F_52_50_55_53);
    let features: Vec<Feature> = if config.features.is_empty() {
        Feature::all_for(config.model)
    } else {
        config.features.clone()
    };
    assert!(
        !features.is_empty(),
        "no features available for {:?}",
        config.model
    );

    let mut cases = Vec::with_capacity(config.size);
    for index in 0..config.size {
        // Round-robin over features for coverage, with RNG-driven parameters
        // for diversity.
        let feature = features[index % features.len()];
        let lang = if config.langs.len() == 1 {
            config.langs[0]
        } else {
            config.langs[rng.gen_range(0..config.langs.len())]
        };
        let source = templates::emit(feature, lang, &mut rng);
        let id = format!(
            "{}_{}_{index:04}",
            model_prefix(config.model),
            feature.name()
        );
        cases.push(TestCase {
            id,
            model: config.model,
            lang,
            feature,
            source,
        });
    }
    TestSuite {
        model: config.model,
        cases,
    }
}

fn model_prefix(model: DirectiveModel) -> &'static str {
    match model {
        DirectiveModel::OpenAcc => "acc",
        DirectiveModel::OpenMp => "omp",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = SuiteConfig::new(DirectiveModel::OpenAcc, 20, 42);
        let a = generate_suite(&config);
        let b = generate_suite(&config);
        assert_eq!(a.len(), 20);
        for (x, y) in a.cases.iter().zip(b.cases.iter()) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.id, y.id);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_suite(&SuiteConfig::new(DirectiveModel::OpenMp, 10, 1));
        let b = generate_suite(&SuiteConfig::new(DirectiveModel::OpenMp, 10, 2));
        assert!(a
            .cases
            .iter()
            .zip(b.cases.iter())
            .any(|(x, y)| x.source != y.source));
    }

    #[test]
    fn all_features_are_covered_in_a_large_suite() {
        let suite = generate_suite(&SuiteConfig::new(DirectiveModel::OpenAcc, 64, 7));
        let histogram = suite.feature_histogram();
        assert_eq!(
            histogram.len(),
            Feature::all_for(DirectiveModel::OpenAcc).len()
        );
    }

    #[test]
    fn c_only_restriction_is_respected() {
        let suite = generate_suite(&SuiteConfig::new(DirectiveModel::OpenMp, 30, 3).c_only());
        assert!(suite.cases.iter().all(|c| c.lang == Lang::C));
    }

    #[test]
    fn sources_mention_their_model() {
        let acc = generate_suite(&SuiteConfig::new(DirectiveModel::OpenAcc, 16, 9));
        assert!(acc.cases.iter().all(|c| c.source.contains("#pragma acc")));
        let omp = generate_suite(&SuiteConfig::new(DirectiveModel::OpenMp, 16, 9));
        assert!(omp.cases.iter().all(|c| c.source.contains("#pragma omp")));
    }
}
