//! Feature catalog for the synthetic testsuites.
//!
//! Each feature corresponds to one family of tests in the real OpenACC /
//! OpenMP V&V suites (one directive or clause exercised per file).

use vv_dclang::DirectiveModel;

/// OpenACC features covered by the generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccFeature {
    /// `#pragma acc parallel loop` element-wise computation.
    ParallelLoop,
    /// `parallel loop` with a `reduction(+:...)` clause.
    ParallelLoopReduction,
    /// `#pragma acc kernels loop`.
    KernelsLoop,
    /// `#pragma acc serial loop`.
    SerialLoop,
    /// Structured `#pragma acc data` region with copyin/copyout.
    DataRegion,
    /// Unstructured data movement: enter data / update self / exit data.
    EnterExitData,
    /// `gang`/`vector` scheduling clauses.
    GangVector,
    /// `collapse(2)` on nested loops.
    Collapse,
    /// `private` clause on a scratch variable.
    Private,
    /// `firstprivate` clause on a scaling constant.
    FirstPrivate,
    /// `#pragma acc atomic update` counter.
    AtomicUpdate,
    /// `if` clause controlling offload.
    IfClause,
    /// `num_gangs`/`vector_length` tuning clauses.
    NumGangs,
    /// `#pragma acc routine seq` device function.
    RoutineSeq,
    /// `copy` clause (both directions) on a data region.
    DataCopy,
}

/// OpenMP (4.5) features covered by the generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OmpFeature {
    /// `#pragma omp target` + `parallel for` with explicit maps.
    TargetParallelFor,
    /// Combined `target teams distribute parallel for`.
    TargetTeamsDistribute,
    /// Combined construct with a reduction clause.
    TargetTeamsReduction,
    /// Structured `target data` region.
    TargetDataRegion,
    /// Unstructured `target enter data` / `target update` / `target exit data`.
    TargetEnterExitData,
    /// Host `parallel for`.
    ParallelFor,
    /// Host `parallel for` with reduction.
    ParallelForReduction,
    /// `schedule(static)` / `num_threads` clauses.
    ScheduleStatic,
    /// `#pragma omp simd` vectorized loop.
    Simd,
    /// `map(tofrom:)` on a single array.
    MapTofrom,
    /// `#pragma omp atomic update` counter.
    AtomicUpdate,
    /// `#pragma omp critical` section.
    Critical,
    /// `collapse(2)` on nested loops.
    Collapse,
    /// `firstprivate` clause.
    FirstPrivate,
    /// `#pragma omp master` region.
    Master,
}

/// A feature from either model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Feature {
    /// An OpenACC feature.
    Acc(AccFeature),
    /// An OpenMP feature.
    Omp(OmpFeature),
}

impl Feature {
    /// All features available for a model, in a stable order.
    pub fn all_for(model: DirectiveModel) -> Vec<Feature> {
        match model {
            DirectiveModel::OpenAcc => ACC_FEATURES.iter().copied().map(Feature::Acc).collect(),
            DirectiveModel::OpenMp => OMP_FEATURES.iter().copied().map(Feature::Omp).collect(),
        }
    }

    /// The model this feature belongs to.
    pub fn model(&self) -> DirectiveModel {
        match self {
            Feature::Acc(_) => DirectiveModel::OpenAcc,
            Feature::Omp(_) => DirectiveModel::OpenMp,
        }
    }

    /// Snake-case feature name used in test ids and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Feature::Acc(f) => match f {
                AccFeature::ParallelLoop => "parallel_loop",
                AccFeature::ParallelLoopReduction => "parallel_loop_reduction",
                AccFeature::KernelsLoop => "kernels_loop",
                AccFeature::SerialLoop => "serial_loop",
                AccFeature::DataRegion => "data_region",
                AccFeature::EnterExitData => "enter_exit_data",
                AccFeature::GangVector => "gang_vector",
                AccFeature::Collapse => "collapse",
                AccFeature::Private => "private",
                AccFeature::FirstPrivate => "firstprivate",
                AccFeature::AtomicUpdate => "atomic_update",
                AccFeature::IfClause => "if_clause",
                AccFeature::NumGangs => "num_gangs",
                AccFeature::RoutineSeq => "routine_seq",
                AccFeature::DataCopy => "data_copy",
            },
            Feature::Omp(f) => match f {
                OmpFeature::TargetParallelFor => "target_parallel_for",
                OmpFeature::TargetTeamsDistribute => "target_teams_distribute",
                OmpFeature::TargetTeamsReduction => "target_teams_reduction",
                OmpFeature::TargetDataRegion => "target_data_region",
                OmpFeature::TargetEnterExitData => "target_enter_exit_data",
                OmpFeature::ParallelFor => "parallel_for",
                OmpFeature::ParallelForReduction => "parallel_for_reduction",
                OmpFeature::ScheduleStatic => "schedule_static",
                OmpFeature::Simd => "simd",
                OmpFeature::MapTofrom => "map_tofrom",
                OmpFeature::AtomicUpdate => "atomic_update",
                OmpFeature::Critical => "critical",
                OmpFeature::Collapse => "collapse",
                OmpFeature::FirstPrivate => "firstprivate",
                OmpFeature::Master => "master",
            },
        }
    }

    /// A human-readable description of the directive under test, used in the
    /// header comment of generated files.
    pub fn description(&self) -> String {
        match self {
            Feature::Acc(f) => format!("OpenACC {}", acc_directive_text(*f)),
            Feature::Omp(f) => format!("OpenMP {}", omp_directive_text(*f)),
        }
    }
}

const ACC_FEATURES: &[AccFeature] = &[
    AccFeature::ParallelLoop,
    AccFeature::ParallelLoopReduction,
    AccFeature::KernelsLoop,
    AccFeature::SerialLoop,
    AccFeature::DataRegion,
    AccFeature::EnterExitData,
    AccFeature::GangVector,
    AccFeature::Collapse,
    AccFeature::Private,
    AccFeature::FirstPrivate,
    AccFeature::AtomicUpdate,
    AccFeature::IfClause,
    AccFeature::NumGangs,
    AccFeature::RoutineSeq,
    AccFeature::DataCopy,
];

const OMP_FEATURES: &[OmpFeature] = &[
    OmpFeature::TargetParallelFor,
    OmpFeature::TargetTeamsDistribute,
    OmpFeature::TargetTeamsReduction,
    OmpFeature::TargetDataRegion,
    OmpFeature::TargetEnterExitData,
    OmpFeature::ParallelFor,
    OmpFeature::ParallelForReduction,
    OmpFeature::ScheduleStatic,
    OmpFeature::Simd,
    OmpFeature::MapTofrom,
    OmpFeature::AtomicUpdate,
    OmpFeature::Critical,
    OmpFeature::Collapse,
    OmpFeature::FirstPrivate,
    OmpFeature::Master,
];

fn acc_directive_text(feature: AccFeature) -> &'static str {
    match feature {
        AccFeature::ParallelLoop => "parallel loop construct",
        AccFeature::ParallelLoopReduction => "parallel loop reduction clause",
        AccFeature::KernelsLoop => "kernels loop construct",
        AccFeature::SerialLoop => "serial loop construct",
        AccFeature::DataRegion => "structured data construct",
        AccFeature::EnterExitData => "enter data and exit data directives",
        AccFeature::GangVector => "gang and vector clauses",
        AccFeature::Collapse => "collapse clause",
        AccFeature::Private => "private clause",
        AccFeature::FirstPrivate => "firstprivate clause",
        AccFeature::AtomicUpdate => "atomic update directive",
        AccFeature::IfClause => "if clause",
        AccFeature::NumGangs => "num_gangs and vector_length clauses",
        AccFeature::RoutineSeq => "routine directive",
        AccFeature::DataCopy => "copy data clause",
    }
}

fn omp_directive_text(feature: OmpFeature) -> &'static str {
    match feature {
        OmpFeature::TargetParallelFor => "target construct with parallel for",
        OmpFeature::TargetTeamsDistribute => "target teams distribute parallel for construct",
        OmpFeature::TargetTeamsReduction => "target teams reduction clause",
        OmpFeature::TargetDataRegion => "target data construct",
        OmpFeature::TargetEnterExitData => "target enter data and target exit data directives",
        OmpFeature::ParallelFor => "parallel for construct",
        OmpFeature::ParallelForReduction => "parallel for reduction clause",
        OmpFeature::ScheduleStatic => "schedule clause",
        OmpFeature::Simd => "simd construct",
        OmpFeature::MapTofrom => "map tofrom clause",
        OmpFeature::AtomicUpdate => "atomic update directive",
        OmpFeature::Critical => "critical construct",
        OmpFeature::Collapse => "collapse clause",
        OmpFeature::FirstPrivate => "firstprivate clause",
        OmpFeature::Master => "master construct",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_catalogs_are_nonempty_and_model_consistent() {
        for model in [DirectiveModel::OpenAcc, DirectiveModel::OpenMp] {
            let features = Feature::all_for(model);
            assert!(features.len() >= 10);
            assert!(features.iter().all(|f| f.model() == model));
        }
    }

    #[test]
    fn names_are_unique_per_model() {
        for model in [DirectiveModel::OpenAcc, DirectiveModel::OpenMp] {
            let names: Vec<_> = Feature::all_for(model).iter().map(|f| f.name()).collect();
            let mut deduped = names.clone();
            deduped.sort();
            deduped.dedup();
            assert_eq!(names.len(), deduped.len());
        }
    }

    #[test]
    fn descriptions_mention_the_model() {
        assert!(Feature::Acc(AccFeature::DataRegion)
            .description()
            .contains("OpenACC"));
        assert!(Feature::Omp(OmpFeature::Simd)
            .description()
            .contains("OpenMP"));
    }
}
