//! Streaming, composable case sources.
//!
//! [`CaseSource`] is the corpus layer's pull-based streaming abstraction:
//! a source yields one [`GeneratedCase`] at a time, so a suite of any size
//! can flow into a consumer (such as the validation service's
//! `submit_source`) in constant memory. Sources compose like iterators —
//! [`CaseSource::take`], [`CaseSource::filter_features`],
//! [`CaseSource::interleave`], [`CaseSource::shard`] — and `vv-probing`
//! contributes a `probe` adapter that injects the paper's negative-probing
//! mutations into the stream.
//!
//! # Split-seed derivation
//!
//! Every built-in source derives the RNG for case *i* directly from
//! `(seed, i)` via [`split_seed`] instead of threading one generator through
//! the whole stream. Consequences:
//!
//! * case *i* is a pure function of the seed and its index — it never
//!   depends on how many cases were drawn before it;
//! * [`CaseSource::skip_cases`] is O(1) for the built-in sources (the index
//!   just jumps), so [`CaseSource::shard`]`(k, n)` can produce shard *k*
//!   without generating the other shards' cases;
//! * the union of `shard(0, n) .. shard(n-1, n)` is byte-identical to the
//!   unsharded stream for **any** shard count `n`, which makes distributed
//!   runs reproducible and recombinable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vv_dclang::DirectiveModel;
use vv_simcompiler::Lang;

use crate::features::Feature;
use crate::{model_prefix, random_code, templates, SuiteConfig, TestCase, TestSuite};

/// The paper's "no issue" id (issue 5): probed but left unchanged.
pub const NO_ISSUE_ID: u8 = 5;

/// Domain-separation constant for [`TemplateSource`] streams.
const TEMPLATE_STREAM: u64 = 0x5656_434F_5250_5553;
/// Domain-separation constant for [`RandomCodeSource`] streams.
const RANDOM_CODE_STREAM: u64 = 0x4E4F_4E44_4952_4543;

/// Derive an independent RNG seed for case `index` of a stream.
///
/// This is the split-seed derivation behind every built-in source: a
/// SplitMix64-style finalizer over the stream seed and the case index, so
/// per-case generators are statistically independent while each case remains
/// reproducible from `(seed, index)` alone.
pub fn split_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One case produced by a [`CaseSource`]: the generated test plus its
/// negative-probing provenance.
///
/// Unprobed cases carry `issue_id: None` and `source == case.source`; a
/// probing adapter rewrites `source`, sets `issue_id` to the paper's issue
/// id (0–5) and records what changed in `note`.
#[derive(Clone, Debug, PartialEq)]
pub struct GeneratedCase {
    /// The original, valid-by-construction test case.
    pub case: TestCase,
    /// The source text to validate (equals `case.source` unless mutated).
    pub source: String,
    /// Negative-probing issue id (paper §III-A): `None` when the case was
    /// never probed, `Some(0..=4)` for the five mutation classes,
    /// `Some(`[`NO_ISSUE_ID`]`)` for probed-but-unchanged files.
    pub issue_id: Option<u8>,
    /// Provenance note (which mutation was applied, or "generated").
    pub note: String,
}

impl GeneratedCase {
    /// Wrap a pristine test case (no probing applied).
    pub fn from_case(case: TestCase) -> Self {
        Self {
            source: case.source.clone(),
            case,
            issue_id: None,
            note: "generated".to_string(),
        }
    }

    /// The case's stable identifier.
    pub fn id(&self) -> &str {
        &self.case.id
    }

    /// The feature the case nominally exercises.
    pub fn feature(&self) -> Feature {
        self.case.feature
    }

    /// Ground truth per the paper's system-of-verification: a case is valid
    /// unless one of the five mutation classes (issue ids 0–4) was applied.
    pub fn ground_truth_valid(&self) -> bool {
        matches!(self.issue_id, None | Some(NO_ISSUE_ID))
    }

    /// True if a probing adapter has processed this case (issue 5 included).
    pub fn is_probed(&self) -> bool {
        self.issue_id.is_some()
    }
}

/// A pull-based, lazily evaluated stream of [`GeneratedCase`]s.
///
/// The trait is object safe: `Box<dyn CaseSource + Send>` is a first-class
/// source (see [`CaseSource::boxed`]), which is how heterogeneous pipelines
/// like `CorpusSpec` compose stages at runtime.
pub trait CaseSource {
    /// Produce the next case, or `None` when the stream is exhausted.
    fn next_case(&mut self) -> Option<GeneratedCase>;

    /// Bounds on the number of remaining cases, `(lower, upper)`, mirroring
    /// `Iterator::size_hint`. Unbounded generators report
    /// `(usize::MAX, None)`.
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }

    /// A human-readable description of the source and its composition, for
    /// logs and reports.
    fn describe(&self) -> String {
        "case source".to_string()
    }

    /// Advance the stream past `count` cases without producing them, and
    /// return how many were actually skipped (less than `count` only at the
    /// end of a bounded stream).
    ///
    /// The default implementation pulls and drops; index-addressed sources
    /// override it with an O(1) jump, which is what makes
    /// [`CaseSource::shard`] cheap.
    fn skip_cases(&mut self, count: usize) -> usize {
        let mut skipped = 0;
        while skipped < count {
            if self.next_case().is_none() {
                break;
            }
            skipped += 1;
        }
        skipped
    }

    /// Keep only the first `count` cases.
    fn take(self, count: usize) -> Take<Self>
    where
        Self: Sized,
    {
        Take {
            inner: self,
            remaining: count,
        }
    }

    /// Keep only cases whose feature is in `features`. An empty list keeps
    /// everything, matching the empty-means-all convention of
    /// [`TemplateSource::features`] and the `CorpusSpec` builder.
    ///
    /// Like any lazy filter, a feature set that can never match (e.g.
    /// OpenMP features over an OpenACC stream) makes `next_case` pull from
    /// an unbounded source forever — bound the source first if the filter
    /// might be empty of matches.
    fn filter_features(self, features: Vec<Feature>) -> FilterFeatures<Self>
    where
        Self: Sized,
    {
        FilterFeatures {
            inner: self,
            features,
        }
    }

    /// Alternate cases from `self` and `other`; once one side is exhausted,
    /// the rest of the other side is streamed through.
    fn interleave<B>(self, other: B) -> Interleave<Self, B>
    where
        Self: Sized,
        B: CaseSource,
    {
        Interleave {
            a: self,
            b: other,
            from_a: true,
        }
    }

    /// Select shard `k` of `n`: cases `k, k + n, k + 2n, ...` of this
    /// stream.
    ///
    /// With the split-seed derivation of the built-in sources, producing one
    /// shard never generates another shard's cases, and the round-robin
    /// union of all `n` shards is byte-identical to the unsharded stream —
    /// for every `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k >= n`.
    fn shard(self, k: usize, n: usize) -> Shard<Self>
    where
        Self: Sized,
    {
        assert!(n > 0, "shard(k, n) requires n >= 1");
        assert!(k < n, "shard(k, n) requires k < n (got k={k}, n={n})");
        Shard {
            inner: self,
            k,
            n,
            started: false,
        }
    }

    /// Observe every produced case (cases advanced over by `skip_cases` are
    /// *not* observed). Useful for capturing ground-truth metadata while the
    /// stream flows into a consumer that only sees work items.
    fn inspect<F>(self, f: F) -> Inspect<Self, F>
    where
        Self: Sized,
        F: FnMut(&GeneratedCase),
    {
        Inspect { inner: self, f }
    }

    /// Bridge into a standard [`Iterator`] over [`GeneratedCase`]s.
    fn into_cases(self) -> IntoCases<Self>
    where
        Self: Sized,
    {
        IntoCases { source: self }
    }

    /// Erase the concrete type for runtime composition.
    fn boxed(self) -> Box<dyn CaseSource + Send>
    where
        Self: Sized + Send + 'static,
    {
        Box::new(self)
    }
}

impl<S: CaseSource + ?Sized> CaseSource for Box<S> {
    fn next_case(&mut self) -> Option<GeneratedCase> {
        (**self).next_case()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (**self).size_hint()
    }

    fn describe(&self) -> String {
        (**self).describe()
    }

    fn skip_cases(&mut self, count: usize) -> usize {
        (**self).skip_cases(count)
    }
}

impl<S: CaseSource + ?Sized> CaseSource for &mut S {
    fn next_case(&mut self) -> Option<GeneratedCase> {
        (**self).next_case()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (**self).size_hint()
    }

    fn describe(&self) -> String {
        (**self).describe()
    }

    fn skip_cases(&mut self, count: usize) -> usize {
        (**self).skip_cases(count)
    }
}

// ---------------------------------------------------------------------------
// built-in sources
// ---------------------------------------------------------------------------

/// The lazy template generator: an **unbounded** stream of valid V&V tests
/// for one programming model (use [`CaseSource::take`] to bound it).
///
/// Case *i* uses feature `features[i % features.len()]` (round-robin
/// coverage, as `generate_suite` always did) and draws its language flavor
/// and surface parameters from a per-index split seed, so any case can be
/// produced — or skipped over — without generating its predecessors.
#[derive(Clone, Debug)]
pub struct TemplateSource {
    model: DirectiveModel,
    seed: u64,
    langs: Vec<Lang>,
    features: Vec<Feature>,
    index: u64,
}

impl TemplateSource {
    /// A source over all features of `model`, in C and C++ flavors.
    pub fn new(model: DirectiveModel, seed: u64) -> Self {
        Self {
            model,
            seed,
            langs: vec![Lang::C, Lang::Cpp],
            features: Feature::all_for(model),
            index: 0,
        }
    }

    /// Mirror a legacy [`SuiteConfig`] (model, seed, langs, features); the
    /// stream stays unbounded — apply `.take(config.size)` for the suite.
    pub fn from_config(config: &SuiteConfig) -> Self {
        Self::new(config.model, config.seed)
            .langs(config.langs.clone())
            .features(config.features.clone())
    }

    /// Restrict the language flavors to draw from.
    ///
    /// # Panics
    ///
    /// Panics if `langs` is empty.
    pub fn langs(mut self, langs: Vec<Lang>) -> Self {
        assert!(!langs.is_empty(), "TemplateSource needs at least one Lang");
        self.langs = langs;
        self
    }

    /// Emit C files only (the paper's Part One OpenMP suite).
    pub fn c_only(self) -> Self {
        self.langs(vec![Lang::C])
    }

    /// Restrict generation to `features` (all features when empty).
    pub fn features(mut self, features: Vec<Feature>) -> Self {
        self.features = if features.is_empty() {
            Feature::all_for(self.model)
        } else {
            features
        };
        assert!(
            !self.features.is_empty(),
            "no features available for {:?}",
            self.model
        );
        self
    }
}

impl CaseSource for TemplateSource {
    fn next_case(&mut self) -> Option<GeneratedCase> {
        let index = self.index;
        self.index += 1;
        let feature = self.features[(index % self.features.len() as u64) as usize];
        let mut rng = StdRng::seed_from_u64(split_seed(self.seed ^ TEMPLATE_STREAM, index));
        let lang = if self.langs.len() == 1 {
            self.langs[0]
        } else {
            self.langs[rng.gen_range(0..self.langs.len())]
        };
        let source = templates::emit(feature, lang, &mut rng);
        let id = format!("{}_{}_{index:04}", model_prefix(self.model), feature.name());
        Some(GeneratedCase::from_case(TestCase {
            id,
            model: self.model,
            lang,
            feature,
            source,
        }))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (usize::MAX, None)
    }

    fn describe(&self) -> String {
        format!(
            "templates({:?}, seed {}, {} features, {} langs, unbounded)",
            self.model,
            self.seed,
            self.features.len(),
            self.langs.len()
        )
    }

    fn skip_cases(&mut self, count: usize) -> usize {
        self.index += count as u64;
        count
    }
}

/// An unbounded stream of plain, non-directive C programs — the replacement
/// corpus of negative-probing issue class 3, exposed as a source so that
/// known-invalid files can be mixed into a corpus (via
/// [`CaseSource::interleave`]) without running the mutation engine.
///
/// Each case keeps a nominal round-robin feature (the feature the file
/// *claims* to test, exactly as the paper's issue-3 files replace a feature
/// test's content) and is tagged `issue_id: Some(3)` — ground-truth invalid.
#[derive(Clone, Debug)]
pub struct RandomCodeSource {
    model: DirectiveModel,
    seed: u64,
    features: Vec<Feature>,
    index: u64,
}

impl RandomCodeSource {
    /// A source of non-directive programs masquerading as `model` tests.
    pub fn new(model: DirectiveModel, seed: u64) -> Self {
        Self {
            model,
            seed,
            features: Feature::all_for(model),
            index: 0,
        }
    }
}

impl CaseSource for RandomCodeSource {
    fn next_case(&mut self) -> Option<GeneratedCase> {
        let index = self.index;
        self.index += 1;
        let feature = self.features[(index % self.features.len() as u64) as usize];
        let mut rng = StdRng::seed_from_u64(split_seed(self.seed ^ RANDOM_CODE_STREAM, index));
        let source = random_code::generate_non_directive_code(&mut rng);
        let id = format!("{}_nondirective_{index:04}", model_prefix(self.model));
        Some(GeneratedCase {
            case: TestCase {
                id,
                model: self.model,
                lang: Lang::C,
                feature,
                source: source.clone(),
            },
            source,
            issue_id: Some(3),
            note: "randomly generated non-directive code".to_string(),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (usize::MAX, None)
    }

    fn describe(&self) -> String {
        format!(
            "random-code({:?}, seed {}, unbounded)",
            self.model, self.seed
        )
    }

    fn skip_cases(&mut self, count: usize) -> usize {
        self.index += count as u64;
        count
    }
}

/// A source over an already-materialized list of test cases (used by the
/// legacy batch collectors and for replaying fixed suites through streaming
/// consumers).
#[derive(Clone, Debug)]
pub struct CasesSource {
    cases: std::vec::IntoIter<TestCase>,
}

/// Stream a vector of existing test cases.
pub fn from_cases(cases: Vec<TestCase>) -> CasesSource {
    CasesSource {
        cases: cases.into_iter(),
    }
}

impl TestSuite {
    /// Stream this suite's cases (consuming the suite).
    pub fn into_source(self) -> CasesSource {
        from_cases(self.cases)
    }
}

impl CaseSource for CasesSource {
    fn next_case(&mut self) -> Option<GeneratedCase> {
        self.cases.next().map(GeneratedCase::from_case)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.cases.len();
        (remaining, Some(remaining))
    }

    fn describe(&self) -> String {
        format!("cases({} remaining)", self.cases.len())
    }

    fn skip_cases(&mut self, count: usize) -> usize {
        let available = self.cases.len().min(count);
        for _ in 0..available {
            self.cases.next();
        }
        available
    }
}

// ---------------------------------------------------------------------------
// combinator adapters
// ---------------------------------------------------------------------------

/// See [`CaseSource::take`].
#[derive(Clone, Debug)]
pub struct Take<S> {
    inner: S,
    remaining: usize,
}

impl<S: CaseSource> CaseSource for Take<S> {
    fn next_case(&mut self) -> Option<GeneratedCase> {
        if self.remaining == 0 {
            return None;
        }
        let case = self.inner.next_case()?;
        self.remaining -= 1;
        Some(case)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (lower, upper) = self.inner.size_hint();
        let upper = upper.map_or(self.remaining, |u| u.min(self.remaining));
        (lower.min(self.remaining), Some(upper))
    }

    fn describe(&self) -> String {
        format!("{} -> take({})", self.inner.describe(), self.remaining)
    }

    fn skip_cases(&mut self, count: usize) -> usize {
        let capped = count.min(self.remaining);
        let skipped = self.inner.skip_cases(capped);
        self.remaining -= skipped;
        skipped
    }
}

/// See [`CaseSource::filter_features`].
#[derive(Clone, Debug)]
pub struct FilterFeatures<S> {
    inner: S,
    features: Vec<Feature>,
}

impl<S: CaseSource> CaseSource for FilterFeatures<S> {
    fn next_case(&mut self) -> Option<GeneratedCase> {
        loop {
            let case = self.inner.next_case()?;
            if self.features.is_empty() || self.features.contains(&case.case.feature) {
                return Some(case);
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Filtering can drop anything; only the upper bound survives.
        (0, self.inner.size_hint().1)
    }

    fn describe(&self) -> String {
        format!(
            "{} -> filter_features({})",
            self.inner.describe(),
            self.features.len()
        )
    }

    fn skip_cases(&mut self, count: usize) -> usize {
        if self.features.is_empty() {
            // Empty-means-all: a pure pass-through keeps the inner O(1) skip.
            return self.inner.skip_cases(count);
        }
        // A real filter must inspect every case it discards.
        let mut skipped = 0;
        while skipped < count {
            if self.next_case().is_none() {
                break;
            }
            skipped += 1;
        }
        skipped
    }
}

/// See [`CaseSource::interleave`].
#[derive(Clone, Debug)]
pub struct Interleave<A, B> {
    a: A,
    b: B,
    from_a: bool,
}

impl<A: CaseSource, B: CaseSource> CaseSource for Interleave<A, B> {
    fn next_case(&mut self) -> Option<GeneratedCase> {
        let case = if self.from_a {
            self.a.next_case().or_else(|| self.b.next_case())
        } else {
            self.b.next_case().or_else(|| self.a.next_case())
        };
        self.from_a = !self.from_a;
        case
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (al, au) = self.a.size_hint();
        let (bl, bu) = self.b.size_hint();
        let upper = match (au, bu) {
            (Some(a), Some(b)) => a.checked_add(b),
            _ => None,
        };
        (al.saturating_add(bl), upper)
    }

    fn describe(&self) -> String {
        format!("interleave({}, {})", self.a.describe(), self.b.describe())
    }

    fn skip_cases(&mut self, count: usize) -> usize {
        // Fast path: when both sides' size-hint lower bounds guarantee they
        // can cover their alternating shares, the skip splits between the
        // sides without producing a single case — preserving the O(1) skip
        // of index-addressed sources underneath (what shard() relies on).
        // Equivalence with `count` next_case calls only holds when neither
        // side runs dry mid-skip, so anything else falls back to the
        // generic pull-and-drop.
        let first_share = count.div_ceil(2);
        let second_share = count / 2;
        let (a_hint, b_hint) = (self.a.size_hint().0, self.b.size_hint().0);
        let (first_hint, second_hint) = if self.from_a {
            (a_hint, b_hint)
        } else {
            (b_hint, a_hint)
        };
        if first_hint >= first_share && second_hint >= second_share {
            let (first, second) = if self.from_a {
                (
                    self.a.skip_cases(first_share),
                    self.b.skip_cases(second_share),
                )
            } else {
                (
                    self.b.skip_cases(first_share),
                    self.a.skip_cases(second_share),
                )
            };
            debug_assert_eq!(
                (first, second),
                (first_share, second_share),
                "size_hint lower bound promised more cases than the source delivered"
            );
            if count % 2 == 1 {
                self.from_a = !self.from_a;
            }
            return first + second;
        }
        let mut skipped = 0;
        while skipped < count {
            if self.next_case().is_none() {
                break;
            }
            skipped += 1;
        }
        skipped
    }
}

/// See [`CaseSource::shard`].
#[derive(Clone, Debug)]
pub struct Shard<S> {
    inner: S,
    k: usize,
    n: usize,
    started: bool,
}

impl<S: CaseSource> Shard<S> {
    /// Advance the inner stream to the next index owned by this shard.
    /// Returns false once the inner stream ends inside the gap.
    fn align(&mut self) -> bool {
        let gap = if self.started { self.n - 1 } else { self.k };
        self.started = true;
        self.inner.skip_cases(gap) == gap
    }
}

impl<S: CaseSource> CaseSource for Shard<S> {
    fn next_case(&mut self) -> Option<GeneratedCase> {
        if !self.align() {
            return None;
        }
        self.inner.next_case()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // With `len` inner cases remaining, this shard still owns every
        // n-th case after the next alignment gap (k before the first yield,
        // n-1 after).
        let gap = if self.started { self.n - 1 } else { self.k };
        let to_shard = |len: usize| len.saturating_sub(gap).div_ceil(self.n);
        let (lower, upper) = self.inner.size_hint();
        let lower = if lower == usize::MAX {
            usize::MAX
        } else {
            to_shard(lower)
        };
        (lower, upper.map(to_shard))
    }

    fn describe(&self) -> String {
        format!("{} -> shard({}/{})", self.inner.describe(), self.k, self.n)
    }

    fn skip_cases(&mut self, count: usize) -> usize {
        let mut skipped = 0;
        while skipped < count {
            if !self.align() || self.inner.skip_cases(1) != 1 {
                break;
            }
            skipped += 1;
        }
        skipped
    }
}

/// See [`CaseSource::inspect`].
#[derive(Clone, Debug)]
pub struct Inspect<S, F> {
    inner: S,
    f: F,
}

impl<S: CaseSource, F: FnMut(&GeneratedCase)> CaseSource for Inspect<S, F> {
    fn next_case(&mut self) -> Option<GeneratedCase> {
        let case = self.inner.next_case()?;
        (self.f)(&case);
        Some(case)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }

    fn describe(&self) -> String {
        format!("{} -> inspect", self.inner.describe())
    }

    fn skip_cases(&mut self, count: usize) -> usize {
        // Skipped cases are *not* observed (the documented contract), and
        // the inner source's O(1) skip is preserved.
        self.inner.skip_cases(count)
    }
}

/// Iterator bridge returned by [`CaseSource::into_cases`].
#[derive(Clone, Debug)]
pub struct IntoCases<S> {
    source: S,
}

impl<S: CaseSource> Iterator for IntoCases<S> {
    type Item = GeneratedCase;

    fn next(&mut self) -> Option<GeneratedCase> {
        self.source.next_case()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (lower, upper) = self.source.size_hint();
        // An unbounded source reports usize::MAX; Iterator's contract wants
        // a reachable lower bound, so clamp to "unknown but nonzero-ish".
        if lower == usize::MAX && upper.is_none() {
            (0, None)
        } else {
            (lower, upper)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vv_dclang::DirectiveModel;

    fn ids(source: impl CaseSource, limit: usize) -> Vec<String> {
        source.take(limit).into_cases().map(|c| c.case.id).collect()
    }

    #[test]
    fn template_source_is_deterministic_and_index_addressed() {
        let a: Vec<_> = TemplateSource::new(DirectiveModel::OpenAcc, 9)
            .take(12)
            .into_cases()
            .collect();
        let b: Vec<_> = TemplateSource::new(DirectiveModel::OpenAcc, 9)
            .take(12)
            .into_cases()
            .collect();
        assert_eq!(a, b);
        // Skipping must land on the same cases as generating-and-dropping.
        let mut skipped = TemplateSource::new(DirectiveModel::OpenAcc, 9);
        assert_eq!(skipped.skip_cases(7), 7);
        assert_eq!(skipped.next_case().unwrap(), a[7]);
    }

    #[test]
    fn take_bounds_an_unbounded_stream() {
        let source = TemplateSource::new(DirectiveModel::OpenMp, 1).take(5);
        assert_eq!(source.size_hint(), (5, Some(5)));
        assert_eq!(source.into_cases().count(), 5);
    }

    #[test]
    fn filter_features_keeps_only_requested_features() {
        let features = vec![Feature::all_for(DirectiveModel::OpenAcc)[0]];
        let kept: Vec<_> = TemplateSource::new(DirectiveModel::OpenAcc, 4)
            .filter_features(features.clone())
            .take(6)
            .into_cases()
            .collect();
        assert_eq!(kept.len(), 6);
        assert!(kept.iter().all(|c| c.case.feature == features[0]));
    }

    #[test]
    fn filter_features_with_an_empty_list_keeps_everything() {
        // Empty-means-all, like `TemplateSource::features` — and crucially
        // not an infinite discard loop over the unbounded source.
        let kept = TemplateSource::new(DirectiveModel::OpenAcc, 4)
            .filter_features(Vec::new())
            .take(6)
            .into_cases()
            .count();
        assert_eq!(kept, 6);
    }

    #[test]
    fn interleave_skip_matches_drain_semantics() {
        // Bulk skip (the shard fast path) must land on exactly the same
        // next case as generating-and-dropping, for balanced sides, for an
        // exhausted-side fallback, and across the from_a toggle parity.
        for (a_len, b_len, skip) in [(20usize, 20usize, 7usize), (20, 20, 8), (3, 20, 9)] {
            let make = || {
                TemplateSource::new(DirectiveModel::OpenAcc, 1)
                    .take(a_len)
                    .interleave(RandomCodeSource::new(DirectiveModel::OpenAcc, 2).take(b_len))
            };
            let mut skipped = make();
            let n = skipped.skip_cases(skip);
            assert_eq!(n, skip);
            let mut drained = make();
            for _ in 0..skip {
                assert!(drained.next_case().is_some());
            }
            assert_eq!(
                skipped.next_case(),
                drained.next_case(),
                "a={a_len} b={b_len} skip={skip}"
            );
        }
    }

    #[test]
    fn interleave_alternates_then_drains() {
        let a = TemplateSource::new(DirectiveModel::OpenAcc, 1).take(2);
        let b = RandomCodeSource::new(DirectiveModel::OpenAcc, 2).take(4);
        let merged: Vec<_> = a.interleave(b).into_cases().collect();
        assert_eq!(merged.len(), 6);
        assert!(merged[0].issue_id.is_none());
        assert_eq!(merged[1].issue_id, Some(3));
        // After `a` is exhausted the remaining random-code cases stream out.
        assert!(merged[4..].iter().all(|c| c.issue_id == Some(3)));
    }

    #[test]
    fn shard_union_reconstructs_the_stream() {
        let total = 23;
        let full = ids(TemplateSource::new(DirectiveModel::OpenMp, 77), total);
        for n in [1usize, 2, 3, 4] {
            let shards: Vec<Vec<String>> = (0..n)
                .map(|k| {
                    ids(
                        TemplateSource::new(DirectiveModel::OpenMp, 77)
                            .take(total)
                            .shard(k, n),
                        total,
                    )
                })
                .collect();
            let mut union: Vec<String> = Vec::new();
            for i in 0..total {
                union.push(shards[i % n][i / n].clone());
            }
            assert_eq!(union, full, "shard union diverged for n={n}");
        }
    }

    #[test]
    fn shard_size_hint_partitions_the_length() {
        for n in [1usize, 2, 3, 5] {
            let sizes: usize = (0..n)
                .map(|k| {
                    TemplateSource::new(DirectiveModel::OpenAcc, 0)
                        .take(17)
                        .shard(k, n)
                        .size_hint()
                        .1
                        .unwrap()
                })
                .sum();
            assert_eq!(sizes, 17, "shard upper bounds must partition for n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "requires k < n")]
    fn shard_rejects_out_of_range_k() {
        let _ = TemplateSource::new(DirectiveModel::OpenAcc, 0).shard(3, 3);
    }

    #[test]
    fn random_code_cases_are_ground_truth_invalid() {
        let mut source = RandomCodeSource::new(DirectiveModel::OpenMp, 5);
        let case = source.next_case().unwrap();
        assert_eq!(case.issue_id, Some(3));
        assert!(!case.ground_truth_valid());
        assert!(!case.source.contains("#pragma"));
    }

    #[test]
    fn inspect_observes_each_produced_case() {
        let mut seen = 0usize;
        TemplateSource::new(DirectiveModel::OpenAcc, 3)
            .take(4)
            .inspect(|_| seen += 1)
            .into_cases()
            .for_each(drop);
        assert_eq!(seen, 4);
    }

    #[test]
    fn inspect_does_not_observe_skipped_cases() {
        // Sharding downstream of an observer must not leak the other
        // shards' cases into the observation (and must keep the O(1) skip
        // of the index-addressed source underneath).
        use std::cell::RefCell;
        let seen: RefCell<Vec<String>> = RefCell::new(Vec::new());
        let produced: Vec<String> = TemplateSource::new(DirectiveModel::OpenAcc, 6)
            .take(20)
            .inspect(|case| seen.borrow_mut().push(case.case.id.clone()))
            .shard(1, 4)
            .into_cases()
            .map(|c| c.case.id)
            .collect();
        assert_eq!(produced.len(), 5);
        assert_eq!(*seen.borrow(), produced);
    }

    #[test]
    fn boxed_sources_compose() {
        let boxed: Box<dyn CaseSource + Send> = TemplateSource::new(DirectiveModel::OpenAcc, 8)
            .take(3)
            .boxed();
        let described = boxed.describe();
        assert!(described.contains("take"), "{described}");
        assert_eq!(boxed.into_cases().count(), 3);
    }
}
