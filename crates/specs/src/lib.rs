//! `vv-specs` — machine-readable subsets of the OpenACC 3.x and OpenMP 4.5
//! specifications used by the simulated compilers, the execution substrate
//! and the surrogate judge.
//!
//! The tables are intentionally *subsets*: they cover every directive and
//! clause that the synthetic V&V corpus (`vv-corpus`) can emit, plus enough
//! of the surrounding spec surface that corrupted directives produced by
//! negative probing are reliably classified as unknown or malformed.
//!
//! Two consumers with different needs share this crate:
//!
//! * the **simulated compiler** validates directives strictly against a
//!   configured specification version (the paper restricts OpenMP to 4.5 so
//!   the LLVM offloading compiler is fully compliant);
//! * the **surrogate judge** consults the same tables but through a noisy
//!   "knowledge" layer defined in `vv-judge`.

pub mod tables;
pub mod validate;
pub mod version;

pub use tables::{
    acc_directives, clause_spec, data_movement_clauses, directive_spec, omp_directives, ClauseSpec,
    DirectiveSpec,
};
pub use validate::{validate_directive, SpecIssue, SpecIssueKind};
pub use version::Version;

use vv_dclang::DirectiveModel;

/// Returns the directive specification table for a programming model.
pub fn directives_for(model: DirectiveModel) -> &'static [DirectiveSpec] {
    match model {
        DirectiveModel::OpenAcc => acc_directives(),
        DirectiveModel::OpenMp => omp_directives(),
    }
}

/// The default specification version enforced per model, mirroring the
/// paper's experimental setup (OpenACC 3.x via nvc; OpenMP capped at 4.5 so
/// the LLVM offloading compiler supports every feature used).
pub fn default_version(model: DirectiveModel) -> Version {
    match model {
        DirectiveModel::OpenAcc => Version::new(3, 3),
        DirectiveModel::OpenMp => Version::new(4, 5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_reachable_per_model() {
        assert!(!directives_for(DirectiveModel::OpenAcc).is_empty());
        assert!(!directives_for(DirectiveModel::OpenMp).is_empty());
    }

    #[test]
    fn default_versions_match_paper_setup() {
        assert_eq!(default_version(DirectiveModel::OpenMp), Version::new(4, 5));
        assert!(default_version(DirectiveModel::OpenAcc) >= Version::new(3, 0));
    }
}
