//! Directive and clause specification tables.
//!
//! OpenACC coverage follows the 3.x specification; OpenMP coverage follows
//! 4.5 with a handful of 5.x entries included *specifically so they can be
//! rejected* by a 4.5-capped compiler (the paper restricts its OpenMP corpus
//! to 4.5 features for exactly this reason).

use crate::version::Version;
use vv_dclang::DirectiveModel;

/// Specification entry for a clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClauseSpec {
    /// Clause keyword.
    pub name: &'static str,
    /// True if the clause is malformed without a parenthesised argument list.
    pub requires_args: bool,
    /// Specification version that introduced the clause.
    pub since: Version,
}

/// Specification entry for a directive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirectiveSpec {
    /// Space-joined directive name, e.g. `"parallel loop"`.
    pub name: &'static str,
    /// True if the directive does not govern a following statement.
    pub standalone: bool,
    /// Specification version that introduced the directive.
    pub since: Version,
    /// Clause keywords that may appear on this directive.
    pub allowed_clauses: &'static [&'static str],
}

const fn c(name: &'static str, requires_args: bool, major: u16, minor: u16) -> ClauseSpec {
    ClauseSpec {
        name,
        requires_args,
        since: Version::new(major, minor),
    }
}

const fn d(
    name: &'static str,
    standalone: bool,
    major: u16,
    minor: u16,
    allowed_clauses: &'static [&'static str],
) -> DirectiveSpec {
    DirectiveSpec {
        name,
        standalone,
        since: Version::new(major, minor),
        allowed_clauses,
    }
}

// ---------------------------------------------------------------------------
// OpenACC
// ---------------------------------------------------------------------------

/// Clause registry for OpenACC.
pub const ACC_CLAUSES: &[ClauseSpec] = &[
    c("async", false, 1, 0),
    c("wait", false, 1, 0),
    c("num_gangs", true, 1, 0),
    c("num_workers", true, 1, 0),
    c("vector_length", true, 1, 0),
    c("private", true, 1, 0),
    c("firstprivate", true, 1, 0),
    c("reduction", true, 1, 0),
    c("copy", true, 1, 0),
    c("copyin", true, 1, 0),
    c("copyout", true, 1, 0),
    c("create", true, 1, 0),
    c("no_create", true, 2, 0),
    c("present", true, 1, 0),
    c("deviceptr", true, 1, 0),
    c("attach", true, 2, 6),
    c("detach", true, 2, 6),
    c("delete", true, 2, 0),
    c("default", true, 2, 0),
    c("if", true, 1, 0),
    c("if_present", false, 2, 0),
    c("self", false, 2, 7),
    c("collapse", true, 1, 0),
    c("gang", false, 1, 0),
    c("worker", false, 1, 0),
    c("vector", false, 1, 0),
    c("seq", false, 1, 0),
    c("auto", false, 2, 0),
    c("independent", false, 1, 0),
    c("tile", true, 2, 0),
    c("device_type", true, 2, 0),
    c("use_device", true, 1, 0),
    c("host", true, 1, 0),
    c("device", true, 1, 0),
    c("read", false, 2, 0),
    c("write", false, 2, 0),
    c("update", false, 2, 0),
    c("capture", false, 2, 0),
    c("device_resident", true, 1, 0),
    c("link", true, 2, 0),
    c("bind", true, 2, 0),
    c("nohost", false, 2, 0),
    c("finalize", false, 2, 6),
    c("device_num", true, 2, 0),
    c("default_async", true, 2, 5),
];

const ACC_COMPUTE_CLAUSES: &[&str] = &[
    "async",
    "wait",
    "num_gangs",
    "num_workers",
    "vector_length",
    "private",
    "firstprivate",
    "reduction",
    "copy",
    "copyin",
    "copyout",
    "create",
    "no_create",
    "present",
    "deviceptr",
    "attach",
    "default",
    "if",
    "self",
];

const ACC_LOOP_CLAUSES: &[&str] = &[
    "collapse",
    "gang",
    "worker",
    "vector",
    "seq",
    "auto",
    "independent",
    "private",
    "reduction",
    "tile",
    "device_type",
];

const ACC_COMBINED_CLAUSES: &[&str] = &[
    "async",
    "wait",
    "num_gangs",
    "num_workers",
    "vector_length",
    "private",
    "firstprivate",
    "reduction",
    "copy",
    "copyin",
    "copyout",
    "create",
    "no_create",
    "present",
    "deviceptr",
    "attach",
    "default",
    "if",
    "self",
    "collapse",
    "gang",
    "worker",
    "vector",
    "seq",
    "auto",
    "independent",
    "tile",
    "device_type",
];

const ACC_DATA_CLAUSES: &[&str] = &[
    "if",
    "copy",
    "copyin",
    "copyout",
    "create",
    "no_create",
    "present",
    "deviceptr",
    "attach",
    "default",
    "async",
    "wait",
];

/// Directive registry for OpenACC.
pub const ACC_DIRECTIVES: &[DirectiveSpec] = &[
    d("parallel", false, 1, 0, ACC_COMPUTE_CLAUSES),
    d("kernels", false, 1, 0, ACC_COMPUTE_CLAUSES),
    d("serial", false, 2, 5, ACC_COMPUTE_CLAUSES),
    d("loop", false, 1, 0, ACC_LOOP_CLAUSES),
    d("parallel loop", false, 1, 0, ACC_COMBINED_CLAUSES),
    d("kernels loop", false, 1, 0, ACC_COMBINED_CLAUSES),
    d("serial loop", false, 2, 5, ACC_COMBINED_CLAUSES),
    d("data", false, 1, 0, ACC_DATA_CLAUSES),
    d(
        "enter data",
        true,
        2,
        0,
        &["if", "async", "wait", "copyin", "create", "attach"],
    ),
    d(
        "exit data",
        true,
        2,
        0,
        &[
            "if", "async", "wait", "copyout", "delete", "detach", "finalize",
        ],
    ),
    d(
        "host_data",
        false,
        1,
        0,
        &["use_device", "if", "if_present"],
    ),
    d(
        "update",
        true,
        1,
        0,
        &[
            "async",
            "wait",
            "device_type",
            "if",
            "if_present",
            "self",
            "host",
            "device",
        ],
    ),
    d("wait", true, 1, 0, &["async", "if"]),
    d("cache", true, 1, 0, &[]),
    d(
        "atomic",
        false,
        1,
        0,
        &["read", "write", "update", "capture"],
    ),
    // `atomic update` parses as a two-word directive name because `update`
    // is itself a construct keyword; keep explicit entries for those forms.
    d("atomic update", false, 1, 0, &[]),
    d(
        "declare",
        true,
        1,
        0,
        &[
            "copy",
            "copyin",
            "copyout",
            "create",
            "present",
            "deviceptr",
            "device_resident",
            "link",
        ],
    ),
    d(
        "routine",
        true,
        1,
        0,
        &[
            "gang",
            "worker",
            "vector",
            "seq",
            "bind",
            "device_type",
            "nohost",
        ],
    ),
    d("init", true, 1, 0, &["device_type", "device_num", "if"]),
    d("shutdown", true, 1, 0, &["device_type", "device_num", "if"]),
    d(
        "set",
        true,
        2,
        5,
        &["device_type", "device_num", "default_async", "if"],
    ),
];

// ---------------------------------------------------------------------------
// OpenMP
// ---------------------------------------------------------------------------

/// Clause registry for OpenMP.
pub const OMP_CLAUSES: &[ClauseSpec] = &[
    c("if", true, 3, 0),
    c("num_threads", true, 3, 0),
    c("default", true, 3, 0),
    c("private", true, 3, 0),
    c("firstprivate", true, 3, 0),
    c("lastprivate", true, 3, 0),
    c("shared", true, 3, 0),
    c("copyin", true, 3, 0),
    c("copyprivate", true, 3, 0),
    c("reduction", true, 3, 0),
    c("proc_bind", true, 4, 0),
    c("linear", true, 4, 0),
    c("schedule", true, 3, 0),
    c("collapse", true, 3, 0),
    c("ordered", false, 3, 0),
    c("nowait", false, 3, 0),
    c("safelen", true, 4, 0),
    c("simdlen", true, 4, 0),
    c("aligned", true, 4, 0),
    c("device", true, 4, 0),
    c("map", true, 4, 0),
    c("is_device_ptr", true, 4, 5),
    c("use_device_ptr", true, 4, 5),
    c("defaultmap", true, 4, 5),
    c("depend", true, 4, 0),
    c("to", true, 4, 0),
    c("from", true, 4, 0),
    c("num_teams", true, 4, 0),
    c("thread_limit", true, 4, 0),
    c("dist_schedule", true, 4, 0),
    c("final", true, 3, 1),
    c("untied", false, 3, 0),
    c("mergeable", false, 3, 1),
    c("priority", true, 4, 5),
    c("grainsize", true, 4, 5),
    c("num_tasks", true, 4, 5),
    c("nogroup", false, 4, 5),
    c("threads", false, 4, 5),
    c("simd", false, 4, 5),
    c("read", false, 3, 1),
    c("write", false, 3, 1),
    c("update", false, 3, 1),
    c("capture", false, 3, 1),
    c("seq_cst", false, 4, 0),
    // 5.x clauses, present so that a 4.5-capped compiler rejects them
    c("order", true, 5, 0),
    c("allocate", true, 5, 0),
    c("in_reduction", true, 5, 0),
    c("nontemporal", true, 5, 0),
    c("uses_allocators", true, 5, 0),
];

const OMP_PARALLEL_CLAUSES: &[&str] = &[
    "if",
    "num_threads",
    "default",
    "private",
    "firstprivate",
    "shared",
    "copyin",
    "reduction",
    "proc_bind",
];

const OMP_FOR_CLAUSES: &[&str] = &[
    "private",
    "firstprivate",
    "lastprivate",
    "linear",
    "reduction",
    "schedule",
    "collapse",
    "ordered",
    "nowait",
];

const OMP_PARALLEL_FOR_CLAUSES: &[&str] = &[
    "if",
    "num_threads",
    "default",
    "private",
    "firstprivate",
    "lastprivate",
    "shared",
    "copyin",
    "reduction",
    "proc_bind",
    "linear",
    "schedule",
    "collapse",
    "ordered",
];

const OMP_SIMD_CLAUSES: &[&str] = &[
    "safelen",
    "simdlen",
    "linear",
    "aligned",
    "private",
    "lastprivate",
    "reduction",
    "collapse",
];

const OMP_TARGET_CLAUSES: &[&str] = &[
    "if",
    "device",
    "private",
    "firstprivate",
    "map",
    "is_device_ptr",
    "defaultmap",
    "nowait",
    "depend",
];

const OMP_TEAMS_CLAUSES: &[&str] = &[
    "num_teams",
    "thread_limit",
    "default",
    "private",
    "firstprivate",
    "shared",
    "reduction",
];

const OMP_DISTRIBUTE_CLAUSES: &[&str] = &[
    "private",
    "firstprivate",
    "lastprivate",
    "collapse",
    "dist_schedule",
];

const OMP_TARGET_TEAMS_CLAUSES: &[&str] = &[
    "if",
    "device",
    "private",
    "firstprivate",
    "map",
    "is_device_ptr",
    "defaultmap",
    "nowait",
    "depend",
    "num_teams",
    "thread_limit",
    "default",
    "shared",
    "reduction",
];

const OMP_TARGET_TEAMS_DISTRIBUTE_CLAUSES: &[&str] = &[
    "if",
    "device",
    "private",
    "firstprivate",
    "map",
    "is_device_ptr",
    "defaultmap",
    "nowait",
    "depend",
    "num_teams",
    "thread_limit",
    "default",
    "shared",
    "reduction",
    "lastprivate",
    "collapse",
    "dist_schedule",
];

const OMP_TARGET_TEAMS_DISTRIBUTE_PARALLEL_FOR_CLAUSES: &[&str] = &[
    "if",
    "device",
    "private",
    "firstprivate",
    "map",
    "is_device_ptr",
    "defaultmap",
    "nowait",
    "depend",
    "num_teams",
    "thread_limit",
    "default",
    "shared",
    "reduction",
    "lastprivate",
    "collapse",
    "dist_schedule",
    "num_threads",
    "copyin",
    "proc_bind",
    "linear",
    "schedule",
    "ordered",
];

const OMP_TASK_CLAUSES: &[&str] = &[
    "if",
    "final",
    "untied",
    "default",
    "mergeable",
    "private",
    "firstprivate",
    "shared",
    "depend",
    "priority",
];

const OMP_TASKLOOP_CLAUSES: &[&str] = &[
    "if",
    "shared",
    "private",
    "firstprivate",
    "lastprivate",
    "default",
    "grainsize",
    "num_tasks",
    "collapse",
    "final",
    "priority",
    "untied",
    "mergeable",
    "nogroup",
];

/// Directive registry for OpenMP.
pub const OMP_DIRECTIVES: &[DirectiveSpec] = &[
    d("parallel", false, 3, 0, OMP_PARALLEL_CLAUSES),
    d("for", false, 3, 0, OMP_FOR_CLAUSES),
    d("parallel for", false, 3, 0, OMP_PARALLEL_FOR_CLAUSES),
    d("simd", false, 4, 0, OMP_SIMD_CLAUSES),
    d("for simd", false, 4, 0, OMP_FOR_CLAUSES),
    d("parallel for simd", false, 4, 0, OMP_PARALLEL_FOR_CLAUSES),
    d("target", false, 4, 0, OMP_TARGET_CLAUSES),
    d(
        "target data",
        false,
        4,
        0,
        &["if", "device", "map", "use_device_ptr"],
    ),
    d(
        "target enter data",
        true,
        4,
        5,
        &["if", "device", "map", "depend", "nowait"],
    ),
    d(
        "target exit data",
        true,
        4,
        5,
        &["if", "device", "map", "depend", "nowait"],
    ),
    d(
        "target update",
        true,
        4,
        0,
        &["if", "device", "to", "from", "depend", "nowait"],
    ),
    d("teams", false, 4, 0, OMP_TEAMS_CLAUSES),
    d("distribute", false, 4, 0, OMP_DISTRIBUTE_CLAUSES),
    d("target teams", false, 4, 0, OMP_TARGET_TEAMS_CLAUSES),
    d(
        "target teams distribute",
        false,
        4,
        0,
        OMP_TARGET_TEAMS_DISTRIBUTE_CLAUSES,
    ),
    d(
        "target teams distribute parallel for",
        false,
        4,
        0,
        OMP_TARGET_TEAMS_DISTRIBUTE_PARALLEL_FOR_CLAUSES,
    ),
    d(
        "target parallel for",
        false,
        4,
        5,
        OMP_TARGET_TEAMS_DISTRIBUTE_PARALLEL_FOR_CLAUSES,
    ),
    d(
        "teams distribute",
        false,
        4,
        0,
        OMP_TARGET_TEAMS_DISTRIBUTE_CLAUSES,
    ),
    d(
        "teams distribute parallel for",
        false,
        4,
        0,
        OMP_TARGET_TEAMS_DISTRIBUTE_PARALLEL_FOR_CLAUSES,
    ),
    d("task", false, 3, 0, OMP_TASK_CLAUSES),
    d("taskloop", false, 4, 5, OMP_TASKLOOP_CLAUSES),
    d("taskwait", true, 3, 0, &[]),
    d("taskyield", true, 3, 1, &[]),
    d("barrier", true, 3, 0, &[]),
    d("critical", false, 3, 0, &[]),
    d(
        "atomic",
        false,
        3,
        0,
        &["read", "write", "update", "capture", "seq_cst"],
    ),
    // `atomic update` parses as a two-word directive name because `update`
    // is itself a construct keyword; keep an explicit entry for that form.
    d("atomic update", false, 3, 0, &["seq_cst"]),
    d(
        "single",
        false,
        3,
        0,
        &["private", "firstprivate", "copyprivate", "nowait"],
    ),
    d("master", false, 3, 0, &[]),
    d(
        "sections",
        false,
        3,
        0,
        &[
            "private",
            "firstprivate",
            "lastprivate",
            "reduction",
            "nowait",
        ],
    ),
    d("section", false, 3, 0, &[]),
    d("ordered", false, 3, 0, &["threads", "simd", "depend"]),
    d("flush", true, 3, 0, &[]),
    d("threadprivate", true, 3, 0, &[]),
    d("declare target", true, 4, 0, &[]),
    d("end declare target", true, 4, 0, &[]),
    d("declare reduction", true, 4, 0, &[]),
    // 5.x directives, present so that a 4.5-capped compiler rejects them
    d(
        "loop",
        false,
        5,
        0,
        &["reduction", "collapse", "private", "lastprivate", "order"],
    ),
    d(
        "teams loop",
        false,
        5,
        0,
        OMP_TARGET_TEAMS_DISTRIBUTE_CLAUSES,
    ),
    d("requires", true, 5, 0, &[]),
    d("scan", true, 5, 0, &[]),
    d("masked", false, 5, 1, &[]),
];

// ---------------------------------------------------------------------------
// lookups
// ---------------------------------------------------------------------------

/// The OpenACC directive table.
pub fn acc_directives() -> &'static [DirectiveSpec] {
    ACC_DIRECTIVES
}

/// The OpenMP directive table.
pub fn omp_directives() -> &'static [DirectiveSpec] {
    OMP_DIRECTIVES
}

/// Look up a directive by its space-joined name.
pub fn directive_spec(model: DirectiveModel, name: &str) -> Option<&'static DirectiveSpec> {
    let table = match model {
        DirectiveModel::OpenAcc => ACC_DIRECTIVES,
        DirectiveModel::OpenMp => OMP_DIRECTIVES,
    };
    table.iter().find(|spec| spec.name == name)
}

/// Look up a clause by name.
pub fn clause_spec(model: DirectiveModel, name: &str) -> Option<&'static ClauseSpec> {
    let table = match model {
        DirectiveModel::OpenAcc => ACC_CLAUSES,
        DirectiveModel::OpenMp => OMP_CLAUSES,
    };
    table.iter().find(|spec| spec.name == name)
}

/// Clause keywords that trigger host↔device data movement. The execution
/// substrate uses these to maintain the device present-table.
pub fn data_movement_clauses(model: DirectiveModel) -> &'static [&'static str] {
    match model {
        DirectiveModel::OpenAcc => &[
            "copy",
            "copyin",
            "copyout",
            "create",
            "no_create",
            "present",
            "deviceptr",
            "delete",
            "attach",
            "detach",
            "host",
            "device",
            "self",
        ],
        DirectiveModel::OpenMp => &["map", "to", "from", "is_device_ptr", "use_device_ptr"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_allowed_clause_exists_in_the_clause_registry() {
        for (model, table) in [
            (DirectiveModel::OpenAcc, ACC_DIRECTIVES),
            (DirectiveModel::OpenMp, OMP_DIRECTIVES),
        ] {
            for dir in table {
                for clause in dir.allowed_clauses {
                    assert!(
                        clause_spec(model, clause).is_some(),
                        "{model:?} directive '{}' allows unknown clause '{clause}'",
                        dir.name
                    );
                }
            }
        }
    }

    #[test]
    fn directive_names_are_unique_per_model() {
        for table in [ACC_DIRECTIVES, OMP_DIRECTIVES] {
            for (i, a) in table.iter().enumerate() {
                for b in &table[i + 1..] {
                    assert_ne!(a.name, b.name, "duplicate directive entry '{}'", a.name);
                }
            }
        }
    }

    #[test]
    fn lookup_combined_directives() {
        assert!(directive_spec(DirectiveModel::OpenAcc, "parallel loop").is_some());
        assert!(directive_spec(
            DirectiveModel::OpenMp,
            "target teams distribute parallel for"
        )
        .is_some());
        assert!(directive_spec(DirectiveModel::OpenAcc, "paralel loop").is_none());
    }

    #[test]
    fn omp_5_features_are_marked_post_4_5() {
        let loop_dir = directive_spec(DirectiveModel::OpenMp, "loop").unwrap();
        assert!(loop_dir.since > Version::OMP_4_5);
        let order = clause_spec(DirectiveModel::OpenMp, "order").unwrap();
        assert!(order.since > Version::OMP_4_5);
    }

    #[test]
    fn standalone_flags_are_consistent_with_dclang() {
        // The parser's syntactic standalone list and the spec table must agree
        // for directives present in both.
        use vv_dclang::directive::parse_pragma;
        use vv_dclang::Span;
        for (model, sentinel, table) in [
            (DirectiveModel::OpenAcc, "acc", ACC_DIRECTIVES),
            (DirectiveModel::OpenMp, "omp", OMP_DIRECTIVES),
        ] {
            let _ = model;
            for dir in table {
                if dir.since > Version::new(4, 5) && sentinel == "omp" {
                    continue; // 5.x directives are not in the parser's list
                }
                let parsed = parse_pragma(&format!("{sentinel} {}", dir.name), Span::unknown());
                if parsed.display_name() == dir.name {
                    assert_eq!(
                        parsed.is_standalone(),
                        dir.standalone,
                        "standalone mismatch for '{} {}'",
                        sentinel,
                        dir.name
                    );
                }
            }
        }
    }

    #[test]
    fn data_movement_clause_lists_are_nonempty() {
        assert!(data_movement_clauses(DirectiveModel::OpenAcc).contains(&"copyin"));
        assert!(data_movement_clauses(DirectiveModel::OpenMp).contains(&"map"));
    }
}
