//! Directive validation against the specification tables.

use crate::tables::{clause_spec, directive_spec};
use crate::version::Version;
use vv_dclang::{Clause, Directive};

/// Category of a specification violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpecIssueKind {
    /// The directive name does not exist in the model's specification
    /// (typical for negative-probing mutations that corrupt a directive).
    UnknownDirective,
    /// A clause is not defined by the specification, or not permitted on
    /// this directive.
    UnknownClause,
    /// A clause that requires a parenthesised argument list has none.
    MissingClauseArgs,
    /// A clause argument list is syntactically malformed.
    MalformedClauseArgs,
    /// The directive or clause is newer than the configured specification
    /// version (e.g. OpenMP 5.0 features under a 4.5 cap).
    UnsupportedVersion,
}

/// A single specification violation found on a directive.
#[derive(Clone, Debug, PartialEq)]
pub struct SpecIssue {
    /// Violation category.
    pub kind: SpecIssueKind,
    /// Human-readable message (vendor-neutral).
    pub message: String,
}

impl SpecIssue {
    fn new(kind: SpecIssueKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
        }
    }
}

/// Validate a directive against the specification for its model, capped at
/// `max_version`. Returns every violation found (empty means conforming).
///
/// Directives whose sentinel is not `acc`/`omp` (i.e. `directive.model` is
/// `None`) are not specification violations — real compilers ignore unknown
/// pragmas with a warning — so this function returns an empty list for them;
/// the caller decides how to treat foreign pragmas.
pub fn validate_directive(directive: &Directive, max_version: Version) -> Vec<SpecIssue> {
    let Some(model) = directive.model else {
        return Vec::new();
    };
    let mut issues = Vec::new();
    let name = directive.display_name();

    if name.is_empty() {
        let offending = directive
            .clauses
            .first()
            .map(|c| c.name.clone())
            .unwrap_or_else(|| "<empty>".to_string());
        issues.push(SpecIssue::new(
            SpecIssueKind::UnknownDirective,
            format!("'{offending}' is not a valid {model} directive"),
        ));
        return issues;
    }

    let Some(spec) = directive_spec(model, &name) else {
        issues.push(SpecIssue::new(
            SpecIssueKind::UnknownDirective,
            format!("'{name}' is not a valid {model} directive"),
        ));
        return issues;
    };

    if spec.since > max_version {
        issues.push(SpecIssue::new(
            SpecIssueKind::UnsupportedVersion,
            format!(
                "directive '{name}' requires {model} {} but the compiler is configured for {max_version}",
                spec.since
            ),
        ));
    }

    for clause in &directive.clauses {
        validate_clause(
            model,
            &name,
            spec.allowed_clauses,
            clause,
            max_version,
            &mut issues,
        );
    }

    issues
}

fn validate_clause(
    model: vv_dclang::DirectiveModel,
    directive_name: &str,
    allowed: &[&str],
    clause: &Clause,
    max_version: Version,
    issues: &mut Vec<SpecIssue>,
) {
    let Some(cspec) = clause_spec(model, &clause.name) else {
        issues.push(SpecIssue::new(
            SpecIssueKind::UnknownClause,
            format!("'{}' is not a recognized {model} clause", clause.name),
        ));
        return;
    };

    if cspec.since > max_version {
        issues.push(SpecIssue::new(
            SpecIssueKind::UnsupportedVersion,
            format!(
                "clause '{}' requires {model} {} but the compiler is configured for {max_version}",
                clause.name, cspec.since
            ),
        ));
        return;
    }

    if !allowed.is_empty() && !allowed.contains(&clause.name.as_str()) {
        issues.push(SpecIssue::new(
            SpecIssueKind::UnknownClause,
            format!(
                "clause '{}' is not valid on the '{directive_name}' directive",
                clause.name
            ),
        ));
        return;
    }

    let args_text = clause.args.as_deref().unwrap_or("");
    if args_text.trim().is_empty() {
        if cspec.requires_args {
            issues.push(SpecIssue::new(
                SpecIssueKind::MissingClauseArgs,
                format!("clause '{}' requires an argument list", clause.name),
            ));
        }
    } else {
        check_clause_args(model, &clause.name, args_text, issues);
    }
}

fn check_clause_args(
    model: vv_dclang::DirectiveModel,
    clause_name: &str,
    args: &str,
    issues: &mut Vec<SpecIssue>,
) {
    match clause_name {
        "reduction" | "in_reduction" => {
            // OpenACC/OpenMP reductions are `operator : list`
            let Some((op, list)) = args.split_once(':') else {
                issues.push(SpecIssue::new(
                    SpecIssueKind::MalformedClauseArgs,
                    format!("reduction clause '{args}' is missing the 'operator:' prefix"),
                ));
                return;
            };
            let op = op.trim();
            const OPS: &[&str] = &["+", "*", "-", "max", "min", "&", "|", "^", "&&", "||"];
            if !OPS.contains(&op) {
                issues.push(SpecIssue::new(
                    SpecIssueKind::MalformedClauseArgs,
                    format!("'{op}' is not a valid reduction operator"),
                ));
            }
            if list.trim().is_empty() {
                issues.push(SpecIssue::new(
                    SpecIssueKind::MalformedClauseArgs,
                    "reduction clause has an empty variable list".to_string(),
                ));
            }
        }
        "map" => {
            // OpenMP map is `[map-type:] list`
            if let Some((map_type, list)) = args.split_once(':') {
                // Ignore array-section colons such as `a[0:N]` by requiring the
                // prefix to be a plain word.
                let map_type = map_type.trim();
                if map_type.chars().all(|c| c.is_ascii_alphabetic()) {
                    const MAP_TYPES: &[&str] = &[
                        "to", "from", "tofrom", "alloc", "release", "delete", "always",
                    ];
                    if !MAP_TYPES.contains(&map_type) {
                        issues.push(SpecIssue::new(
                            SpecIssueKind::MalformedClauseArgs,
                            format!("'{map_type}' is not a valid map type"),
                        ));
                    }
                    if list.trim().is_empty() {
                        issues.push(SpecIssue::new(
                            SpecIssueKind::MalformedClauseArgs,
                            "map clause has an empty variable list".to_string(),
                        ));
                    }
                }
            }
        }
        "num_gangs" | "num_workers" | "vector_length" | "num_threads" | "num_teams"
        | "thread_limit" | "collapse" | "safelen" | "simdlen" | "device_num" | "priority"
        | "grainsize" | "num_tasks"
            if args.trim().is_empty() =>
        {
            issues.push(SpecIssue::new(
                SpecIssueKind::MalformedClauseArgs,
                format!("clause '{clause_name}' requires an integer expression"),
            ));
        }
        "schedule" => {
            let kind = args.split(',').next().unwrap_or("").trim();
            const KINDS: &[&str] = &["static", "dynamic", "guided", "auto", "runtime"];
            if !KINDS.contains(&kind) {
                issues.push(SpecIssue::new(
                    SpecIssueKind::MalformedClauseArgs,
                    format!("'{kind}' is not a valid schedule kind"),
                ));
            }
        }
        "default" => {
            let value = args.trim();
            let valid = match model {
                vv_dclang::DirectiveModel::OpenAcc => ["none", "present"].contains(&value),
                vv_dclang::DirectiveModel::OpenMp => {
                    ["none", "shared", "private", "firstprivate"].contains(&value)
                }
            };
            if !valid {
                issues.push(SpecIssue::new(
                    SpecIssueKind::MalformedClauseArgs,
                    format!("'{value}' is not a valid default() argument"),
                ));
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vv_dclang::directive::parse_pragma;
    use vv_dclang::Span;

    fn validate(pragma: &str, version: Version) -> Vec<SpecIssue> {
        let d = parse_pragma(pragma, Span::unknown());
        validate_directive(&d, version)
    }

    fn acc(pragma: &str) -> Vec<SpecIssue> {
        validate(pragma, Version::new(3, 3))
    }

    fn omp(pragma: &str) -> Vec<SpecIssue> {
        validate(pragma, Version::OMP_4_5)
    }

    #[test]
    fn conforming_acc_directives_pass() {
        assert!(acc("acc parallel loop gang vector reduction(+:sum) copyin(a[0:64])").is_empty());
        assert!(acc("acc data copy(a[0:64]) create(b[0:64])").is_empty());
        assert!(acc("acc enter data copyin(a[0:64])").is_empty());
        assert!(acc("acc update self(a[0:64])").is_empty());
        assert!(acc("acc atomic update").is_empty());
    }

    #[test]
    fn conforming_omp_directives_pass() {
        assert!(omp(
            "omp target teams distribute parallel for map(tofrom: c[0:64]) reduction(+:err)"
        )
        .is_empty());
        assert!(omp("omp parallel for schedule(static) num_threads(4)").is_empty());
        assert!(omp("omp target data map(to: a[0:64]) map(from: b[0:64])").is_empty());
        assert!(omp("omp atomic capture").is_empty());
    }

    #[test]
    fn corrupted_directive_name_is_unknown() {
        let issues = acc("acc paralel loop");
        assert!(issues
            .iter()
            .any(|i| i.kind == SpecIssueKind::UnknownDirective));
        let issues = omp("omp targett teams");
        assert!(issues
            .iter()
            .any(|i| i.kind == SpecIssueKind::UnknownDirective));
    }

    #[test]
    fn unknown_clause_is_flagged() {
        let issues = acc("acc parallel loop banana(3)");
        assert!(issues
            .iter()
            .any(|i| i.kind == SpecIssueKind::UnknownClause));
    }

    #[test]
    fn clause_not_valid_on_directive_is_flagged() {
        // `schedule` is an OpenMP worksharing clause, not valid on `target data`.
        let issues = omp("omp target data schedule(static)");
        assert!(issues
            .iter()
            .any(|i| i.kind == SpecIssueKind::UnknownClause));
    }

    #[test]
    fn missing_required_args_is_flagged() {
        let issues = acc("acc parallel copyin");
        assert!(issues
            .iter()
            .any(|i| i.kind == SpecIssueKind::MissingClauseArgs));
        let issues = omp("omp target map");
        assert!(issues
            .iter()
            .any(|i| i.kind == SpecIssueKind::MissingClauseArgs));
    }

    #[test]
    fn malformed_reduction_is_flagged() {
        let issues = acc("acc parallel loop reduction(sum)");
        assert!(issues
            .iter()
            .any(|i| i.kind == SpecIssueKind::MalformedClauseArgs));
        let issues = omp("omp parallel for reduction(foo:sum)");
        assert!(issues
            .iter()
            .any(|i| i.kind == SpecIssueKind::MalformedClauseArgs));
    }

    #[test]
    fn bad_map_type_is_flagged() {
        let issues = omp("omp target map(sideways: a[0:8])");
        assert!(issues
            .iter()
            .any(|i| i.kind == SpecIssueKind::MalformedClauseArgs));
        // array sections without a map-type are fine
        assert!(omp("omp target map(a[0:8])").is_empty());
    }

    #[test]
    fn omp5_features_rejected_at_4_5_but_allowed_at_5_0() {
        let issues = omp("omp loop");
        assert!(issues
            .iter()
            .any(|i| i.kind == SpecIssueKind::UnsupportedVersion));
        let issues = validate("omp loop", Version::OMP_5_0);
        assert!(issues.is_empty());
        let issues = omp("omp parallel for allocate(a)");
        assert!(issues
            .iter()
            .any(|i| i.kind == SpecIssueKind::UnsupportedVersion));
    }

    #[test]
    fn foreign_pragmas_are_not_spec_violations() {
        assert!(validate("once", Version::OMP_4_5).is_empty());
        assert!(validate("unroll 4", Version::OMP_4_5).is_empty());
    }

    #[test]
    fn bad_schedule_and_default_args() {
        let issues = omp("omp parallel for schedule(bananas)");
        assert!(issues
            .iter()
            .any(|i| i.kind == SpecIssueKind::MalformedClauseArgs));
        let issues = acc("acc parallel default(everything)");
        assert!(issues
            .iter()
            .any(|i| i.kind == SpecIssueKind::MalformedClauseArgs));
        assert!(acc("acc parallel default(none)").is_empty());
    }
}
