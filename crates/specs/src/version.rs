//! Specification version numbers.

use std::fmt;

/// A specification version such as OpenMP `4.5` or OpenACC `3.3`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Version {
    /// Major component.
    pub major: u16,
    /// Minor component.
    pub minor: u16,
}

impl Version {
    /// Construct a version.
    pub const fn new(major: u16, minor: u16) -> Self {
        Self { major, minor }
    }

    /// OpenMP 4.5 — the cap used by the paper for offloading compilers.
    pub const OMP_4_5: Version = Version::new(4, 5);
    /// OpenMP 5.0 — features at or above this level are rejected by the
    /// simulated LLVM OpenMP offloading frontend.
    pub const OMP_5_0: Version = Version::new(5, 0);
    /// OpenACC 2.7.
    pub const ACC_2_7: Version = Version::new(2, 7);
    /// OpenACC 3.0.
    pub const ACC_3_0: Version = Version::new(3, 0);
    /// The oldest version tracked; used for features present "since always".
    pub const BASELINE: Version = Version::new(1, 0);
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.major, self.minor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_major_then_minor() {
        assert!(Version::new(5, 0) > Version::new(4, 5));
        assert!(Version::new(4, 5) > Version::new(4, 0));
        assert!(Version::new(4, 5) >= Version::OMP_4_5);
    }

    #[test]
    fn display_format() {
        assert_eq!(Version::new(4, 5).to_string(), "4.5");
    }
}
