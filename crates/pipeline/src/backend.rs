//! Pluggable stage backends.
//!
//! Each pipeline stage is an object-safe trait, so alternative
//! implementations — a real compiler shell-out, a caching executor, a second
//! judge profile, a remote judge service — can be plugged into
//! [`crate::ValidationService`] without touching the runner:
//!
//! * [`CompileBackend`] — turns a [`WorkItem`] into a [`CompileSummary`]
//!   plus an optional executable artifact;
//! * [`ExecBackend`] — runs an artifact and reports an [`ExecSummary`];
//! * [`JudgeBackend`] — produces a [`JudgeOutcome`] from the source and the
//!   collected stage evidence.
//!
//! The default implementations wrap the simulated substrates the paper's
//! reproduction is built on: [`SimCompileBackend`] (vv-simcompiler, through
//! per-worker [`CompileSession`]s around one shared content-addressed
//! [`CompileCache`]), [`SimExecBackend`] (vv-simexec) and
//! [`SurrogateJudgeBackend`] (vv-judge's calibrated surrogate model, fed the
//! code signals the compile stage precomputed).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::{CompileSummary, ExecSummary, WorkItem};
use vv_dclang::DirectiveModel;
use vv_judge::{
    CodeSignals, JudgeOutcome, JudgeProfile, JudgeSession, PromptStyle, SurrogateLlmJudge,
    ToolContext, ToolRecord,
};
use vv_simcompiler::{
    CacheStats, CompileCache, CompileFetch, CompileSession, PersistentCache, Program,
};
use vv_simexec::{ExecConfig, Executor};

/// The result of a compile backend call: the summary recorded in the
/// [`crate::CaseRecord`], the artifact handed to the execute stage, and the
/// code signals precomputed for the judge stage.
#[derive(Clone, Debug)]
pub struct CompileOutput {
    /// Exit code, captured output, success flag.
    pub summary: CompileSummary,
    /// The executable artifact, present only on success.
    pub artifact: Option<Program>,
    /// Code-derived judge evidence, computed once per distinct source by
    /// backends that can (see [`vv_judge::CodeSignals::of_source`]); `None`
    /// makes the judge fall back to scanning its rendered prompt.
    pub signals: Option<Arc<CodeSignals>>,
    /// Which cache tier served this outcome — `None` when the backend has
    /// no cache (provenance unknown). Feeds the service's
    /// compile-cache-hit counters.
    pub fetch: Option<CompileFetch>,
}

/// The compile stage: source text in, diagnostics and artifact out.
///
/// Implementations must be thread-safe — the service calls them from
/// multiple stage workers concurrently.
pub trait CompileBackend: Send + Sync {
    /// Compile one work item.
    fn compile(&self, item: &WorkItem) -> CompileOutput;

    /// A short human-readable backend name (for logs and stats displays).
    fn name(&self) -> &'static str {
        "compile"
    }

    /// A string pinning every piece of configuration this backend's output
    /// depends on *besides* the work item itself (vendor, spec version,
    /// resource limits, ...). Two backends with equal fingerprints must
    /// produce byte-identical output for identical items. `None` (the
    /// default) means "cannot promise that", which disables record-level
    /// store persistence for the whole service — see [`crate::persist`].
    fn fingerprint(&self) -> Option<String> {
        None
    }
}

/// The execute stage: artifact in, runtime observation out.
pub trait ExecBackend: Send + Sync {
    /// Run one compiled artifact.
    fn execute(&self, item: &WorkItem, program: &Program) -> ExecSummary;

    /// A short human-readable backend name.
    fn name(&self) -> &'static str {
        "exec"
    }

    /// Configuration fingerprint; same contract as
    /// [`CompileBackend::fingerprint`].
    fn fingerprint(&self) -> Option<String> {
        None
    }
}

/// The judge stage: source plus stage evidence in, verdict out.
pub trait JudgeBackend: Send + Sync {
    /// Judge one work item given the evidence collected so far. `exec` is
    /// `None` when the file never produced an artifact; `signals` carries
    /// the compile stage's precomputed code signals when available.
    fn judge(
        &self,
        item: &WorkItem,
        compile: &CompileSummary,
        exec: Option<&ExecSummary>,
        signals: Option<&CodeSignals>,
    ) -> JudgeOutcome;

    /// A short human-readable backend name.
    fn name(&self) -> &'static str {
        "judge"
    }

    /// Configuration fingerprint; same contract as
    /// [`CompileBackend::fingerprint`].
    fn fingerprint(&self) -> Option<String> {
        None
    }
}

// ---------------------------------------------------------------------------
// default backends (the paper's simulated substrates)
// ---------------------------------------------------------------------------

/// Default compile backend: the simulated vendor compiler selected by the
/// item's [`vv_dclang::DirectiveModel`], driven through reusable
/// [`CompileSession`]s (one per concurrent worker, checked in and out of a
/// small pool) that share a content-addressed [`CompileCache`].
///
/// Cache hits return the memoized outcome object — byte-identical to a
/// fresh compile by construction (the compiler is deterministic and the key
/// covers everything it reads), and sharing the already-lowered execution
/// artifact and already-derived judge signals.
#[derive(Debug)]
pub struct SimCompileBackend {
    cache: Option<Arc<CompileCache>>,
    /// Durable disk tier under the memory cache, when attached; sessions
    /// are then built with the two-tier lookup (memory → disk → fresh).
    persistent: Option<Arc<PersistentCache>>,
    sessions: Mutex<HashMap<DirectiveModel, Vec<CompileSession>>>,
}

/// Sessions whose interner grew past this many distinct spellings are
/// retired instead of returned to the pool (pathological corpora with
/// unbounded fresh identifiers would otherwise grow the table forever).
pub(crate) const MAX_SESSION_SYMBOLS: usize = 1 << 20;

impl Default for SimCompileBackend {
    /// Caching backend with the default cache capacity.
    fn default() -> Self {
        Self::cached(CompileCache::shared())
    }
}

impl SimCompileBackend {
    /// A backend around an existing (possibly shared) compile cache.
    pub fn cached(cache: Arc<CompileCache>) -> Self {
        Self {
            cache: Some(cache),
            persistent: None,
            sessions: Mutex::new(HashMap::new()),
        }
    }

    /// A backend around a two-tier persistent cache: in-memory hits first,
    /// then the durable store, then a fresh compile feeding both tiers.
    pub fn persistent(persist: Arc<PersistentCache>) -> Self {
        Self {
            cache: Some(Arc::clone(persist.memory())),
            persistent: Some(persist),
            sessions: Mutex::new(HashMap::new()),
        }
    }

    /// A backend that compiles every file afresh (still session-interned;
    /// used as the baseline in benchmarks and for memory-austere runs).
    pub fn uncached() -> Self {
        Self {
            cache: None,
            persistent: None,
            sessions: Mutex::new(HashMap::new()),
        }
    }

    /// Compile-cache statistics, if a cache is attached.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// The persistent tier, if one is attached.
    pub fn persistent_cache(&self) -> Option<&Arc<PersistentCache>> {
        self.persistent.as_ref()
    }

    /// Check a session for `model` out of the pool (building a fresh one
    /// when the pool is empty). Long-lived compile workers lease a session
    /// once and drive it through [`SimCompileBackend::compile_with`] for
    /// their whole run instead of checking in and out per item — the
    /// pipelined executor's compile workers keep one leased session per
    /// model, so the per-case path never touches the pool lock. Pair with
    /// [`SimCompileBackend::return_session`] when the worker retires.
    pub fn take_session(&self, model: DirectiveModel) -> CompileSession {
        let mut pools = self
            .sessions
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        if let Some(session) = pools.get_mut(&model).and_then(Vec::pop) {
            return session;
        }
        drop(pools);
        let session = CompileSession::for_model(model);
        match (&self.persistent, &self.cache) {
            (Some(persist), _) => session.with_persistent_cache(Arc::clone(persist)),
            (None, Some(cache)) => session.with_cache(Arc::clone(cache)),
            (None, None) => session,
        }
    }

    /// Return a leased session to the pool, so the interner and buffers it
    /// warmed up serve the next lease. Oversized sessions are retired
    /// instead.
    pub fn return_session(&self, model: DirectiveModel, session: CompileSession) {
        if session.interner().len() > MAX_SESSION_SYMBOLS {
            return; // retire it; a fresh one is built on demand
        }
        let mut pools = self
            .sessions
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        pools.entry(model).or_default().push(session);
    }

    /// Compile one item through a caller-held session (leased for
    /// `item.model` via [`SimCompileBackend::take_session`]), bypassing the
    /// pool entirely. Byte-identical to [`CompileBackend::compile`] — the
    /// session only carries the interner and scratch buffers; every
    /// memoized outcome lives in the shared cache.
    pub fn compile_with(&self, session: &mut CompileSession, item: &WorkItem) -> CompileOutput {
        let (outcome, fetch) = session.compile_classified(&item.source, item.lang);
        // Derive the judge's code signals once per distinct source: the
        // outcome's analysis slot is shared by every cache hit.
        let signals = outcome
            .analysis
            .get_or_init_with(|| CodeSignals::of_source(&item.source, item.model));
        let succeeded = outcome.succeeded();
        CompileOutput {
            summary: CompileSummary {
                return_code: outcome.return_code,
                stdout: Arc::clone(&outcome.stdout),
                stderr: Arc::clone(&outcome.stderr),
                succeeded,
            },
            artifact: outcome.artifact.clone(),
            signals: Some(signals),
            fetch: self.cache.is_some().then_some(fetch),
        }
    }
}

impl CompileBackend for SimCompileBackend {
    fn compile(&self, item: &WorkItem) -> CompileOutput {
        let mut session = self.take_session(item.model);
        let output = self.compile_with(&mut session, item);
        self.return_session(item.model, session);
        output
    }

    fn name(&self) -> &'static str {
        "sim-compiler"
    }

    fn fingerprint(&self) -> Option<String> {
        // Sessions are always built via `CompileSession::for_model`: the
        // vendor and spec version are the per-model defaults, so the
        // configuration is a constant. The model itself (and the source)
        // is part of the record-store key, not the fingerprint.
        Some("sim-compiler/default-vendor-spec".to_owned())
    }
}

/// Default execute backend: the deterministic vv-simexec interpreter.
#[derive(Clone, Debug, Default)]
pub struct SimExecBackend {
    executor: Executor,
}

impl SimExecBackend {
    /// An execute backend with custom interpreter limits.
    pub fn new(config: ExecConfig) -> Self {
        Self {
            executor: Executor::new(config),
        }
    }
}

impl ExecBackend for SimExecBackend {
    fn execute(&self, _item: &WorkItem, program: &Program) -> ExecSummary {
        let outcome = self.executor.run(program);
        ExecSummary {
            return_code: outcome.return_code,
            stdout: outcome.stdout.into(),
            stderr: outcome.stderr.into(),
            passed: outcome.return_code == 0,
        }
    }

    fn name(&self) -> &'static str {
        "sim-exec"
    }

    fn fingerprint(&self) -> Option<String> {
        // The executor's Debug form covers its full configuration (the
        // interpreter limits), which is everything its output depends on
        // beyond the program itself.
        Some(format!("sim-exec/{:?}", self.executor))
    }
}

/// Default judge backend: the calibrated surrogate LLM judge, with the
/// compiler/runtime evidence embedded in the agent prompt exactly as in the
/// paper's Listing 2.
#[derive(Clone, Debug)]
pub struct SurrogateJudgeBackend {
    session: JudgeSession,
}

impl SurrogateJudgeBackend {
    /// Build from a calibration profile, prompt style and decision seed.
    pub fn new(profile: JudgeProfile, style: PromptStyle, seed: u64) -> Self {
        Self::from_session(JudgeSession::new(
            SurrogateLlmJudge::new(profile, seed),
            style,
        ))
    }

    /// Wrap an existing judging session.
    pub fn from_session(session: JudgeSession) -> Self {
        Self { session }
    }

    /// The wrapped session.
    pub fn session(&self) -> &JudgeSession {
        &self.session
    }
}

impl JudgeBackend for SurrogateJudgeBackend {
    fn judge(
        &self,
        item: &WorkItem,
        compile: &CompileSummary,
        exec: Option<&ExecSummary>,
        signals: Option<&CodeSignals>,
    ) -> JudgeOutcome {
        // `Arc<str>` captures: building the tool context is reference-count
        // bumps, not string copies — the judge reads the very same buffers
        // the record keeps.
        let tools = ToolContext {
            compile: Some(ToolRecord {
                return_code: compile.return_code,
                stdout: Arc::clone(&compile.stdout),
                stderr: Arc::clone(&compile.stderr),
            }),
            run: exec.map(|e| ToolRecord {
                return_code: e.return_code,
                stdout: Arc::clone(&e.stdout),
                stderr: Arc::clone(&e.stderr),
            }),
        };
        self.session
            .evaluate_precomputed(&item.source, item.model, Some(&tools), signals)
    }

    fn name(&self) -> &'static str {
        "surrogate-judge"
    }

    fn fingerprint(&self) -> Option<String> {
        // The session's Debug form spells out the calibration profile (name
        // and every reliability coefficient), the decision seed, the prompt
        // style and the inference cost model — the complete configuration
        // the judgement is a deterministic function of (besides the item
        // and stage evidence, which the record-store key covers).
        Some(format!("surrogate-judge/{:?}", self.session))
    }
}

/// A judge adapter that *realizes* the wrapped backend's simulated latency
/// as actual wall-clock time: after each judgement it sleeps
/// `latency_ms * scale` milliseconds on the judging worker's thread.
///
/// The surrogate judge computes in microseconds what the paper's
/// LLM-as-judge deployment spends seconds of network/GPU latency on (see
/// `vv_judge::inference` — the latency is modelled, not slept). That makes
/// single-thread throughput numbers unrepresentative of the deployment the
/// parallel executor exists for: with a remote judge, per-case latency is
/// wait, and worker concurrency converts it into throughput. Wrapping the
/// judge in `PacedJudge` (e.g. `scale = 0.001`, one *micro*second of sleep
/// per simulated millisecond ≈ a judge a thousand times faster than the
/// paper's) lets benchmarks measure exactly that conversion on any core
/// count.
///
/// Pacing changes timing only: the returned [`JudgeOutcome`] is the inner
/// backend's outcome, byte-identical, so every parity law still holds —
/// which is also why [`JudgeBackend::fingerprint`] passes through
/// unchanged (a stored record replays identically whether or not it was
/// produced under pacing).
pub struct PacedJudge {
    inner: Arc<dyn JudgeBackend>,
    scale: f64,
}

impl PacedJudge {
    /// Wrap `inner`, sleeping `latency_ms * scale` milliseconds per
    /// judgement (`scale = 1.0` reproduces the full simulated latency;
    /// non-finite or negative scales are treated as 0, i.e. no pacing).
    pub fn new(inner: Arc<dyn JudgeBackend>, scale: f64) -> Self {
        let scale = if scale.is_finite() {
            scale.max(0.0)
        } else {
            0.0
        };
        Self { inner, scale }
    }

    /// The pacing factor in effect.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl JudgeBackend for PacedJudge {
    fn judge(
        &self,
        item: &WorkItem,
        compile: &CompileSummary,
        exec: Option<&ExecSummary>,
        signals: Option<&CodeSignals>,
    ) -> JudgeOutcome {
        let outcome = self.inner.judge(item, compile, exec, signals);
        let pace_ms = outcome.latency_ms.max(0.0) * self.scale;
        if pace_ms > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(pace_ms / 1_000.0));
        }
        outcome
    }

    fn name(&self) -> &'static str {
        "paced-judge"
    }

    fn fingerprint(&self) -> Option<String> {
        self.inner.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vv_dclang::DirectiveModel;
    use vv_simcompiler::Lang;

    const VALID_ACC: &str = r#"
#include <stdio.h>
#include <stdlib.h>
#define N 32
int main() {
    double *a = (double *)malloc(N * sizeof(double));
    double *b = (double *)malloc(N * sizeof(double));
    for (int i = 0; i < N; i++) { a[i] = i * 0.5; b[i] = 0.0; }
#pragma acc parallel loop copyin(a[0:N]) copyout(b[0:N])
    for (int i = 0; i < N; i++) { b[i] = a[i] * 2.0; }
    int err = 0;
    for (int i = 0; i < N; i++) { if (b[i] != a[i] * 2.0) { err = err + 1; } }
    if (err != 0) { printf("Test failed\n"); return 1; }
    printf("Test passed\n");
    return 0;
}
"#;

    fn item(source: &str) -> WorkItem {
        WorkItem {
            id: "case".into(),
            source: source.into(),
            lang: Lang::C,
            model: DirectiveModel::OpenAcc,
        }
    }

    #[test]
    fn default_backends_chain_end_to_end() {
        let compile = SimCompileBackend::default();
        let exec = SimExecBackend::default();
        let judge = SurrogateJudgeBackend::new(
            JudgeProfile::deepseek_agent_direct(),
            PromptStyle::AgentDirect,
            7,
        );
        let work = item(VALID_ACC);
        let compiled = compile.compile(&work);
        assert!(
            compiled.summary.succeeded,
            "stderr: {}",
            compiled.summary.stderr
        );
        assert!(compiled.signals.is_some(), "signals precomputed");
        let program = compiled.artifact.expect("valid file produces an artifact");
        let ran = exec.execute(&work, &program);
        assert!(ran.passed, "stderr: {}", ran.stderr);
        let outcome = judge.judge(
            &work,
            &compiled.summary,
            Some(&ran),
            compiled.signals.as_deref(),
        );
        assert!(outcome.prompt.contains("Compiler return code: 0"));
        assert!(outcome.verdict.is_some());
    }

    #[test]
    fn judge_outcome_is_identical_with_and_without_signals() {
        let compile = SimCompileBackend::default();
        let exec = SimExecBackend::default();
        let judge = SurrogateJudgeBackend::new(
            JudgeProfile::deepseek_agent_direct(),
            PromptStyle::AgentDirect,
            7,
        );
        for source in [VALID_ACC, "int main() { return 0; }"] {
            let work = item(source);
            let compiled = compile.compile(&work);
            let ran = compiled
                .artifact
                .as_ref()
                .map(|program| exec.execute(&work, program));
            let fast = judge.judge(
                &work,
                &compiled.summary,
                ran.as_ref(),
                compiled.signals.as_deref(),
            );
            let slow = judge.judge(&work, &compiled.summary, ran.as_ref(), None);
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn compile_cache_hits_share_artifacts() {
        let backend = SimCompileBackend::default();
        let work = item(VALID_ACC);
        let _first = backend.compile(&work); // first touch: admission filter
        let second = backend.compile(&work); // admitted
        let third = backend.compile(&work); // hit
        let (a, b) = (second.artifact.unwrap(), third.artifact.unwrap());
        assert!(Arc::ptr_eq(&a.unit, &b.unit), "AST is shared across hits");
        assert!(Arc::ptr_eq(
            &second.signals.unwrap(),
            &third.signals.unwrap()
        ));
        let stats = backend.cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (1, 2));
    }

    #[test]
    fn uncached_backend_still_precomputes_signals() {
        let backend = SimCompileBackend::uncached();
        assert!(backend.cache_stats().is_none());
        let compiled = backend.compile(&item(VALID_ACC));
        assert!(compiled.summary.succeeded);
        assert!(compiled.signals.is_some());
    }

    #[test]
    fn failed_compiles_produce_no_artifact() {
        let compiled = SimCompileBackend::default().compile(&item("int main( { return 0; }"));
        assert!(!compiled.summary.succeeded);
        assert!(compiled.artifact.is_none());
    }

    #[test]
    fn paced_judge_changes_timing_not_bytes() {
        let inner: Arc<dyn JudgeBackend> = Arc::new(SurrogateJudgeBackend::new(
            JudgeProfile::deepseek_agent_direct(),
            PromptStyle::AgentDirect,
            7,
        ));
        let paced = PacedJudge::new(Arc::clone(&inner), 1e-6);
        let work = item(VALID_ACC);
        let compiled = SimCompileBackend::default().compile(&work);
        let plain = inner.judge(&work, &compiled.summary, None, compiled.signals.as_deref());
        let slept = paced.judge(&work, &compiled.summary, None, compiled.signals.as_deref());
        assert_eq!(plain, slept, "pacing must not change the outcome");
        assert_eq!(paced.fingerprint(), inner.fingerprint());
        // Degenerate scales clamp to "no pacing" instead of panicking in
        // Duration::from_secs_f64.
        assert_eq!(PacedJudge::new(Arc::clone(&inner), f64::NAN).scale(), 0.0);
        assert_eq!(PacedJudge::new(inner, -3.0).scale(), 0.0);
    }

    #[test]
    fn leased_sessions_compile_identically_to_the_pool_path() {
        let backend = SimCompileBackend::default();
        let work = item(VALID_ACC);
        let mut session = backend.take_session(work.model);
        let leased = backend.compile_with(&mut session, &work);
        backend.return_session(work.model, session);
        let pooled = backend.compile(&work);
        assert_eq!(leased.summary, pooled.summary);
        assert_eq!(
            leased.signals.as_deref().map(|s| format!("{s:?}")),
            pooled.signals.as_deref().map(|s| format!("{s:?}"))
        );
    }

    #[test]
    fn backend_names_are_distinct() {
        let names = [
            CompileBackend::name(&SimCompileBackend::default()),
            ExecBackend::name(&SimExecBackend::default()),
            JudgeBackend::name(&SurrogateJudgeBackend::new(
                JudgeProfile::oracle(),
                PromptStyle::AgentDirect,
                0,
            )),
        ];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            names.len()
        );
    }
}
