//! Pluggable stage backends.
//!
//! Each pipeline stage is an object-safe trait, so alternative
//! implementations — a real compiler shell-out, a caching executor, a second
//! judge profile, a remote judge service — can be plugged into
//! [`crate::ValidationService`] without touching the runner:
//!
//! * [`CompileBackend`] — turns a [`WorkItem`] into a [`CompileSummary`]
//!   plus an optional executable artifact;
//! * [`ExecBackend`] — runs an artifact and reports an [`ExecSummary`];
//! * [`JudgeBackend`] — produces a [`JudgeOutcome`] from the source and the
//!   collected stage evidence.
//!
//! The default implementations wrap the simulated substrates the paper's
//! reproduction is built on: [`SimCompileBackend`] (vv-simcompiler),
//! [`SimExecBackend`] (vv-simexec) and [`SurrogateJudgeBackend`]
//! (vv-judge's calibrated surrogate model).

use std::sync::Arc;

use crate::{CompileSummary, ExecSummary, WorkItem};
use vv_judge::{
    JudgeOutcome, JudgeProfile, JudgeSession, PromptStyle, SurrogateLlmJudge, ToolContext,
    ToolRecord,
};
use vv_simcompiler::{compiler_for, Program};
use vv_simexec::{ExecConfig, Executor};

/// The result of a compile backend call: the summary recorded in the
/// [`crate::CaseRecord`] plus the artifact handed to the execute stage.
#[derive(Clone, Debug)]
pub struct CompileOutput {
    /// Exit code, captured output, success flag.
    pub summary: CompileSummary,
    /// The executable artifact, present only on success.
    pub artifact: Option<Program>,
}

/// The compile stage: source text in, diagnostics and artifact out.
///
/// Implementations must be thread-safe — the service calls them from
/// multiple stage workers concurrently.
pub trait CompileBackend: Send + Sync {
    /// Compile one work item.
    fn compile(&self, item: &WorkItem) -> CompileOutput;

    /// A short human-readable backend name (for logs and stats displays).
    fn name(&self) -> &'static str {
        "compile"
    }
}

/// The execute stage: artifact in, runtime observation out.
pub trait ExecBackend: Send + Sync {
    /// Run one compiled artifact.
    fn execute(&self, item: &WorkItem, program: &Program) -> ExecSummary;

    /// A short human-readable backend name.
    fn name(&self) -> &'static str {
        "exec"
    }
}

/// The judge stage: source plus stage evidence in, verdict out.
pub trait JudgeBackend: Send + Sync {
    /// Judge one work item given the evidence collected so far. `exec` is
    /// `None` when the file never produced an artifact.
    fn judge(
        &self,
        item: &WorkItem,
        compile: &CompileSummary,
        exec: Option<&ExecSummary>,
    ) -> JudgeOutcome;

    /// A short human-readable backend name.
    fn name(&self) -> &'static str {
        "judge"
    }
}

// ---------------------------------------------------------------------------
// default backends (the paper's simulated substrates)
// ---------------------------------------------------------------------------

/// Default compile backend: the simulated vendor compiler selected by the
/// item's [`vv_dclang::DirectiveModel`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SimCompileBackend;

impl CompileBackend for SimCompileBackend {
    fn compile(&self, item: &WorkItem) -> CompileOutput {
        let compiler = compiler_for(item.model);
        let outcome = compiler.compile(&item.source, item.lang);
        // Move the captured text out of the outcome (no clone); the
        // summary's Arc<str> is then shared with the judge stage.
        let succeeded = outcome.succeeded();
        CompileOutput {
            summary: CompileSummary {
                return_code: outcome.return_code,
                stdout: outcome.stdout.into(),
                stderr: outcome.stderr.into(),
                succeeded,
            },
            artifact: outcome.artifact,
        }
    }

    fn name(&self) -> &'static str {
        "sim-compiler"
    }
}

/// Default execute backend: the deterministic vv-simexec interpreter.
#[derive(Clone, Debug, Default)]
pub struct SimExecBackend {
    executor: Executor,
}

impl SimExecBackend {
    /// An execute backend with custom interpreter limits.
    pub fn new(config: ExecConfig) -> Self {
        Self {
            executor: Executor::new(config),
        }
    }
}

impl ExecBackend for SimExecBackend {
    fn execute(&self, _item: &WorkItem, program: &Program) -> ExecSummary {
        let outcome = self.executor.run(program);
        ExecSummary {
            return_code: outcome.return_code,
            stdout: outcome.stdout.into(),
            stderr: outcome.stderr.into(),
            passed: outcome.return_code == 0,
        }
    }

    fn name(&self) -> &'static str {
        "sim-exec"
    }
}

/// Default judge backend: the calibrated surrogate LLM judge, with the
/// compiler/runtime evidence embedded in the agent prompt exactly as in the
/// paper's Listing 2.
#[derive(Clone, Debug)]
pub struct SurrogateJudgeBackend {
    session: JudgeSession,
}

impl SurrogateJudgeBackend {
    /// Build from a calibration profile, prompt style and decision seed.
    pub fn new(profile: JudgeProfile, style: PromptStyle, seed: u64) -> Self {
        Self::from_session(JudgeSession::new(
            SurrogateLlmJudge::new(profile, seed),
            style,
        ))
    }

    /// Wrap an existing judging session.
    pub fn from_session(session: JudgeSession) -> Self {
        Self { session }
    }

    /// The wrapped session.
    pub fn session(&self) -> &JudgeSession {
        &self.session
    }
}

impl JudgeBackend for SurrogateJudgeBackend {
    fn judge(
        &self,
        item: &WorkItem,
        compile: &CompileSummary,
        exec: Option<&ExecSummary>,
    ) -> JudgeOutcome {
        // `Arc<str>` captures: building the tool context is reference-count
        // bumps, not string copies — the judge reads the very same buffers
        // the record keeps.
        let tools = ToolContext {
            compile: Some(ToolRecord {
                return_code: compile.return_code,
                stdout: Arc::clone(&compile.stdout),
                stderr: Arc::clone(&compile.stderr),
            }),
            run: exec.map(|e| ToolRecord {
                return_code: e.return_code,
                stdout: Arc::clone(&e.stdout),
                stderr: Arc::clone(&e.stderr),
            }),
        };
        self.session
            .evaluate(&item.source, item.model, Some(&tools))
    }

    fn name(&self) -> &'static str {
        "surrogate-judge"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vv_dclang::DirectiveModel;
    use vv_simcompiler::Lang;

    const VALID_ACC: &str = r#"
#include <stdio.h>
#include <stdlib.h>
#define N 32
int main() {
    double *a = (double *)malloc(N * sizeof(double));
    double *b = (double *)malloc(N * sizeof(double));
    for (int i = 0; i < N; i++) { a[i] = i * 0.5; b[i] = 0.0; }
#pragma acc parallel loop copyin(a[0:N]) copyout(b[0:N])
    for (int i = 0; i < N; i++) { b[i] = a[i] * 2.0; }
    int err = 0;
    for (int i = 0; i < N; i++) { if (b[i] != a[i] * 2.0) { err = err + 1; } }
    if (err != 0) { printf("Test failed\n"); return 1; }
    printf("Test passed\n");
    return 0;
}
"#;

    fn item(source: &str) -> WorkItem {
        WorkItem {
            id: "case".into(),
            source: source.into(),
            lang: Lang::C,
            model: DirectiveModel::OpenAcc,
        }
    }

    #[test]
    fn default_backends_chain_end_to_end() {
        let compile = SimCompileBackend;
        let exec = SimExecBackend::default();
        let judge = SurrogateJudgeBackend::new(
            JudgeProfile::deepseek_agent_direct(),
            PromptStyle::AgentDirect,
            7,
        );
        let work = item(VALID_ACC);
        let compiled = compile.compile(&work);
        assert!(
            compiled.summary.succeeded,
            "stderr: {}",
            compiled.summary.stderr
        );
        let program = compiled.artifact.expect("valid file produces an artifact");
        let ran = exec.execute(&work, &program);
        assert!(ran.passed, "stderr: {}", ran.stderr);
        let outcome = judge.judge(&work, &compiled.summary, Some(&ran));
        assert!(outcome.prompt.contains("Compiler return code: 0"));
        assert!(outcome.verdict.is_some());
    }

    #[test]
    fn failed_compiles_produce_no_artifact() {
        let compiled = SimCompileBackend.compile(&item("int main( { return 0; }"));
        assert!(!compiled.summary.succeeded);
        assert!(compiled.artifact.is_none());
    }

    #[test]
    fn backend_names_are_distinct() {
        let names = [
            CompileBackend::name(&SimCompileBackend),
            ExecBackend::name(&SimExecBackend::default()),
            JudgeBackend::name(&SurrogateJudgeBackend::new(
                JudgeProfile::oracle(),
                PromptStyle::AgentDirect,
                0,
            )),
        ];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            names.len()
        );
    }
}
