//! The validation service: one entry point for every execution strategy,
//! with pluggable stage backends and streaming results.
//!
//! [`ValidationService`] replaces the three hardcoded runner methods of the
//! old `ValidationPipeline`. It is constructed through
//! [`ValidationServiceBuilder`] and offers two ways to consume results:
//!
//! * [`ValidationService::run`] — batch: process a `Vec<WorkItem>` and get a
//!   [`PipelineRun`] with records in submission order plus aggregate stats;
//! * [`ValidationService::submit`] — streaming: feed any iterator of work
//!   items and receive an iterator of [`CaseRecord`]s that yields each
//!   record *as it completes*. Items flow through bounded channels, so the
//!   suite can be arbitrarily large while memory stays constant.
//!
//! All four execution strategies share identical per-file semantics and
//! therefore produce identical records for identical inputs (asserted by
//! the strategy-parity tests); they differ only in scheduling.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::backend::{
    CompileBackend, CompileOutput, ExecBackend, JudgeBackend, PacedJudge, SimCompileBackend,
    SimExecBackend, SurrogateJudgeBackend,
};
use crate::persist::RecordStore;
use crate::runner::PipelineRun;
use crate::stats::PipelineStats;
use crate::{CaseRecord, CompileSummary, PipelineConfig, PipelineMode, WorkItem};
use vv_corpus::CaseSource;
use vv_judge::{JudgeProfile, PromptStyle};
use vv_simcompiler::{CacheAdmission, CompileCache, CompileFetch, PersistentCache};
use vv_store::ArtifactStore;

/// How the service schedules the per-file work.
///
/// All strategies share identical per-file semantics and produce
/// byte-identical records for identical inputs (the strategy-parity laws);
/// they differ only in scheduling, so choosing one is purely a
/// throughput/latency/footprint decision:
///
/// * [`Staged`](Self::Staged) — fixed per-stage pools sized by
///   [`PipelineConfig`]. Best when per-stage costs are known and stable,
///   and when you want hard per-stage concurrency limits (e.g. "at most 2
///   concurrent judge calls" to respect an external rate limit).
/// * [`Sequential`](Self::Sequential) — one thread, submission order,
///   no scheduling noise. The baseline for ablations and the right choice
///   for debugging and for tiny batches where thread spawn overhead
///   dominates.
/// * [`RayonBatch`](Self::RayonBatch) — whole-case workers: parallel but
///   not pipelined. Simple and effective when cases are uniform and no
///   per-stage limits are needed; a slow stage of one case never blocks a
///   different stage of another, because workers make no attempt to
///   specialize.
/// * [`Pipelined`](Self::Pipelined) — stage-pipelined work stealing: a
///   single elastic pool where each worker prefers a home stage but steals
///   any ready work, with lazy input admission and an ordered output
///   stream. Best sustained throughput on mixed workloads and the only
///   strategy whose stream yields records in *submission* order; prefer it
///   when scaling across cores matters more than hard per-stage caps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecutionStrategy {
    /// The paper's Figure-2 design: one worker pool per stage, connected by
    /// bounded channels (backpressure included). Files that fail an early
    /// stage never occupy a slot in the expensive judge pool.
    #[default]
    Staged,
    /// One worker processes every file through all stages, in submission
    /// order. The baseline for the ablation benchmarks.
    Sequential,
    /// Batch parallelism: each worker runs all stages for one file
    /// ("parallel but not pipelined"). The worker count is the sum of the
    /// three stage pools, so `workers(...)` budgets comparably across
    /// strategies. The name is kept from the rayon-based runner this
    /// scheduling mode replaces (the ablation benchmarks' terminology);
    /// the implementation uses the service's own worker threads.
    RayonBatch,
    /// Stage-pipelined work stealing over `workers` threads (`0` = one per
    /// available core): per-worker home stages sized to measured stage
    /// cost, stealing across stages, lazy input admission bounded by an
    /// in-flight window, and a reorder buffer so the stream yields records
    /// in submission order. See [`crate::parallel`] for the design.
    Pipelined {
        /// Worker thread count; `0` resolves to
        /// `std::thread::available_parallelism()`.
        workers: usize,
    },
}

impl ExecutionStrategy {
    /// All strategies, in display order (`Pipelined` at its auto-sized
    /// worker count).
    pub const ALL: [ExecutionStrategy; 4] = [
        ExecutionStrategy::Staged,
        ExecutionStrategy::Sequential,
        ExecutionStrategy::RayonBatch,
        ExecutionStrategy::Pipelined { workers: 0 },
    ];

    /// A short label for tables and logs.
    pub fn label(&self) -> &'static str {
        match self {
            ExecutionStrategy::Staged => "staged",
            ExecutionStrategy::Sequential => "sequential",
            ExecutionStrategy::RayonBatch => "batch parallel",
            ExecutionStrategy::Pipelined { .. } => "pipelined",
        }
    }
}

/// Builder for [`ValidationService`].
///
/// ```
/// use vv_pipeline::{ExecutionStrategy, PipelineMode, ValidationService};
///
/// let service = ValidationService::builder()
///     .mode(PipelineMode::RecordAll)
///     .workers(2, 2, 1)
///     .strategy(ExecutionStrategy::Staged)
///     .build();
/// let run = service.run(Vec::new());
/// assert_eq!(run.stats.submitted, 0);
/// ```
#[derive(Clone, Default)]
pub struct ValidationServiceBuilder {
    config: PipelineConfig,
    strategy: ExecutionStrategy,
    compile: Option<Arc<dyn CompileBackend>>,
    /// Concrete handle kept alongside `compile` when the compile backend is
    /// the default simulated one, so the pipelined executor can lease
    /// per-worker sessions instead of round-tripping the pool per case.
    sim_compile: Option<Arc<SimCompileBackend>>,
    exec: Option<Arc<dyn ExecBackend>>,
    judge: Option<Arc<dyn JudgeBackend>>,
    store: Option<Arc<ArtifactStore>>,
    cache_capacity: Option<usize>,
    cache_admission: Option<CacheAdmission>,
    cache_shards: Option<usize>,
    judge_pacing: Option<f64>,
}

impl ValidationServiceBuilder {
    /// Start from an existing [`PipelineConfig`].
    pub fn config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// Early-exit (production) or record-all (experimental) mode.
    pub fn mode(mut self, mode: PipelineMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Worker counts for the compile, execute and judge pools.
    pub fn workers(mut self, compile: usize, exec: usize, judge: usize) -> Self {
        self.config.compile_workers = compile;
        self.config.exec_workers = exec;
        self.config.judge_workers = judge;
        self
    }

    /// Capacity of the bounded inter-stage channels.
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        self.config.channel_capacity = capacity;
        self
    }

    /// Scheduling strategy (staged pipeline, sequential, batch parallel, or
    /// the pipelined work-stealing executor); see [`ExecutionStrategy`] for
    /// when each is appropriate.
    pub fn strategy(mut self, strategy: ExecutionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Prompt style for the default judge backend.
    pub fn judge_style(mut self, style: PromptStyle) -> Self {
        self.config.judge_style = style;
        self
    }

    /// Calibration profile for the default judge backend.
    pub fn judge_profile(mut self, profile: JudgeProfile) -> Self {
        self.config.judge_profile = profile;
        self
    }

    /// Decision seed for the default judge backend.
    pub fn judge_seed(mut self, seed: u64) -> Self {
        self.config.judge_seed = seed;
        self
    }

    /// Use the indirect-analysis judge (LLMJ 2 / Pipeline 2 in the paper).
    pub fn indirect_judge(self) -> Self {
        self.judge_style(PromptStyle::AgentIndirect)
            .judge_profile(JudgeProfile::deepseek_agent_indirect())
    }

    /// Plug in a custom compile backend.
    pub fn compile_backend(mut self, backend: impl CompileBackend + 'static) -> Self {
        self.compile = Some(Arc::new(backend));
        self.sim_compile = None;
        self
    }

    /// Plug in a simulated compile backend, keeping the concrete handle so
    /// strategies that can exploit it (per-worker session leases in the
    /// pipelined executor) do so.
    fn sim_compile_backend(mut self, backend: SimCompileBackend) -> Self {
        let backend = Arc::new(backend);
        self.sim_compile = Some(Arc::clone(&backend));
        self.compile = Some(backend);
        self
    }

    /// Compile through a shared content-addressed compile cache (a
    /// [`SimCompileBackend`] around `cache`). Several services — e.g. the
    /// scenarios of a campaign that re-run identical corpus shards — can
    /// share one cache and compile each distinct source once between them.
    pub fn compile_cache(self, cache: Arc<vv_simcompiler::CompileCache>) -> Self {
        self.sim_compile_backend(SimCompileBackend::cached(cache))
    }

    /// Compile every file afresh (no content-addressed cache); the
    /// benchmark baseline and the choice for memory-austere deployments.
    pub fn uncached_compile(self) -> Self {
        self.sim_compile_backend(SimCompileBackend::uncached())
    }

    /// Compile through a two-tier persistent cache (memory over a durable
    /// store); see [`vv_simcompiler::PersistentCache`]. This only covers
    /// the compile stage — pair it with [`Self::artifact_store`] (usually
    /// over the same store) for whole-record persistence.
    pub fn persistent_compile(self, persist: Arc<PersistentCache>) -> Self {
        self.sim_compile_backend(SimCompileBackend::persistent(persist))
    }

    /// Capacity of the *default* compile cache's hot generation (total
    /// retention is bounded by twice this; see
    /// [`vv_simcompiler::CacheAdmission`] for the eviction scheme). Ignored
    /// when an explicit compile backend is plugged in.
    pub fn compile_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Admission policy of the *default* compile cache:
    /// [`CacheAdmission::SecondTouch`] (the default — an address must
    /// recur before its outcome is memoized, so single-use sources never
    /// consume capacity) or [`CacheAdmission::FirstTouch`] (memoize
    /// immediately — better for small working sets known to recur).
    /// Ignored when an explicit compile backend is plugged in.
    pub fn compile_cache_admission(mut self, admission: CacheAdmission) -> Self {
        self.cache_admission = Some(admission);
        self
    }

    /// Shard count of the *default* compile cache (`0` = the library
    /// default, [`vv_simcompiler::DEFAULT_CACHE_SHARDS`]). Each shard has
    /// its own lock and hit/miss counters, so concurrent compile workers
    /// contend only when their sources hash to the same shard;
    /// [`vv_simcompiler::CompileCache::stats`] still reports the merged
    /// totals. Use `1` to restore the single-lock layout. Ignored when an
    /// explicit compile backend or cache is plugged in.
    pub fn compile_cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = Some(shards);
        self
    }

    /// Pace the judge stage: sleep `latency_ms × scale` after every
    /// judgement, realizing the simulated latency as wall-clock time (see
    /// [`crate::backend::PacedJudge`]). `0.0` disables pacing. Applied
    /// around whichever judge backend is in effect, custom or default;
    /// records are unchanged — only timing is.
    pub fn judge_pacing(mut self, scale: f64) -> Self {
        self.judge_pacing = Some(scale);
        self
    }

    /// Attach a durable artifact store. Two layers light up:
    ///
    /// * the *default* compile backend becomes persistent (memory cache
    ///   over this store), so recurring sources skip the frontend across
    ///   processes;
    /// * if every stage backend states a configuration fingerprint (the
    ///   defaults all do), completed [`CaseRecord`]s are persisted under
    ///   `(mode, fingerprints, model, lang, source)` and replayed wholesale
    ///   on re-runs — see [`crate::persist::RecordStore`].
    pub fn artifact_store(mut self, store: Arc<ArtifactStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Plug in a custom execute backend.
    pub fn exec_backend(mut self, backend: impl ExecBackend + 'static) -> Self {
        self.exec = Some(Arc::new(backend));
        self
    }

    /// Plug in a custom judge backend (replaces the surrogate judge that
    /// would otherwise be built from the config's style/profile/seed).
    pub fn judge_backend(mut self, backend: impl JudgeBackend + 'static) -> Self {
        self.judge = Some(Arc::new(backend));
        self
    }

    /// Finalize the service. Unset backends fall back to the simulated
    /// substrates configured by the [`PipelineConfig`].
    pub fn build(self) -> ValidationService {
        let mut judge = self.judge.unwrap_or_else(|| {
            Arc::new(SurrogateJudgeBackend::new(
                self.config.judge_profile.clone(),
                self.config.judge_style,
                self.config.judge_seed,
            ))
        });
        if let Some(scale) = self.judge_pacing.filter(|s| *s > 0.0) {
            judge = Arc::new(PacedJudge::new(judge, scale));
        }
        let exec = self
            .exec
            .unwrap_or_else(|| Arc::new(SimExecBackend::default()));
        let mut sim_compile = self.sim_compile;
        let compile: Arc<dyn CompileBackend> = match self.compile {
            Some(backend) => backend,
            None => {
                let cache = if self.cache_capacity.is_none()
                    && self.cache_admission.is_none()
                    && self.cache_shards.is_none()
                {
                    CompileCache::shared()
                } else {
                    Arc::new(CompileCache::with_shards(
                        self.cache_capacity
                            .unwrap_or(vv_simcompiler::cache::DEFAULT_CACHE_CAPACITY),
                        self.cache_admission.unwrap_or_default(),
                        self.cache_shards.unwrap_or(0),
                    ))
                };
                let backend = Arc::new(match &self.store {
                    Some(store) => SimCompileBackend::persistent(Arc::new(PersistentCache::new(
                        cache,
                        Arc::clone(store),
                    ))),
                    None => SimCompileBackend::cached(cache),
                });
                sim_compile = Some(Arc::clone(&backend));
                backend
            }
        };
        // Whole-record persistence requires every stage to pin its
        // configuration; one abstaining backend disables the layer.
        let record_store = self.store.as_ref().and_then(|store| {
            let compile_fp = compile.fingerprint()?;
            let exec_fp = exec.fingerprint()?;
            let judge_fp = judge.fingerprint()?;
            Some(Arc::new(RecordStore::new(
                Arc::clone(store),
                self.config.mode,
                &compile_fp,
                &exec_fp,
                &judge_fp,
            )))
        });
        ValidationService {
            config: self.config,
            strategy: self.strategy,
            compile,
            sim_compile,
            exec,
            judge,
            record_store,
        }
    }
}

/// The validation service (see the module docs).
#[derive(Clone)]
pub struct ValidationService {
    config: PipelineConfig,
    strategy: ExecutionStrategy,
    compile: Arc<dyn CompileBackend>,
    /// The same backend as `compile` when it is the default simulated one
    /// (strategies that can lease per-worker sessions use this handle);
    /// `None` for custom backends.
    sim_compile: Option<Arc<SimCompileBackend>>,
    exec: Arc<dyn ExecBackend>,
    judge: Arc<dyn JudgeBackend>,
    /// Whole-record persistence layer, when an artifact store is attached
    /// and every backend pins its configuration.
    record_store: Option<Arc<RecordStore>>,
}

impl std::fmt::Debug for ValidationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ValidationService")
            .field("config", &self.config)
            .field("strategy", &self.strategy)
            .field("compile", &self.compile.name())
            .field("exec", &self.exec.name())
            .field("judge", &self.judge.name())
            .finish()
    }
}

impl Default for ValidationService {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl ValidationService {
    /// A builder with default config, strategy and backends.
    pub fn builder() -> ValidationServiceBuilder {
        ValidationServiceBuilder::default()
    }

    /// A service with the given config and default backends/strategy.
    pub fn new(config: PipelineConfig) -> Self {
        Self::builder().config(config).build()
    }

    /// The effective configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The scheduling strategy in effect.
    pub fn strategy(&self) -> ExecutionStrategy {
        self.strategy
    }

    /// The whole-record persistence layer, when active (an artifact store
    /// was attached and every stage backend stated a fingerprint). The
    /// campaign delta planner probes this to split a corpus into
    /// already-stored and fresh work.
    pub fn record_store(&self) -> Option<&Arc<RecordStore>> {
        self.record_store.as_ref()
    }

    /// Batch entry point: run `items` to completion and return the records
    /// in submission order plus aggregate statistics.
    pub fn run(&self, items: Vec<WorkItem>) -> PipelineRun {
        let stream = self.submit(items);
        stream.into_run()
    }

    /// Streaming entry point for corpus pipelines: drain a
    /// [`CaseSource`] directly. Generation (and probing, when the source
    /// includes a `probe` stage) happens lazily on the feeder thread as the
    /// bounded channels demand more work, so generation → compile → execute
    /// → judge runs end-to-end in constant memory — the suite is never
    /// materialized, whatever its size.
    pub fn submit_source<S>(&self, source: S) -> RecordStream
    where
        S: CaseSource + Send + 'static,
    {
        self.submit(source.into_cases().map(WorkItem::from))
    }

    /// Drain a [`CaseSource`] to completion and return the records in
    /// stream order plus aggregate statistics (the batch counterpart of
    /// [`ValidationService::submit_source`]). The records are materialized,
    /// so prefer `submit_source` for very large corpora.
    pub fn run_source<S>(&self, source: S) -> PipelineRun
    where
        S: CaseSource + Send + 'static,
    {
        self.submit_source(source).into_run()
    }

    /// Streaming entry point: feed an iterator of work items, get an
    /// iterator of records that yields each one *as it completes* (not in
    /// submission order). Backpressure through the bounded channels keeps
    /// memory constant for arbitrarily large suites.
    pub fn submit<I>(&self, items: I) -> RecordStream
    where
        I: IntoIterator<Item = WorkItem>,
        I::IntoIter: Send + 'static,
    {
        let started = Instant::now();
        let stats = Arc::new(Mutex::new(PipelineStats::default()));
        let capacity = self.config.channel_capacity.max(1);
        let (tx_done, rx_done) = bounded::<(usize, CaseRecord)>(capacity);
        let handles = match self.strategy {
            ExecutionStrategy::Staged => {
                self.spawn_staged(items.into_iter(), tx_done, &stats, capacity)
            }
            ExecutionStrategy::Sequential => {
                self.spawn_batch(items.into_iter(), tx_done, &stats, capacity, 1)
            }
            ExecutionStrategy::RayonBatch => {
                let workers = (self.config.compile_workers
                    + self.config.exec_workers
                    + self.config.judge_workers)
                    .max(1);
                self.spawn_batch(items.into_iter(), tx_done, &stats, capacity, workers)
            }
            ExecutionStrategy::Pipelined { workers } => {
                let workers = if workers == 0 {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                } else {
                    workers
                };
                let spec = crate::parallel::PipelineSpec {
                    mode: self.config.mode,
                    compile: Arc::clone(&self.compile),
                    sim_compile: self.sim_compile.clone(),
                    exec: Arc::clone(&self.exec),
                    judge: Arc::clone(&self.judge),
                    record_store: self.record_store.clone(),
                };
                crate::parallel::spawn(spec, items.into_iter(), tx_done, &stats, capacity, workers)
            }
        };
        RecordStream {
            rx: Some(rx_done),
            stats,
            handles,
            started,
            finished: None,
            record_store: self.record_store.clone(),
        }
    }

    /// The staged Figure-2 topology: feeder → compile pool → execute pool →
    /// judge pool, all connected by bounded channels; every stage can also
    /// short-circuit to the done channel in early-exit mode.
    fn spawn_staged(
        &self,
        items: impl Iterator<Item = WorkItem> + Send + 'static,
        tx_done: Sender<(usize, CaseRecord)>,
        stats: &Arc<Mutex<PipelineStats>>,
        capacity: usize,
    ) -> Vec<JoinHandle<()>> {
        struct AfterCompile {
            index: usize,
            item: WorkItem,
            compile: CompileSummary,
            artifact: Option<vv_simcompiler::Program>,
            signals: Option<Arc<vv_judge::CodeSignals>>,
        }
        struct AfterExec {
            index: usize,
            item: WorkItem,
            compile: CompileSummary,
            exec: Option<crate::ExecSummary>,
            signals: Option<Arc<vv_judge::CodeSignals>>,
        }

        let mode = self.config.mode;
        let mut handles = Vec::new();

        let (tx_items, rx_items) = bounded::<(usize, WorkItem)>(capacity);
        let (tx_compiled, rx_compiled) = bounded::<AfterCompile>(capacity);
        let (tx_executed, rx_executed) = bounded::<AfterExec>(capacity);

        // Feeder: pulls lazily from the caller's iterator, so only
        // `capacity` items are ever in flight per stage.
        {
            let stats = Arc::clone(stats);
            handles.push(std::thread::spawn(move || {
                for (index, item) in items.enumerate() {
                    stats.lock().submitted += 1;
                    if tx_items.send((index, item)).is_err() {
                        break;
                    }
                }
            }));
        }

        // Compile stage. Also the store layer's probe point: a stored
        // record short-circuits every stage, so hits never occupy a slot
        // downstream.
        for _ in 0..self.config.compile_workers.max(1) {
            let rx = rx_items.clone();
            let tx_next = tx_compiled.clone();
            let tx_done = tx_done.clone();
            let stats = Arc::clone(stats);
            let backend = Arc::clone(&self.compile);
            let record_store = self.record_store.clone();
            handles.push(std::thread::spawn(move || {
                for (index, item) in rx.iter() {
                    if let Some(store) = &record_store {
                        if let Some(record) = store.lookup(&item) {
                            {
                                let mut s = stats.lock();
                                s.store_hits += 1;
                                // Replay the stored stages into the
                                // aggregates, so hit-heavy runs report the
                                // same stage counters as cold ones.
                                s.observe_record(&record);
                            }
                            if tx_done.send((index, record)).is_err() {
                                break;
                            }
                            continue;
                        }
                        stats.lock().store_misses += 1;
                    }
                    let CompileOutput {
                        summary: compile,
                        artifact,
                        signals,
                        fetch,
                    } = backend.compile(&item);
                    {
                        let mut s = stats.lock();
                        s.compiled += 1;
                        if !compile.succeeded {
                            s.compile_failures += 1;
                        }
                        match fetch {
                            Some(CompileFetch::Fresh) => s.compile_cache_misses += 1,
                            Some(_) => s.compile_cache_hits += 1,
                            None => {}
                        }
                    }
                    if !compile.succeeded && mode == PipelineMode::EarlyExit {
                        let record = CaseRecord {
                            id: item.id.clone(),
                            compile,
                            exec: None,
                            judgement: None,
                        };
                        if let Some(store) = &record_store {
                            store.persist(&item, &record);
                        }
                        // A failed send means the consumer is gone; stop and
                        // let the dropped receiver cancel the stages above.
                        if tx_done.send((index, record)).is_err() {
                            break;
                        }
                        continue;
                    }
                    if tx_next
                        .send(AfterCompile {
                            index,
                            item,
                            compile,
                            artifact,
                            signals,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
            }));
        }
        drop(tx_compiled);
        drop(rx_items);

        // Execute stage.
        for _ in 0..self.config.exec_workers.max(1) {
            let rx = rx_compiled.clone();
            let tx_next = tx_executed.clone();
            let tx_done = tx_done.clone();
            let stats = Arc::clone(stats);
            let backend = Arc::clone(&self.exec);
            let record_store = self.record_store.clone();
            handles.push(std::thread::spawn(move || {
                for msg in rx.iter() {
                    let exec = msg
                        .artifact
                        .as_ref()
                        .map(|program| backend.execute(&msg.item, program));
                    if exec.is_some() {
                        let mut s = stats.lock();
                        s.executed += 1;
                        if exec.as_ref().is_some_and(|e| !e.passed) {
                            s.exec_failures += 1;
                        }
                    }
                    let failed = exec.as_ref().is_none_or(|e| !e.passed);
                    if failed && mode == PipelineMode::EarlyExit {
                        let record = CaseRecord {
                            id: msg.item.id.clone(),
                            compile: msg.compile,
                            exec,
                            judgement: None,
                        };
                        if let Some(store) = &record_store {
                            store.persist(&msg.item, &record);
                        }
                        if tx_done.send((msg.index, record)).is_err() {
                            break;
                        }
                        continue;
                    }
                    let next = AfterExec {
                        index: msg.index,
                        item: msg.item,
                        compile: msg.compile,
                        exec,
                        signals: msg.signals,
                    };
                    if tx_next.send(next).is_err() {
                        break;
                    }
                }
            }));
        }
        drop(tx_executed);
        drop(rx_compiled);

        // Judge stage.
        for _ in 0..self.config.judge_workers.max(1) {
            let rx = rx_executed.clone();
            let tx_done = tx_done.clone();
            let stats = Arc::clone(stats);
            let backend = Arc::clone(&self.judge);
            let record_store = self.record_store.clone();
            handles.push(std::thread::spawn(move || {
                for msg in rx.iter() {
                    let judgement = backend.judge(
                        &msg.item,
                        &msg.compile,
                        msg.exec.as_ref(),
                        msg.signals.as_deref(),
                    );
                    {
                        let mut s = stats.lock();
                        s.judged += 1;
                        s.observe_judge_latency_ms(judgement.latency_ms);
                        if !judgement.verdict_or_invalid().is_valid() {
                            s.judge_rejections += 1;
                        }
                    }
                    let record = CaseRecord {
                        id: msg.item.id.clone(),
                        compile: msg.compile,
                        exec: msg.exec,
                        judgement: Some(judgement),
                    };
                    if let Some(store) = &record_store {
                        store.persist(&msg.item, &record);
                    }
                    if tx_done.send((msg.index, record)).is_err() {
                        break;
                    }
                }
            }));
        }
        drop(rx_executed);
        // tx_done: the last clone is dropped when the judge workers exit.

        handles
    }

    /// Whole-file workers: each worker pulls an item and runs every stage
    /// for it. `workers == 1` is the sequential baseline; `workers > 1` is
    /// the "parallel but not pipelined" comparison point.
    fn spawn_batch(
        &self,
        items: impl Iterator<Item = WorkItem> + Send + 'static,
        tx_done: Sender<(usize, CaseRecord)>,
        stats: &Arc<Mutex<PipelineStats>>,
        capacity: usize,
        workers: usize,
    ) -> Vec<JoinHandle<()>> {
        let mut handles = Vec::new();
        let (tx_items, rx_items) = bounded::<(usize, WorkItem)>(capacity);

        {
            let stats = Arc::clone(stats);
            handles.push(std::thread::spawn(move || {
                for (index, item) in items.enumerate() {
                    stats.lock().submitted += 1;
                    if tx_items.send((index, item)).is_err() {
                        break;
                    }
                }
            }));
        }

        for _ in 0..workers.max(1) {
            let rx = rx_items.clone();
            let tx_done = tx_done.clone();
            let stats = Arc::clone(stats);
            let service = self.clone();
            handles.push(std::thread::spawn(move || {
                for (index, item) in rx.iter() {
                    let record = service.process_one(&item, &stats);
                    if tx_done.send((index, record)).is_err() {
                        break;
                    }
                }
            }));
        }
        drop(rx_items);

        handles
    }

    /// Synchronous per-case entry point for external schedulers (the
    /// validation server's tenant-fair worker pool dispatches through
    /// this): run every stage for one item on the calling thread, folding
    /// provenance into `stats`.
    ///
    /// Semantics are identical to the streaming strategies — including the
    /// record-store replay/persist layer — so by the strategy-parity and
    /// replay laws the returned record is byte-identical to what
    /// [`ValidationService::submit`] would have produced for the same item,
    /// whatever thread or order an external scheduler picks.
    pub fn process_case(&self, item: &WorkItem, stats: &Mutex<PipelineStats>) -> CaseRecord {
        self.process_one(item, stats)
    }

    /// Run every stage for one item (shared by the whole-file strategies);
    /// semantics identical to the staged topology, including the store
    /// layer's replay/persist behaviour.
    fn process_one(&self, item: &WorkItem, stats: &Mutex<PipelineStats>) -> CaseRecord {
        if let Some(store) = &self.record_store {
            if let Some(record) = store.lookup(item) {
                let mut s = stats.lock();
                s.store_hits += 1;
                s.observe_record(&record);
                return record;
            }
            stats.lock().store_misses += 1;
        }
        let record = self.process_fresh(item, stats);
        if let Some(store) = &self.record_store {
            store.persist(item, &record);
        }
        record
    }

    /// The three stages proper, bypassing the store layer.
    fn process_fresh(&self, item: &WorkItem, stats: &Mutex<PipelineStats>) -> CaseRecord {
        let mode = self.config.mode;
        let CompileOutput {
            summary: compile,
            artifact,
            signals,
            fetch,
        } = self.compile.compile(item);
        {
            let mut s = stats.lock();
            s.compiled += 1;
            if !compile.succeeded {
                s.compile_failures += 1;
            }
            match fetch {
                Some(vv_simcompiler::CompileFetch::Fresh) => s.compile_cache_misses += 1,
                Some(_) => s.compile_cache_hits += 1,
                None => {}
            }
        }
        if !compile.succeeded && mode == PipelineMode::EarlyExit {
            return CaseRecord {
                id: item.id.clone(),
                compile,
                exec: None,
                judgement: None,
            };
        }
        let exec = artifact
            .as_ref()
            .map(|program| self.exec.execute(item, program));
        if exec.is_some() {
            let mut s = stats.lock();
            s.executed += 1;
            if exec.as_ref().is_some_and(|e| !e.passed) {
                s.exec_failures += 1;
            }
        }
        let exec_failed = exec.as_ref().is_none_or(|e| !e.passed);
        if exec_failed && mode == PipelineMode::EarlyExit {
            return CaseRecord {
                id: item.id.clone(),
                compile,
                exec,
                judgement: None,
            };
        }
        let judgement = self
            .judge
            .judge(item, &compile, exec.as_ref(), signals.as_deref());
        {
            let mut s = stats.lock();
            s.judged += 1;
            s.observe_judge_latency_ms(judgement.latency_ms);
            if !judgement.verdict_or_invalid().is_valid() {
                s.judge_rejections += 1;
            }
        }
        CaseRecord {
            id: item.id.clone(),
            compile,
            exec,
            judgement: Some(judgement),
        }
    }
}

/// Streaming result iterator returned by [`ValidationService::submit`].
///
/// Yields each [`CaseRecord`] as it completes (completion order, not
/// submission order). After the iterator is exhausted, [`RecordStream::stats`]
/// reports the final aggregate statistics. Dropping the stream early cancels
/// the remaining work: the worker threads observe the closed channel and
/// exit, and the unprocessed tail of the input iterator is never pulled.
///
/// A panic inside a backend is not lost: it is captured when the worker is
/// reaped and resumed on the consuming thread (from `next()` returning
/// `None`, from [`RecordStream::into_run`], or from `drop`), matching the
/// propagation behaviour of the scoped-thread runners this replaces.
pub struct RecordStream {
    rx: Option<Receiver<(usize, CaseRecord)>>,
    stats: Arc<Mutex<PipelineStats>>,
    handles: Vec<JoinHandle<()>>,
    started: Instant,
    finished: Option<std::time::Duration>,
    /// Flushed when the stream completes, so every record processed
    /// through a finished stream is durable.
    record_store: Option<Arc<RecordStore>>,
}

impl RecordStream {
    /// A snapshot of the statistics so far. `wall_time` is the time since
    /// `submit` was called, latched at completion once the stream is
    /// exhausted (so the snapshot is final and stable from then on).
    ///
    /// Under [`ExecutionStrategy::Pipelined`] the per-case counters live
    /// in worker-private accumulators merged when each worker retires (no
    /// shared mutable state on the case path), so mid-run snapshots lag
    /// behind the records already yielded; the post-completion snapshot is
    /// exact for every strategy.
    pub fn stats(&self) -> PipelineStats {
        let mut stats = self.stats.lock().clone();
        stats.wall_time = self.finished.unwrap_or_else(|| self.started.elapsed());
        stats
    }

    /// Drain the stream into a [`PipelineRun`] with records restored to
    /// submission order.
    ///
    /// Records already consumed through `next()` cannot be recovered: the
    /// run contains only the *remaining* records, while the statistics
    /// still count every processed file. Call this before iterating (as
    /// [`ValidationService::run`] does) to get the complete batch.
    pub fn into_run(mut self) -> PipelineRun {
        let mut indexed: Vec<(usize, CaseRecord)> = Vec::new();
        if let Some(rx) = self.rx.take() {
            for entry in rx.iter() {
                indexed.push(entry);
            }
        }
        self.finish();
        indexed.sort_by_key(|(index, _)| *index);
        let records = indexed.into_iter().map(|(_, record)| record).collect();
        PipelineRun::new(records, self.stats())
    }

    /// Reap the worker threads, latch the wall time, flush the record
    /// store, and re-raise the first worker panic (if any) on this thread.
    fn finish(&mut self) {
        let panic = self.join_workers();
        self.finished.get_or_insert_with(|| self.started.elapsed());
        if let Some(store) = &self.record_store {
            store.flush();
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    }

    fn join_workers(&mut self) -> Option<Box<dyn std::any::Any + Send + 'static>> {
        let mut first_panic = None;
        for handle in self.handles.drain(..) {
            if let Err(payload) = handle.join() {
                first_panic.get_or_insert(payload);
            }
        }
        first_panic
    }
}

impl Iterator for RecordStream {
    type Item = CaseRecord;

    fn next(&mut self) -> Option<CaseRecord> {
        match self.rx.as_ref()?.recv() {
            Ok((_, record)) => Some(record),
            Err(_) => {
                // All workers have dropped their senders; reap the threads
                // so `stats()` is final (and any backend panic surfaces)
                // when `next` returns `None`.
                self.rx = None;
                self.finish();
                None
            }
        }
    }
}

impl Drop for RecordStream {
    fn drop(&mut self) {
        // Close the channel first so blocked workers wake up and exit.
        self.rx = None;
        let panic = self.join_workers();
        self.finished.get_or_insert_with(|| self.started.elapsed());
        if let Some(store) = &self.record_store {
            store.flush();
        }
        // Surface a backend panic even on early drop, but never while this
        // thread is already unwinding (a double panic would abort).
        if let Some(payload) = panic {
            if !std::thread::panicking() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}
