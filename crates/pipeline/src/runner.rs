//! Pipeline runners: staged multi-worker, sequential baseline, and
//! per-file-parallel (rayon) comparison.

use std::time::Instant;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use rayon::prelude::*;

use crate::stats::PipelineStats;
use crate::{
    CaseRecord, CompileSummary, ExecSummary, PipelineConfig, PipelineMode, WorkItem,
};
use vv_judge::{JudgeOutcome, JudgeSession, SurrogateLlmJudge, ToolContext, ToolRecord};
use vv_simcompiler::{compiler_for, Program};
use vv_simexec::Executor;

/// The result of running a pipeline over a batch of files.
#[derive(Clone, Debug)]
pub struct PipelineRun {
    /// One record per submitted file, in submission order.
    pub records: Vec<CaseRecord>,
    /// Aggregate statistics.
    pub stats: PipelineStats,
}

impl PipelineRun {
    /// Look up a record by case id.
    pub fn record(&self, id: &str) -> Option<&CaseRecord> {
        self.records.iter().find(|r| r.id == id)
    }
}

/// The validation pipeline.
#[derive(Clone, Debug, Default)]
pub struct ValidationPipeline {
    /// Configuration shared by all runners.
    pub config: PipelineConfig,
}

impl ValidationPipeline {
    /// Create a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Self { config }
    }

    fn judge_session(&self) -> JudgeSession {
        JudgeSession::new(
            SurrogateLlmJudge::new(self.config.judge_profile.clone(), self.config.judge_seed),
            self.config.judge_style,
        )
    }

    /// Run the staged, multi-worker pipeline (bounded channels between the
    /// compile, execute and judge stages; each stage has its own pool).
    pub fn run(&self, items: Vec<WorkItem>) -> PipelineRun {
        let started = Instant::now();
        let total = items.len();
        let mode = self.config.mode;
        let capacity = self.config.channel_capacity.max(1);
        let stats = Mutex::new(PipelineStats { submitted: total, ..Default::default() });
        let records: Mutex<Vec<(usize, CaseRecord)>> = Mutex::new(Vec::with_capacity(total));

        struct AfterCompile {
            index: usize,
            item: WorkItem,
            compile: CompileSummary,
            artifact: Option<Program>,
        }
        struct AfterExec {
            index: usize,
            item: WorkItem,
            compile: CompileSummary,
            exec: Option<ExecSummary>,
        }

        let (tx_items, rx_items): (Sender<(usize, WorkItem)>, Receiver<(usize, WorkItem)>) =
            bounded(capacity);
        let (tx_compiled, rx_compiled): (Sender<AfterCompile>, Receiver<AfterCompile>) =
            bounded(capacity);
        let (tx_executed, rx_executed): (Sender<AfterExec>, Receiver<AfterExec>) =
            bounded(capacity);
        let (tx_done, rx_done): (Sender<(usize, CaseRecord)>, Receiver<(usize, CaseRecord)>) =
            bounded(capacity);

        std::thread::scope(|scope| {
            // Feeder
            scope.spawn(move || {
                for (index, item) in items.into_iter().enumerate() {
                    if tx_items.send((index, item)).is_err() {
                        break;
                    }
                }
            });

            // Compile stage
            for _ in 0..self.config.compile_workers.max(1) {
                let rx = rx_items.clone();
                let tx_next = tx_compiled.clone();
                let tx_done = tx_done.clone();
                let stats = &stats;
                scope.spawn(move || {
                    for (index, item) in rx.iter() {
                        let (compile, artifact) = compile_item(&item);
                        {
                            let mut s = stats.lock();
                            s.compiled += 1;
                            if !compile.succeeded {
                                s.compile_failures += 1;
                            }
                        }
                        if !compile.succeeded && mode == PipelineMode::EarlyExit {
                            let record =
                                CaseRecord { id: item.id.clone(), compile, exec: None, judgement: None };
                            let _ = tx_done.send((index, record));
                            continue;
                        }
                        let _ = tx_next.send(AfterCompile { index, item, compile, artifact });
                    }
                });
            }
            drop(tx_compiled);
            drop(rx_items);

            // Execute stage
            for _ in 0..self.config.exec_workers.max(1) {
                let rx = rx_compiled.clone();
                let tx_next = tx_executed.clone();
                let tx_done = tx_done.clone();
                let stats = &stats;
                scope.spawn(move || {
                    let executor = Executor::default();
                    for msg in rx.iter() {
                        let exec = msg.artifact.as_ref().map(|program| exec_item(&executor, program));
                        if exec.is_some() {
                            let mut s = stats.lock();
                            s.executed += 1;
                            if exec.as_ref().is_some_and(|e| !e.passed) {
                                s.exec_failures += 1;
                            }
                        }
                        let failed = exec.as_ref().map_or(true, |e| !e.passed);
                        if failed && mode == PipelineMode::EarlyExit {
                            let record = CaseRecord {
                                id: msg.item.id.clone(),
                                compile: msg.compile,
                                exec,
                                judgement: None,
                            };
                            let _ = tx_done.send((msg.index, record));
                            continue;
                        }
                        let _ = tx_next.send(AfterExec {
                            index: msg.index,
                            item: msg.item,
                            compile: msg.compile,
                            exec,
                        });
                    }
                });
            }
            drop(tx_executed);
            drop(rx_compiled);

            // Judge stage
            for _ in 0..self.config.judge_workers.max(1) {
                let rx = rx_executed.clone();
                let tx_done = tx_done.clone();
                let stats = &stats;
                let session = self.judge_session();
                scope.spawn(move || {
                    for msg in rx.iter() {
                        let judgement =
                            judge_item(&session, &msg.item, &msg.compile, msg.exec.as_ref());
                        {
                            let mut s = stats.lock();
                            s.judged += 1;
                            s.simulated_judge_latency_ms += judgement.latency_ms;
                            if !judgement.verdict_or_invalid().is_valid() {
                                s.judge_rejections += 1;
                            }
                        }
                        let record = CaseRecord {
                            id: msg.item.id.clone(),
                            compile: msg.compile,
                            exec: msg.exec,
                            judgement: Some(judgement),
                        };
                        let _ = tx_done.send((msg.index, record));
                    }
                });
            }
            drop(tx_done);
            drop(rx_executed);

            // Collector (runs on the scope's own thread).
            for entry in rx_done.iter() {
                records.lock().push(entry);
            }
        });

        let mut indexed = records.into_inner();
        indexed.sort_by_key(|(index, _)| *index);
        let records = indexed.into_iter().map(|(_, record)| record).collect();
        let mut stats = stats.into_inner();
        stats.wall_time = started.elapsed();
        PipelineRun { records, stats }
    }

    /// Run the same per-file semantics on a single thread (baseline).
    pub fn run_sequential(&self, items: Vec<WorkItem>) -> PipelineRun {
        let started = Instant::now();
        let session = self.judge_session();
        let executor = Executor::default();
        let mut stats = PipelineStats { submitted: items.len(), ..Default::default() };
        let records = items
            .iter()
            .map(|item| process_full(item, self.config.mode, &session, &executor, &mut stats))
            .collect();
        stats.wall_time = started.elapsed();
        PipelineRun { records, stats }
    }

    /// Run with per-file parallelism (each file runs all stages inside one
    /// rayon task) — the "parallel but not pipelined" comparison point.
    pub fn run_batch_rayon(&self, items: Vec<WorkItem>) -> PipelineRun {
        let started = Instant::now();
        let session = self.judge_session();
        let mode = self.config.mode;
        let results: Vec<(CaseRecord, PipelineStats)> = items
            .par_iter()
            .map(|item| {
                let executor = Executor::default();
                let mut stats = PipelineStats::default();
                let record = process_full(item, mode, &session, &executor, &mut stats);
                (record, stats)
            })
            .collect();
        let mut stats = PipelineStats { submitted: items.len(), ..Default::default() };
        let mut records = Vec::with_capacity(results.len());
        for (record, partial) in results {
            stats.merge(&partial);
            records.push(record);
        }
        stats.submitted = items.len();
        stats.wall_time = started.elapsed();
        PipelineRun { records, stats }
    }
}

// ---------------------------------------------------------------------------
// per-stage helpers (shared by all runners)
// ---------------------------------------------------------------------------

fn compile_item(item: &WorkItem) -> (CompileSummary, Option<Program>) {
    let compiler = compiler_for(item.model);
    let outcome = compiler.compile(&item.source, item.lang);
    let summary = CompileSummary {
        return_code: outcome.return_code,
        stdout: outcome.stdout.clone(),
        stderr: outcome.stderr.clone(),
        succeeded: outcome.succeeded(),
    };
    (summary, outcome.artifact)
}

fn exec_item(executor: &Executor, program: &Program) -> ExecSummary {
    let outcome = executor.run(program);
    ExecSummary {
        return_code: outcome.return_code,
        stdout: outcome.stdout,
        stderr: outcome.stderr,
        passed: outcome.return_code == 0,
    }
}

fn judge_item(
    session: &JudgeSession,
    item: &WorkItem,
    compile: &CompileSummary,
    exec: Option<&ExecSummary>,
) -> JudgeOutcome {
    let tools = ToolContext {
        compile: Some(ToolRecord {
            return_code: compile.return_code,
            stdout: compile.stdout.clone(),
            stderr: compile.stderr.clone(),
        }),
        run: exec.map(|e| ToolRecord {
            return_code: e.return_code,
            stdout: e.stdout.clone(),
            stderr: e.stderr.clone(),
        }),
    };
    session.evaluate(&item.source, item.model, Some(&tools))
}

fn process_full(
    item: &WorkItem,
    mode: PipelineMode,
    session: &JudgeSession,
    executor: &Executor,
    stats: &mut PipelineStats,
) -> CaseRecord {
    let (compile, artifact) = compile_item(item);
    stats.compiled += 1;
    if !compile.succeeded {
        stats.compile_failures += 1;
        if mode == PipelineMode::EarlyExit {
            return CaseRecord { id: item.id.clone(), compile, exec: None, judgement: None };
        }
    }
    let exec = artifact.as_ref().map(|program| exec_item(executor, program));
    if exec.is_some() {
        stats.executed += 1;
        if exec.as_ref().is_some_and(|e| !e.passed) {
            stats.exec_failures += 1;
        }
    }
    let exec_failed = exec.as_ref().map_or(true, |e| !e.passed);
    if exec_failed && mode == PipelineMode::EarlyExit {
        return CaseRecord { id: item.id.clone(), compile, exec, judgement: None };
    }
    let judgement = judge_item(session, item, &compile, exec.as_ref());
    stats.judged += 1;
    stats.simulated_judge_latency_ms += judgement.latency_ms;
    if !judgement.verdict_or_invalid().is_valid() {
        stats.judge_rejections += 1;
    }
    CaseRecord { id: item.id.clone(), compile, exec, judgement: Some(judgement) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vv_corpus::{generate_suite, SuiteConfig};
    use vv_dclang::DirectiveModel;
    use vv_probing::{build_probed_suite, IssueKind, ProbeConfig};

    fn probed_items(model: DirectiveModel, size: usize, seed: u64) -> (Vec<WorkItem>, Vec<IssueKind>) {
        let suite = generate_suite(&SuiteConfig::new(model, size, seed));
        let probed = build_probed_suite(&suite, &ProbeConfig::with_seed(seed));
        let issues = probed.cases.iter().map(|c| c.issue).collect();
        let items = probed
            .cases
            .iter()
            .map(|c| WorkItem {
                id: c.case.id.clone(),
                source: c.source.clone(),
                lang: c.case.lang,
                model,
            })
            .collect();
        (items, issues)
    }

    #[test]
    fn staged_and_sequential_and_rayon_runners_agree() {
        let (items, _) = probed_items(DirectiveModel::OpenAcc, 30, 41);
        let pipeline = ValidationPipeline::new(PipelineConfig::default().record_all());
        let staged = pipeline.run(items.clone());
        let sequential = pipeline.run_sequential(items.clone());
        let rayon = pipeline.run_batch_rayon(items.clone());
        assert_eq!(staged.records.len(), items.len());
        for ((a, b), c) in staged.records.iter().zip(&sequential.records).zip(&rayon.records) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.id, c.id);
            assert_eq!(a.pipeline_verdict(), b.pipeline_verdict(), "case {}", a.id);
            assert_eq!(a.pipeline_verdict(), c.pipeline_verdict(), "case {}", a.id);
            assert_eq!(a.judge_verdict(), b.judge_verdict(), "case {}", a.id);
        }
    }

    #[test]
    fn early_exit_skips_judging_of_failed_files() {
        let (items, issues) = probed_items(DirectiveModel::OpenMp, 40, 17);
        let early = ValidationPipeline::new(PipelineConfig::default()).run(items.clone());
        let record_all =
            ValidationPipeline::new(PipelineConfig::default().record_all()).run(items.clone());
        // Some mutated files fail to compile, so early-exit must judge fewer.
        assert!(early.stats.judged < record_all.stats.judged);
        assert_eq!(record_all.stats.judged, items.len());
        assert!(early.stats.judge_stage_savings() > 0.0);
        // Both modes agree on the *pipeline* verdict.
        for (a, b) in early.records.iter().zip(&record_all.records) {
            assert_eq!(a.pipeline_verdict(), b.pipeline_verdict(), "case {}", a.id);
        }
        // Sanity: at least one mutated file exists.
        assert!(issues.iter().any(|i| !i.is_valid()));
    }

    #[test]
    fn pipeline_catches_compile_level_mutations() {
        let (items, issues) = probed_items(DirectiveModel::OpenAcc, 60, 23);
        let run = ValidationPipeline::new(PipelineConfig::default().record_all()).run(items);
        for (record, issue) in run.records.iter().zip(issues.iter()) {
            match issue {
                IssueKind::RemovedOpeningBracket | IssueKind::UndeclaredVariableUse => {
                    assert!(
                        !record.compile.succeeded,
                        "case {} with issue {issue:?} should not compile",
                        record.id
                    );
                    assert!(!record.pipeline_verdict().is_valid());
                }
                IssueKind::NoIssue => {
                    assert!(record.compile.succeeded, "valid case {} must compile", record.id);
                    assert!(record.exec.as_ref().is_some_and(|e| e.passed));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn stats_are_internally_consistent() {
        let (items, _) = probed_items(DirectiveModel::OpenAcc, 24, 5);
        let run = ValidationPipeline::new(PipelineConfig::default()).run(items.clone());
        assert_eq!(run.stats.submitted, items.len());
        assert_eq!(run.stats.compiled, items.len());
        assert!(run.stats.executed <= run.stats.compiled);
        assert!(run.stats.judged <= run.stats.executed);
        assert!(run.stats.simulated_judge_latency_ms >= 0.0);
        assert!(run.stats.wall_time.as_nanos() > 0);
        assert_eq!(run.records.len(), items.len());
    }

    #[test]
    fn worker_counts_do_not_change_results() {
        let (items, _) = probed_items(DirectiveModel::OpenMp, 20, 31);
        let wide = ValidationPipeline::new(PipelineConfig {
            compile_workers: 8,
            exec_workers: 8,
            judge_workers: 4,
            ..PipelineConfig::default().record_all()
        })
        .run(items.clone());
        let narrow =
            ValidationPipeline::new(PipelineConfig::default().record_all().single_threaded())
                .run(items);
        for (a, b) in wide.records.iter().zip(&narrow.records) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.pipeline_verdict(), b.pipeline_verdict());
        }
    }
}
