//! Batch run results.
//!
//! The runner logic lives in [`crate::service`]; this module keeps the
//! [`PipelineRun`] result type. (The pre-`ValidationService`
//! `ValidationPipeline` shim that used to live here was deprecated in 0.2.0
//! and has been removed; build a [`crate::ValidationService`] with an
//! [`crate::ExecutionStrategy`] instead.)

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::stats::PipelineStats;
use crate::CaseRecord;

/// The result of running a validation service over a batch of files.
#[derive(Debug, Default)]
pub struct PipelineRun {
    /// One record per submitted file, in submission order.
    pub records: Vec<CaseRecord>,
    /// Aggregate statistics.
    pub stats: PipelineStats,
    /// Lazily built id → index map backing [`PipelineRun::record`].
    index: OnceLock<HashMap<String, usize>>,
}

impl Clone for PipelineRun {
    fn clone(&self) -> Self {
        // The lookup index is cheap to rebuild and internally references
        // `records` by position, so a clone starts with a fresh one.
        Self::new(self.records.clone(), self.stats.clone())
    }
}

impl PipelineRun {
    /// Assemble a run result.
    pub fn new(records: Vec<CaseRecord>, stats: PipelineStats) -> Self {
        Self {
            records,
            stats,
            index: OnceLock::new(),
        }
    }

    /// Look up a record by case id in O(1) (the index over all ids is built
    /// once, on first use). For duplicate ids the first record wins,
    /// matching the linear scan this replaces.
    pub fn record(&self, id: &str) -> Option<&CaseRecord> {
        let index = self.index.get_or_init(|| {
            let mut map = HashMap::with_capacity(self.records.len());
            for (position, record) in self.records.iter().enumerate() {
                map.entry(record.id.clone()).or_insert(position);
            }
            map
        });
        match index
            .get(id)
            .and_then(|&position| self.records.get(position))
        {
            Some(record) if record.id == id => Some(record),
            // `records` is a public field, so it may have been reordered or
            // truncated after the index was built; fall back to the scan
            // the index replaces rather than return a wrong record.
            _ => self.records.iter().find(|record| record.id == id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{ExecutionStrategy, ValidationService};
    use crate::{PipelineMode, Stage, WorkItem};
    use vv_corpus::CaseSource;
    use vv_dclang::DirectiveModel;
    use vv_probing::{CorpusSpec, IssueKind};

    fn probed_spec(model: DirectiveModel, size: usize, seed: u64) -> CorpusSpec {
        CorpusSpec::new(model)
            .seed(seed)
            .probe_seed(seed)
            .size(size)
    }

    fn probed_items(
        model: DirectiveModel,
        size: usize,
        seed: u64,
    ) -> (Vec<WorkItem>, Vec<IssueKind>) {
        let mut items = Vec::with_capacity(size);
        let mut issues = Vec::with_capacity(size);
        for case in probed_spec(model, size, seed).source().into_cases() {
            issues.push(IssueKind::of_case(&case));
            items.push(WorkItem::from(case));
        }
        (items, issues)
    }

    fn record_all_service() -> ValidationService {
        ValidationService::builder()
            .mode(PipelineMode::RecordAll)
            .build()
    }

    #[test]
    fn all_strategies_agree_through_the_service() {
        let (items, _) = probed_items(DirectiveModel::OpenAcc, 30, 41);
        let runs: Vec<PipelineRun> = ExecutionStrategy::ALL
            .iter()
            .map(|&strategy| {
                ValidationService::builder()
                    .mode(PipelineMode::RecordAll)
                    .strategy(strategy)
                    .build()
                    .run(items.clone())
            })
            .collect();
        for run in &runs {
            assert_eq!(run.records.len(), items.len());
        }
        let (staged, rest) = runs.split_first().expect("three strategies");
        for other in rest {
            for (a, b) in staged.records.iter().zip(&other.records) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.pipeline_verdict(), b.pipeline_verdict(), "case {}", a.id);
                assert_eq!(a.judge_verdict(), b.judge_verdict(), "case {}", a.id);
            }
        }
    }

    #[test]
    fn early_exit_skips_judging_of_failed_files() {
        let (items, issues) = probed_items(DirectiveModel::OpenMp, 40, 17);
        let early = ValidationService::builder().build().run(items.clone());
        let record_all = record_all_service().run(items.clone());
        // Some mutated files fail to compile, so early-exit must judge fewer.
        assert!(early.stats.judged < record_all.stats.judged);
        assert_eq!(record_all.stats.judged, items.len());
        assert!(early.stats.judge_stage_savings() > 0.0);
        // Both modes agree on the *pipeline* verdict.
        for (a, b) in early.records.iter().zip(&record_all.records) {
            assert_eq!(a.pipeline_verdict(), b.pipeline_verdict(), "case {}", a.id);
        }
        // Sanity: at least one mutated file exists.
        assert!(issues.iter().any(|i| !i.is_valid()));
    }

    #[test]
    fn pipeline_catches_compile_level_mutations() {
        let (items, issues) = probed_items(DirectiveModel::OpenAcc, 60, 23);
        let run = record_all_service().run(items);
        for (record, issue) in run.records.iter().zip(issues.iter()) {
            match issue {
                IssueKind::RemovedOpeningBracket | IssueKind::UndeclaredVariableUse => {
                    assert!(
                        !record.compile.succeeded,
                        "case {} with issue {issue:?} should not compile",
                        record.id
                    );
                    assert!(!record.pipeline_verdict().is_valid());
                }
                IssueKind::NoIssue => {
                    assert!(
                        record.compile.succeeded,
                        "valid case {} must compile",
                        record.id
                    );
                    assert!(record.exec.as_ref().is_some_and(|e| e.passed));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn stats_are_internally_consistent() {
        let (items, _) = probed_items(DirectiveModel::OpenAcc, 24, 5);
        let run = ValidationService::builder().build().run(items.clone());
        assert_eq!(run.stats.submitted, items.len());
        assert_eq!(run.stats.compiled, items.len());
        assert!(run.stats.executed <= run.stats.compiled);
        assert!(run.stats.judged <= run.stats.executed);
        assert!(run.stats.simulated_judge_latency_ms >= 0.0);
        assert!(run.stats.wall_time.as_nanos() > 0);
        assert_eq!(run.records.len(), items.len());
    }

    #[test]
    fn worker_counts_do_not_change_results() {
        let (items, _) = probed_items(DirectiveModel::OpenMp, 20, 31);
        let wide = ValidationService::builder()
            .mode(PipelineMode::RecordAll)
            .workers(8, 8, 4)
            .build()
            .run(items.clone());
        let narrow = ValidationService::builder()
            .mode(PipelineMode::RecordAll)
            .workers(1, 1, 1)
            .build()
            .run(items);
        for (a, b) in wide.records.iter().zip(&narrow.records) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.pipeline_verdict(), b.pipeline_verdict());
        }
    }

    #[test]
    fn streaming_submit_yields_every_record_with_backpressure() {
        let (items, _) = probed_items(DirectiveModel::OpenAcc, 25, 9);
        let expected: Vec<String> = items.iter().map(|i| i.id.clone()).collect();
        let service = ValidationService::builder().channel_capacity(2).build();
        let stream = service.submit(items);
        let mut seen: Vec<String> = stream.map(|record| record.id).collect();
        // Completion order is nondeterministic; the *set* must match.
        seen.sort();
        let mut expected_sorted = expected;
        expected_sorted.sort();
        assert_eq!(seen, expected_sorted);
    }

    #[test]
    fn submit_source_streams_a_corpus_without_materializing_it() {
        let size = 48;
        let spec = probed_spec(DirectiveModel::OpenAcc, size, 77);
        let service = ValidationService::builder()
            .mode(PipelineMode::RecordAll)
            .channel_capacity(4)
            .build();
        let mut stream = service.submit_source(spec.source());
        let mut yielded = 0usize;
        while stream.next().is_some() {
            yielded += 1;
        }
        assert_eq!(yielded, size);
        let stats = stream.stats();
        assert_eq!(stats.submitted, size);
        assert_eq!(stats.judged, size);
    }

    #[test]
    fn run_source_matches_materialized_run() {
        let (items, _) = probed_items(DirectiveModel::OpenMp, 20, 3);
        let spec = probed_spec(DirectiveModel::OpenMp, 20, 3);
        let service = record_all_service();
        let via_source = service.run_source(spec.source());
        let via_items = service.run(items);
        assert_eq!(via_source.records.len(), via_items.records.len());
        for (a, b) in via_source.records.iter().zip(&via_items.records) {
            assert_eq!(a, b, "source path diverged from item path");
        }
    }

    #[test]
    fn streaming_stats_are_final_after_exhaustion() {
        let (items, _) = probed_items(DirectiveModel::OpenMp, 12, 3);
        let total = items.len();
        let service = ValidationService::builder()
            .mode(PipelineMode::RecordAll)
            .build();
        let mut stream = service.submit(items);
        let mut yielded = 0;
        while stream.next().is_some() {
            yielded += 1;
        }
        assert_eq!(yielded, total);
        let stats = stream.stats();
        assert_eq!(stats.submitted, total);
        assert_eq!(stats.judged, total);
        assert!(stats.wall_time.as_nanos() > 0);
    }

    #[test]
    fn dropping_a_stream_early_cancels_cleanly() {
        let (items, _) = probed_items(DirectiveModel::OpenAcc, 30, 77);
        let service = ValidationService::builder().channel_capacity(1).build();
        let mut stream = service.submit(items);
        let first = stream.next();
        assert!(first.is_some());
        drop(stream); // must not deadlock or leak blocked workers
    }

    #[test]
    fn record_lookup_is_available_and_first_wins() {
        let (items, _) = probed_items(DirectiveModel::OpenAcc, 10, 2);
        let lookup_id = items[4].id.clone();
        let run = ValidationService::builder().build().run(items);
        let record = run.record(&lookup_id).expect("known id resolves");
        assert_eq!(record.id, lookup_id);
        assert!(run.record("no-such-case").is_none());
        // The clone rebuilds its index lazily and agrees with the original.
        let cloned = run.clone();
        assert_eq!(cloned.record(&lookup_id).map(|r| &r.id), Some(&lookup_id));
        // Mutating the public `records` field after a lookup must not
        // produce wrong answers or panics from the stale index.
        let mut mutated = run;
        mutated.records.reverse();
        let tail_id = mutated.records.last().expect("non-empty").id.clone();
        assert_eq!(mutated.record(&tail_id).map(|r| &r.id), Some(&tail_id));
        // Truncation drops `tail_id` (it sorted to the end after reverse):
        // the stale index must report it gone, not panic or mis-resolve.
        mutated.records.truncate(2);
        assert!(mutated.record(&tail_id).is_none());
        let kept_id = mutated.records[0].id.clone();
        assert_eq!(mutated.record(&kept_id).map(|r| &r.id), Some(&kept_id));
    }

    #[test]
    fn backend_panics_propagate_to_the_caller() {
        use crate::backend::JudgeBackend;

        /// A judge that dies on its first file.
        struct PanickingJudge;
        impl JudgeBackend for PanickingJudge {
            fn judge(
                &self,
                _item: &WorkItem,
                _compile: &crate::CompileSummary,
                _exec: Option<&crate::ExecSummary>,
                _signals: Option<&vv_judge::CodeSignals>,
            ) -> vv_judge::JudgeOutcome {
                panic!("judge backend exploded");
            }
        }

        let (items, _) = probed_items(DirectiveModel::OpenAcc, 8, 19);
        for strategy in ExecutionStrategy::ALL {
            let service = ValidationService::builder()
                .strategy(strategy)
                .judge_backend(PanickingJudge)
                .build();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                service.run(items.clone())
            }));
            let payload = result.expect_err("a worker panic must not yield a truncated run");
            let message = payload
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            assert!(
                message.contains("judge backend exploded"),
                "{strategy:?}: unexpected panic payload: {message:?}"
            );
        }
    }

    #[test]
    fn custom_judge_backend_is_used() {
        use crate::backend::JudgeBackend;
        use vv_judge::JudgeOutcome;

        /// A judge that accepts everything (for testing backend plumbing).
        struct AlwaysValid;
        impl JudgeBackend for AlwaysValid {
            fn judge(
                &self,
                _item: &WorkItem,
                _compile: &crate::CompileSummary,
                _exec: Option<&crate::ExecSummary>,
                _signals: Option<&vv_judge::CodeSignals>,
            ) -> JudgeOutcome {
                JudgeOutcome {
                    prompt: String::new(),
                    response: "FINAL JUDGEMENT: valid".into(),
                    verdict: Some(vv_judge::Verdict::Valid),
                    prompt_tokens: 1,
                    response_tokens: 1,
                    latency_ms: 0.5,
                }
            }
            fn name(&self) -> &'static str {
                "always-valid"
            }
        }

        let (items, _) = probed_items(DirectiveModel::OpenAcc, 12, 13);
        let run = ValidationService::builder()
            .judge_backend(AlwaysValid)
            .build()
            .run(items);
        for record in &run.records {
            if record.stage_reached() == Stage::Judge {
                assert_eq!(record.judge_verdict(), Some(vv_judge::Verdict::Valid));
            }
        }
        assert!(run.stats.judged > 0);
        assert_eq!(run.stats.judge_rejections, 0);
    }
}
