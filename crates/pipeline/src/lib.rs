//! `vv-pipeline` — the validation service (Figure 2 of the paper).
//!
//! Candidate test files flow through three stages:
//!
//! 1. **Compile** — by default the simulated vendor compiler for the file's
//!    model;
//! 2. **Execute** — by default the deterministic execution substrate, only
//!    for files that compiled;
//! 3. **Judge** — by default an agent-based surrogate LLM judge whose
//!    prompt embeds the compiler/runtime outputs collected by the earlier
//!    stages.
//!
//! # Trait-based design
//!
//! Every stage is an object-safe trait — [`backend::CompileBackend`],
//! [`backend::ExecBackend`], [`backend::JudgeBackend`] — so alternative
//! implementations (a real compiler shell-out, a caching executor, a second
//! judge profile) plug into the same runner. The simulated substrates are
//! just the default impls.
//!
//! A single [`ValidationService`], built via [`ValidationServiceBuilder`],
//! replaces the old per-runner methods. The [`ExecutionStrategy`] selects
//! the scheduling — the staged multi-worker pipeline of the paper, a
//! sequential baseline, batch parallelism, or the stage-pipelined
//! work-stealing executor of [`parallel`] — and all strategies share
//! identical per-file semantics, so they produce identical records for
//! identical inputs.
//!
//! Results come in two shapes: a batch [`ValidationService::run`] returning
//! a [`PipelineRun`], and a streaming [`ValidationService::submit`]
//! returning an iterator that yields each [`CaseRecord`] as it completes
//! through the bounded channels — constant memory for arbitrarily large
//! suites. Corpus pipelines plug in directly through
//! [`ValidationService::submit_source`], which drains any
//! `vv_corpus::CaseSource` lazily, so generation → probing → compile →
//! execute → judge streams end-to-end without ever materializing the suite.
//!
//! ```
//! use vv_pipeline::{ExecutionStrategy, PipelineMode, ValidationService, WorkItem};
//! use vv_dclang::DirectiveModel;
//! use vv_simcompiler::Lang;
//!
//! let service = ValidationService::builder()
//!     .mode(PipelineMode::EarlyExit)
//!     .workers(2, 2, 1)
//!     .strategy(ExecutionStrategy::Staged)
//!     .build();
//!
//! let items = vec![WorkItem {
//!     id: "demo".into(),
//!     source: "int main() { return 0; }".into(),
//!     lang: Lang::C,
//!     model: DirectiveModel::OpenAcc,
//! }];
//!
//! // Streaming: records arrive as they complete.
//! for record in service.submit(items.clone()) {
//!     println!("{} -> {:?}", record.id, record.pipeline_verdict());
//! }
//!
//! // Batch: records in submission order plus aggregate stats.
//! let run = service.run(items);
//! assert_eq!(run.stats.submitted, 1);
//! ```
//!
//! Two modes are supported:
//!
//! * [`PipelineMode::EarlyExit`] — production behaviour: a file that fails
//!   an earlier stage is already known to be invalid and never reaches the
//!   (much more expensive) later stages;
//! * [`PipelineMode::RecordAll`] — the paper's experimental behaviour: every
//!   file is compiled, executed (when possible) and judged, so that the
//!   stand-alone agent-judge accuracy and the pipeline accuracy can both be
//!   computed retroactively from one run.

pub mod backend;
pub mod parallel;
pub mod persist;
pub mod runner;
pub mod service;
pub mod stats;

pub use backend::{
    CompileBackend, CompileOutput, ExecBackend, JudgeBackend, PacedJudge, SimCompileBackend,
    SimExecBackend, SurrogateJudgeBackend,
};
pub use persist::{decode_record, encode_record, RecordStore};
pub use runner::PipelineRun;
pub use service::{ExecutionStrategy, RecordStream, ValidationService, ValidationServiceBuilder};
pub use stats::PipelineStats;

use vv_dclang::DirectiveModel;
use vv_judge::{JudgeOutcome, JudgeProfile, PromptStyle, Verdict};
use vv_simcompiler::Lang;

/// One file queued for validation.
#[derive(Clone, Debug)]
pub struct WorkItem {
    /// Stable identifier (used to join records back to probing metadata).
    pub id: String,
    /// Source text.
    pub source: String,
    /// Language flavor.
    pub lang: Lang,
    /// Programming model (selects the compiler and the prompt wording).
    pub model: DirectiveModel,
}

impl From<vv_corpus::GeneratedCase> for WorkItem {
    /// Queue a streamed corpus case: the (possibly mutated) source text
    /// under the original case's identity. Probing provenance does not
    /// travel with the item — join it back by id, or capture it off the
    /// stream with the source's `inspect` adapter.
    fn from(case: vv_corpus::GeneratedCase) -> Self {
        WorkItem {
            id: case.case.id,
            source: case.source,
            lang: case.case.lang,
            model: case.case.model,
        }
    }
}

/// Compiler stage result kept in the record (the full artifact is dropped
/// once the later stages have used it).
///
/// Captures are `Arc<str>` so the record, the judge's tool context and any
/// metrics consumers share one buffer; equality is still by content, so the
/// byte-identity laws are unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileSummary {
    /// Compiler exit code.
    pub return_code: i32,
    /// Captured stdout.
    pub stdout: std::sync::Arc<str>,
    /// Captured stderr.
    pub stderr: std::sync::Arc<str>,
    /// True if an artifact was produced.
    pub succeeded: bool,
}

/// Execution stage result kept in the record.
///
/// Captures are shared `Arc<str>`s, like [`CompileSummary`]'s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecSummary {
    /// Program exit code.
    pub return_code: i32,
    /// Captured stdout.
    pub stdout: std::sync::Arc<str>,
    /// Captured stderr.
    pub stderr: std::sync::Arc<str>,
    /// True if the program exited with code 0.
    pub passed: bool,
}

/// How far a file progressed through the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Rejected (or recorded) at the compile stage.
    Compile,
    /// Rejected (or recorded) at the execution stage.
    Execute,
    /// Reached the judge stage.
    Judge,
}

/// Everything recorded about one file's trip through the pipeline.
/// Equality is byte-for-byte over every captured field, which is what the
/// strategy-parity tests assert across [`ExecutionStrategy`] variants.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseRecord {
    /// The work item's identifier.
    pub id: String,
    /// Compile stage result.
    pub compile: CompileSummary,
    /// Execution stage result (absent if the file never compiled, or if the
    /// pipeline early-exited before this stage).
    pub exec: Option<ExecSummary>,
    /// Judge stage result (absent if the pipeline early-exited first).
    pub judgement: Option<JudgeOutcome>,
}

impl CaseRecord {
    /// The judge's own verdict, if the file was judged.
    pub fn judge_verdict(&self) -> Option<Verdict> {
        self.judgement
            .as_ref()
            .map(JudgeOutcome::verdict_or_invalid)
    }

    /// The verdict of the *pipeline as a whole*: a file is accepted only if
    /// it compiled, ran successfully, and the judge deemed it valid.
    pub fn pipeline_verdict(&self) -> Verdict {
        if !self.compile.succeeded {
            return Verdict::Invalid;
        }
        match &self.exec {
            Some(exec) if exec.passed => {}
            _ => return Verdict::Invalid,
        }
        match self.judge_verdict() {
            Some(Verdict::Valid) => Verdict::Valid,
            _ => Verdict::Invalid,
        }
    }

    /// The last stage that actually processed this file.
    pub fn stage_reached(&self) -> Stage {
        if self.judgement.is_some() {
            Stage::Judge
        } else if self.exec.is_some() {
            Stage::Execute
        } else {
            Stage::Compile
        }
    }
}

/// Early-exit (production) vs record-all (experimental) behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineMode {
    /// Files that fail a stage skip the remaining stages.
    EarlyExit,
    /// Every file is run through every stage that is physically possible
    /// (a file that does not compile still cannot be executed, but it is
    /// still judged).
    RecordAll,
}

/// Configuration of a validation pipeline.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Worker threads in the compile stage.
    pub compile_workers: usize,
    /// Worker threads in the execute stage.
    pub exec_workers: usize,
    /// Worker threads in the judge stage (one GPU slot each, in the paper).
    pub judge_workers: usize,
    /// Capacity of the bounded inter-stage channels (backpressure).
    pub channel_capacity: usize,
    /// Early-exit or record-all.
    pub mode: PipelineMode,
    /// Prompt style for the judge stage.
    pub judge_style: PromptStyle,
    /// Calibration profile of the judge.
    pub judge_profile: JudgeProfile,
    /// Seed for the judge's decision layer.
    pub judge_seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            compile_workers: 4,
            exec_workers: 4,
            judge_workers: 2,
            channel_capacity: 64,
            mode: PipelineMode::EarlyExit,
            judge_style: PromptStyle::AgentDirect,
            judge_profile: JudgeProfile::deepseek_agent_direct(),
            judge_seed: 0xACC0_11AB,
        }
    }
}

impl PipelineConfig {
    /// The paper's experimental setup: record everything so both the
    /// pipeline verdicts and the stand-alone judge verdicts can be derived.
    pub fn record_all(mut self) -> Self {
        self.mode = PipelineMode::RecordAll;
        self
    }

    /// Use the indirect-analysis judge (LLMJ 2 / Pipeline 2).
    pub fn with_indirect_judge(mut self) -> Self {
        self.judge_style = PromptStyle::AgentIndirect;
        self.judge_profile = JudgeProfile::deepseek_agent_indirect();
        self
    }

    /// Set all three worker pools to one thread each.
    pub fn single_threaded(mut self) -> Self {
        self.compile_workers = 1;
        self.exec_workers = 1;
        self.judge_workers = 1;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_ok() -> CompileSummary {
        CompileSummary {
            return_code: 0,
            stdout: "".into(),
            stderr: "".into(),
            succeeded: true,
        }
    }

    fn exec_ok() -> ExecSummary {
        ExecSummary {
            return_code: 0,
            stdout: "Test passed\n".into(),
            stderr: "".into(),
            passed: true,
        }
    }

    fn judgement(valid: bool) -> JudgeOutcome {
        JudgeOutcome {
            prompt: String::new(),
            response: if valid {
                "FINAL JUDGEMENT: valid"
            } else {
                "FINAL JUDGEMENT: invalid"
            }
            .into(),
            verdict: Some(if valid {
                Verdict::Valid
            } else {
                Verdict::Invalid
            }),
            prompt_tokens: 10,
            response_tokens: 5,
            latency_ms: 1.0,
        }
    }

    #[test]
    fn pipeline_verdict_requires_all_stages_to_pass() {
        let record = CaseRecord {
            id: "t".into(),
            compile: compile_ok(),
            exec: Some(exec_ok()),
            judgement: Some(judgement(true)),
        };
        assert_eq!(record.pipeline_verdict(), Verdict::Valid);
        assert_eq!(record.stage_reached(), Stage::Judge);

        let failed_compile = CaseRecord {
            compile: CompileSummary {
                return_code: 2,
                succeeded: false,
                stdout: "".into(),
                stderr: "error".into(),
            },
            exec: None,
            judgement: None,
            id: "t".into(),
        };
        assert_eq!(failed_compile.pipeline_verdict(), Verdict::Invalid);
        assert_eq!(failed_compile.stage_reached(), Stage::Compile);

        let failed_exec = CaseRecord {
            id: "t".into(),
            compile: compile_ok(),
            exec: Some(ExecSummary {
                return_code: 1,
                stdout: "".into(),
                stderr: "".into(),
                passed: false,
            }),
            judgement: None,
        };
        assert_eq!(failed_exec.pipeline_verdict(), Verdict::Invalid);

        let judge_rejected = CaseRecord {
            id: "t".into(),
            compile: compile_ok(),
            exec: Some(exec_ok()),
            judgement: Some(judgement(false)),
        };
        assert_eq!(judge_rejected.pipeline_verdict(), Verdict::Invalid);
    }

    #[test]
    fn config_builders() {
        let config = PipelineConfig::default()
            .record_all()
            .with_indirect_judge()
            .single_threaded();
        assert_eq!(config.mode, PipelineMode::RecordAll);
        assert_eq!(config.judge_style, PromptStyle::AgentIndirect);
        assert_eq!(config.compile_workers, 1);
    }
}
